//! Quickstart: instantiate a DDR3 controller, stream sequential reads
//! through it, and print the gem5-style statistics report.
//!
//! ```text
//! cargo run --release -p dramctrl-system --example quickstart
//! ```

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_mem::presets;
use dramctrl_power::micron_power;
use dramctrl_traffic::{LinearGen, Tester};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a device and configure the controller (paper Table I
    //    parameters).
    let mut cfg = CtrlConfig::new(presets::ddr3_1600_x64());
    cfg.page_policy = PagePolicy::OpenAdaptive;
    let mut ctrl = DramCtrl::new(cfg)?;

    // 2. Drive it with a linear read/write mix at a 10 ns injection pace.
    let mut gen = LinearGen::new(0, 64 << 20, 64, 70, 10_000, 50_000, 1);
    let summary = Tester::new(2_000, 100).run(&mut gen, &mut ctrl);

    // 3. Report.
    println!("== dramctrl quickstart: {} ==\n", ctrl.config().spec.name);
    println!("{}", ctrl.report("ctrl", summary.duration));
    println!(
        "achieved bandwidth: {:.2} GB/s of {:.2} GB/s peak ({:.1}% bus utilisation)",
        summary.bandwidth_gbps,
        ctrl.config().spec.peak_bandwidth_gbps(),
        summary.bus_util * 100.0
    );
    println!(
        "read latency: mean {:.1} ns, p95 {} ns",
        summary.read_lat_ns.mean(),
        summary.read_lat_ns.quantile(0.95).unwrap_or(0)
    );

    // 4. DRAM power from the Micron model.
    let power = micron_power(
        &ctrl.config().spec.clone(),
        &ctrl.activity(summary.duration),
    );
    println!("\n{}", power.report("dram_power"));
    Ok(())
}
