//! Heterogeneous tiered memory (paper Section II-F): a small stacked
//! WideIO near tier in front of a larger LPDDR3 far tier. A workload with
//! a hot working set shows why placement matters: when the hot data fits
//! the near tier, most traffic enjoys its four wide channels; pushed to
//! the far tier, everything crosses the narrow mobile interface.
//!
//! ```text
//! cargo run --release -p dramctrl-system --example tiered_memory
//! ```

use dramctrl::{CtrlConfig, DramCtrl};
use dramctrl_mem::{presets, Controller, MemSpec};
use dramctrl_system::{MultiChannel, TieredMemory};
use dramctrl_traffic::{InterleaveGen, RandomGen, Tester};

const NEAR_SIZE: u64 = 256 << 20;

/// 4 WideIO channels (near) in front of a single LPDDR3 channel (far).
fn build_memory(
) -> Result<TieredMemory<MultiChannel<DramCtrl>, DramCtrl>, Box<dyn std::error::Error>> {
    let near_spec: MemSpec = presets::wideio_200_x128();
    let near_channels = 4;
    let near = MultiChannel::new(
        (0..near_channels)
            .map(|_| {
                let mut cfg = CtrlConfig::new(near_spec.clone());
                cfg.channels = near_channels;
                DramCtrl::new(cfg)
            })
            .collect::<Result<Vec<_>, _>>()?,
        0,
    )?;
    let far = DramCtrl::new(CtrlConfig::new(presets::lpddr3_1600_x32()))?;
    Ok(TieredMemory::new(near, far, NEAR_SIZE))
}

/// Nine accesses to a 64 MiB hot region at `hot_base` for every access
/// across the whole 512 MiB space.
fn workload(hot_base: u64) -> InterleaveGen<RandomGen, RandomGen> {
    let hot = RandomGen::new(hot_base, hot_base + (64 << 20), 64, 80, 0, 90_000, 3);
    let cold = RandomGen::new(0, 512 << 20, 64, 80, 0, 10_000, 4);
    InterleaveGen::new(hot, cold, 9, 1)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== tiered memory: 4x WideIO (near, 256 MiB) + LPDDR3 (far) ==\n");
    for (name, hot_base) in [
        ("hot set in the near tier", 0u64),
        ("hot set in the far tier ", 300 << 20),
    ] {
        let mut mem = build_memory()?;
        let mut gen = workload(hot_base);
        let s = Tester::new(20_000, 1_000).run(&mut gen, &mut mem);
        let near = mem.near().common_stats();
        let far = mem.far().common_stats();
        println!(
            "{name}: {:6.2} GB/s, read mean {:6.1} ns  (near bursts {:6}, far bursts {:6})",
            s.bandwidth_gbps,
            s.read_lat_ns.mean(),
            near.rd_bursts + near.wr_bursts,
            far.rd_bursts + far.wr_bursts,
        );
    }
    println!("\nPlacement is the whole game: the same workload loses most of its");
    println!("bandwidth when its hot pages migrate past the near-tier boundary.");
    Ok(())
}
