//! Future-system exploration (paper Section IV-B in miniature): run the
//! same multicore workload over DDR3, LPDDR3 and WideIO memory systems —
//! all 12.8 GB/s peak — by swapping only the device specification and the
//! channel count. The controller model itself never changes; that
//! flexibility is the case study's point.
//!
//! ```text
//! cargo run --release -p dramctrl-system --example explore_memories
//! ```

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_kernel::tick;
use dramctrl_mem::{presets, AddrMapping, Controller, MemSpec};
use dramctrl_power::micron_power;
use dramctrl_system::{workload, MultiChannel, System, SystemConfig};

fn memory(
    spec: &MemSpec,
    channels: u32,
) -> Result<MultiChannel<DramCtrl>, Box<dyn std::error::Error>> {
    let ctrls = (0..channels)
        .map(|_| {
            let mut cfg = CtrlConfig::new(spec.clone());
            cfg.channels = channels;
            cfg.page_policy = PagePolicy::Open;
            cfg.mapping = AddrMapping::RoRaBaCoCh;
            DramCtrl::new(cfg)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MultiChannel::new(ctrls, 0)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 8;
    let insts = 80_000;
    let profile = workload::canneal();
    println!("== canneal on {cores} cores, three 12.8 GB/s memory systems ==\n");
    for (spec, channels) in [
        (presets::ddr3_1600_x64(), 1u32),
        (presets::lpddr3_1600_x32(), 2),
        (presets::wideio_200_x128(), 4),
    ] {
        let mem = memory(&spec, channels)?;
        let mut cfg = SystemConfig::table2(cores, insts);
        cfg.llc.size = 8 << 20;
        let mut sys = System::new(cfg, mem, &vec![profile; cores], 42)?;
        let r = sys.run();
        let power = micron_power(&spec, &sys.controller_mut().activity(r.duration));
        println!(
            "{:>16} x{channels}: IPC {:.3}  miss-lat {:>6.1} ns  bus {:>5.1}%  power {:.2} W",
            spec.name,
            r.ipc,
            tick::to_ns(r.llc_miss_lat.mean() as u64),
            r.dram.bus_utilisation(r.duration) / f64::from(channels) * 100.0,
            power.total_mw() * f64::from(channels) / 1000.0,
        );
    }
    println!("\n(WideIO's four wide, slow channels suit canneal's scattered reads;");
    println!(" the single DDR3 channel queues them behind each other.)");
    Ok(())
}
