//! Trace workflow: record a trace from one run, write it to disk in the
//! text format, then replay it against two different controller
//! configurations — the classic "what if" exploration loop.
//!
//! (The paper cautions that traces cannot capture feedback loops — Section
//! I — which is why the closed-loop `System` exists; traces remain useful
//! for controller-local what-if studies like this one.)
//!
//! ```text
//! cargo run --release -p dramctrl-system --example trace_replay
//! ```

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_mem::{presets, AddrMapping, MemCmd};
use dramctrl_traffic::{DramAwareGen, Tester, TraceEntry, TraceGen, TrafficGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a bursty DRAM-aware access pattern and record it.
    let spec = presets::ddr3_1600_x64();
    let mut gen = DramAwareGen::new(
        spec.org,
        AddrMapping::RoRaBaCoCh,
        1,
        0,
        8,
        4,
        70,
        8_000,
        20_000,
        21,
    );
    let mut entries = Vec::new();
    while let Some((tick, req)) = gen.next_request() {
        entries.push(TraceEntry {
            tick,
            cmd: req.cmd,
            addr: req.addr,
            size: req.size,
        });
    }
    let path = std::env::temp_dir().join("dramctrl_example.trace");
    std::fs::write(&path, TraceGen::to_text(&entries))?;
    println!(
        "recorded {} requests to {}\n",
        entries.len(),
        path.display()
    );

    // 2. Replay against two page policies.
    for policy in [PagePolicy::Open, PagePolicy::Closed] {
        let text = std::fs::read_to_string(&path)?;
        let mut trace: TraceGen = text.parse()?;
        let mut cfg = CtrlConfig::new(spec.clone());
        cfg.page_policy = policy;
        let mut ctrl = DramCtrl::new(cfg)?;
        let s = Tester::new(5_000, 250).run(&mut trace, &mut ctrl);
        println!(
            "{policy:>16}: bus {:>5.1}%  read mean {:>6.1} ns  p95 {:>5} ns  row hits {:.1}%",
            s.bus_util * 100.0,
            s.read_lat_ns.mean(),
            s.read_lat_ns.quantile(0.95).unwrap_or(0),
            s.ctrl.page_hit_rate() * 100.0,
        );
    }

    // 3. Sanity: the trace file round-trips.
    let parsed: TraceGen = std::fs::read_to_string(&path)?.parse()?;
    assert_eq!(parsed.len(), entries.len());
    let reads = entries.iter().filter(|e| e.cmd == MemCmd::Read).count();
    println!(
        "\ntrace round-trip ok ({reads} reads / {} writes)",
        entries.len() - reads
    );
    Ok(())
}
