//! An HMC-like stacked memory cube (paper Section II-F): "a model of HMC
//! is only a matter of combining the crossbar model with 16 instances of
//! our controller" — here 16 HBM-class channels behind one crossbar,
//! hammered with random traffic, demonstrating near-linear bandwidth
//! scaling and the event model's modest simulation cost.
//!
//! ```text
//! cargo run --release -p dramctrl-system --example hmc_cube
//! ```

use std::time::Instant;

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_system::MultiChannel;
use dramctrl_traffic::{RandomGen, Tester};

fn cube(channels: u32) -> Result<MultiChannel<DramCtrl>, Box<dyn std::error::Error>> {
    let ctrls = (0..channels)
        .map(|_| {
            let mut cfg = CtrlConfig::new(presets::hbm_1000_x128());
            cfg.channels = channels;
            cfg.page_policy = PagePolicy::ClosedAdaptive; // random traffic
            cfg.mapping = AddrMapping::RoCoRaBaCh;
            DramCtrl::new(cfg)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MultiChannel::new(ctrls, 2_000)?.with_mapping(AddrMapping::RoCoRaBaCh))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HMC-like cube: HBM channels under random traffic ==\n");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>10}",
        "channels", "bandwidth GB/s", "per-ch util", "read lat ns", "host s"
    );
    for channels in [1u32, 2, 4, 8, 16] {
        let mut mem = cube(channels)?;
        let mut gen = RandomGen::new(0, 1 << 28, 64, 67, 0, 100_000, 9);
        let start = Instant::now();
        let s = Tester::new(10_000, 500).run(&mut gen, &mut mem);
        let host = start.elapsed().as_secs_f64();
        println!(
            "{:>8} {:>14.2} {:>11.1}% {:>12.1} {:>10.3}",
            channels,
            s.bandwidth_gbps,
            s.ctrl.bus_utilisation(s.duration) / f64::from(mem.channels()) * 100.0,
            s.read_lat_ns.mean(),
            host,
        );
    }
    println!("\nSixteen channels cost barely more host time than one: the event");
    println!("model's work scales with traffic, not with instantiated hardware.");
    Ok(())
}
