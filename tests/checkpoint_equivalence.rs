//! Checkpoint/restore equivalence gate: a job paused at a checkpoint and
//! resumed — even in a different process, as the CLI tests do — must
//! produce metrics byte-identical to an uninterrupted run, across the
//! model × channels × scheduler × RAS matrix. Periodic snapshots taken
//! mid-run must never perturb the simulation.

use dramctrl::SchedPolicy;
use dramctrl_bench::{job_fingerprint, run_job, run_job_resumable};
use dramctrl_campaign::{Campaign, JobSpec, Model};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-ckpt-eq-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(name)
}

/// Event/cycle × single/multi-channel × both schedulers × RAS on/off.
fn matrix() -> Vec<JobSpec> {
    Campaign::new("ckpt-equiv", 19)
        .models([Model::Event, Model::Cycle])
        .channels([1, 2])
        .scheds([SchedPolicy::Fcfs, SchedPolicy::FrFcfs])
        .error_rates([0.0, 2e11])
        .requests([300])
        .expand()
}

/// Metrics as an exact, order-stable string (f64 `Debug` is shortest
/// round-trip, so equal strings mean bit-equal values).
fn exact(m: &dramctrl_campaign::JobMetrics) -> String {
    format!("{m:?}")
}

#[test]
fn periodic_checkpoints_do_not_perturb_the_run() {
    for job in matrix() {
        let baseline = run_job(&job);
        let p = tmp(&format!("periodic-{}.snap", job.index));
        let _ = std::fs::remove_file(&p);
        let ckpted = run_job_resumable(&job, Some(&p), 50, None).expect("unpaused run completes");
        assert_eq!(
            exact(&baseline),
            exact(&ckpted),
            "job {} ({}) diverged under periodic checkpointing",
            job.index,
            job.label()
        );
        // Snapshots were actually written along the way.
        assert!(p.exists(), "job {} wrote no checkpoint", job.index);
        std::fs::remove_file(&p).unwrap();
    }
}

#[test]
fn pause_and_resume_matches_uninterrupted_run() {
    for job in matrix() {
        let baseline = run_job(&job);
        let p = tmp(&format!("pause-{}.snap", job.index));
        let _ = std::fs::remove_file(&p);
        // Pause mid-run: the job stops at the first request boundary past
        // 150 injections and persists its full state.
        assert!(
            run_job_resumable(&job, Some(&p), 0, Some(150)).is_none(),
            "job {} did not pause",
            job.index
        );
        assert!(p.exists());
        // Resume from the snapshot and run to completion.
        let resumed = run_job_resumable(&job, Some(&p), 0, None).expect("resumed run completes");
        assert_eq!(
            exact(&baseline),
            exact(&resumed),
            "job {} ({}) diverged after pause/resume",
            job.index,
            job.label()
        );
        std::fs::remove_file(&p).unwrap();
    }
}

#[test]
fn checkpoint_of_one_job_refuses_to_restore_another() {
    let jobs = matrix();
    let (a, b) = (&jobs[0], &jobs[1]);
    assert_ne!(job_fingerprint(a), job_fingerprint(b));
    let p = tmp("mismatch.snap");
    let _ = std::fs::remove_file(&p);
    assert!(run_job_resumable(a, Some(&p), 0, Some(100)).is_none());
    // Restoring job A's snapshot into job B's configuration must fail
    // loudly, never silently produce a hybrid simulation.
    let err = std::panic::catch_unwind(|| run_job_resumable(b, Some(&p), 0, None));
    assert!(err.is_err(), "fingerprint mismatch was not rejected");
    std::fs::remove_file(&p).unwrap();
}
