//! Smoke tests asserting that every experiment in the reproduction index
//! (DESIGN.md) produces its paper-shaped result at reduced scale. The full
//! tables come from the `dramctrl-bench` binaries; these tests keep the
//! claims from silently regressing.

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, sweep, timed};
use dramctrl_mem::{presets, AddrMapping, Controller};
use dramctrl_power::micron_power;
use dramctrl_system::{workload, System, SystemConfig};
use dramctrl_traffic::{DramAwareGen, LinearGen, Tester};

/// fig3: open-page read utilisation rises with stride and banks, and the
/// models track each other.
#[test]
fn fig3_shape() {
    let spec = presets::ddr3_1333_x64();
    let points = sweep::bandwidth(
        &spec,
        PagePolicy::Open,
        AddrMapping::RoRaBaCoCh,
        100,
        &[1, 16, 128],
        &[1, 8],
        3_000,
    );
    // Rising in stride for each bank count.
    for banks in [1u32, 8] {
        let series: Vec<_> = points.iter().filter(|p| p.banks == banks).collect();
        assert!(series.windows(2).all(|w| w[1].ev_util >= w[0].ev_util));
        assert!(series.windows(2).all(|w| w[1].cy_util >= w[0].cy_util));
    }
    // Saturation at the top-right corner, models within 10%.
    let top = points.last().unwrap();
    assert!(top.ev_util > 0.9 && top.cy_util > 0.9);
    for p in &points {
        assert!((p.ev_util - p.cy_util).abs() / p.cy_util < 0.15);
    }
}

/// fig4: the 1:1 mix costs utilisation relative to fig3 at equal stride
/// (read/write switching eats the row-hit benefit).
#[test]
fn fig4_mix_costs_utilisation() {
    let spec = presets::ddr3_1333_x64();
    let reads = sweep::bandwidth(
        &spec,
        PagePolicy::Open,
        AddrMapping::RoRaBaCoCh,
        100,
        &[16],
        &[1],
        3_000,
    );
    let mixed = sweep::bandwidth(
        &spec,
        PagePolicy::Open,
        AddrMapping::RoRaBaCoCh,
        50,
        &[16],
        &[1],
        3_000,
    );
    assert!(mixed[0].ev_util < reads[0].ev_util);
    assert!(mixed[0].cy_util < reads[0].cy_util);
}

/// fig5: closed-page writes — single bank is flat and tRC-bound, more
/// banks help, larger strides hurt, and the event model's drain reordering
/// never loses to the baseline.
#[test]
fn fig5_shape() {
    let spec = presets::ddr3_1333_x64();
    let points = sweep::bandwidth(
        &spec,
        PagePolicy::Closed,
        AddrMapping::RoCoRaBaCh,
        0,
        &[1, 128],
        &[1, 8],
        3_000,
    );
    let at = |stride, banks| {
        *points
            .iter()
            .find(|p| p.stride == stride && p.banks == banks)
            .unwrap()
    };
    assert!((at(1, 1).ev_util - at(128, 1).ev_util).abs() < 0.03);
    assert!(at(1, 8).ev_util > 3.0 * at(1, 1).ev_util);
    assert!(at(128, 8).ev_util < at(1, 8).ev_util);
    assert!(at(1, 8).ev_util >= at(1, 8).cy_util * 0.98);
}

/// fig6/fig7: latency distribution means agree on reads; the mixed
/// closed-page case spreads the event model's reads (write drain) and
/// costs the interleaving baseline more on average.
#[test]
fn fig6_fig7_latency_shapes() {
    let spec = presets::ddr3_1333_x64();
    let t = Tester::new(4_000, 100);
    let mk = |rd| LinearGen::new(0, 1 << 22, 64, rd, 10_000, 2_000, 3);

    let ev6 = t.run(
        &mut mk(100),
        &mut ev_ctrl(spec.clone(), PagePolicy::Open, AddrMapping::RoRaBaCoCh, 1),
    );
    let cy6 = t.run(
        &mut mk(100),
        &mut cy_ctrl(spec.clone(), PagePolicy::Open, AddrMapping::RoRaBaCoCh, 1),
    );
    let ratio = ev6.read_lat_ns.mean() / cy6.read_lat_ns.mean();
    assert!((0.9..1.1).contains(&ratio), "fig6 mean ratio {ratio:.3}");

    let ev7 = t.run(
        &mut mk(50),
        &mut ev_ctrl(spec.clone(), PagePolicy::Closed, AddrMapping::RoCoRaBaCh, 1),
    );
    let cy7 = t.run(
        &mut mk(50),
        &mut cy_ctrl(spec.clone(), PagePolicy::Closed, AddrMapping::RoCoRaBaCh, 1),
    );
    let p10 = ev7.read_lat_ns.quantile(0.1).unwrap();
    let p90 = ev7.read_lat_ns.quantile(0.9).unwrap();
    assert!(p90 > 2 * p10, "fig7 spread p10={p10} p90={p90}");
    assert!(cy7.read_lat_ns.mean() > ev7.read_lat_ns.mean());
}

/// Power correlation (Section III-C3): both models' Micron power agrees.
#[test]
fn power_correlation() {
    let spec = presets::ddr3_1333_x64();
    let m = AddrMapping::RoRaBaCoCh;
    let t = Tester::new(100_000, 1_000);
    let mk = || DramAwareGen::new(spec.org, m, 1, 0, 16, 4, 70, 0, 3_000, 11);
    let mut ev = ev_ctrl(spec.clone(), PagePolicy::Open, m, 1);
    let es = t.run(&mut mk(), &mut ev);
    let ep = micron_power(&spec, &Controller::activity(&mut ev, es.duration)).total_mw();
    let mut cy = cy_ctrl(spec.clone(), PagePolicy::Open, m, 1);
    let cs = t.run(&mut mk(), &mut cy);
    let cp = micron_power(&spec, &cy.activity(cs.duration)).total_mw();
    let diff = (ep - cp).abs() / cp;
    assert!(diff < 0.1, "power diff {diff:.3} ({ep:.0} vs {cp:.0} mW)");
}

/// Model performance (Section III-D): the event model beats the
/// cycle-based baseline by a large factor on saturating traffic.
#[test]
fn speedup_holds() {
    let spec = presets::ddr3_1333_x64();
    let m = AddrMapping::RoRaBaCoCh;
    let t = Tester::new(100_000, 1_000);
    let n = 40_000;
    let (_, ev_s) = timed(|| {
        let mut g = LinearGen::new(0, 256 << 20, 64, 100, 0, n, 1);
        t.run(&mut g, &mut ev_ctrl(spec.clone(), PagePolicy::Open, m, 1))
    });
    let (_, cy_s) = timed(|| {
        let mut g = LinearGen::new(0, 256 << 20, 64, 100, 0, n, 1);
        t.run(&mut g, &mut cy_ctrl(spec.clone(), PagePolicy::Open, m, 1))
    });
    let speedup = cy_s / ev_s;
    // The paper reports ~7x on average; debug builds and small runs blur
    // the constant, so demand a conservative 2x here.
    assert!(speedup > 2.0, "speedup only {speedup:.2}x");
}

/// fig9: WideIO's four wide channels beat one DDR3 channel for the
/// memory-bound canneal, as in the paper's case study.
#[test]
fn fig9_memory_sensitivity() {
    use dramctrl::{CtrlConfig, DramCtrl};
    use dramctrl_system::MultiChannel;

    let cores = 4;
    let insts = 40_000;
    let mut cfg = SystemConfig::table2(cores, insts);
    cfg.llc.size = 2 << 20;

    let ddr3 = {
        let ctrl = DramCtrl::new(CtrlConfig::new(presets::ddr3_1600_x64())).unwrap();
        let mut sys =
            System::new(cfg.clone(), ctrl, &vec![workload::canneal(); cores], 42).unwrap();
        sys.run()
    };
    let wideio = {
        let ctrls = (0..4)
            .map(|_| {
                let mut c = CtrlConfig::new(presets::wideio_200_x128());
                c.channels = 4;
                DramCtrl::new(c).unwrap()
            })
            .collect();
        let xbar = MultiChannel::new(ctrls, 0).unwrap();
        let mut sys =
            System::new(cfg.clone(), xbar, &vec![workload::canneal(); cores], 42).unwrap();
        sys.run()
    };
    assert!(
        wideio.ipc > ddr3.ipc,
        "WideIO {:.4} should beat DDR3 {:.4} on canneal",
        wideio.ipc,
        ddr3.ipc
    );
    assert!(wideio.llc_miss_lat.mean() < ddr3.llc_miss_lat.mean());
}
