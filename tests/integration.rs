//! Workspace-level integration tests spanning every crate: kernel → mem →
//! controllers → traffic → crossbar → system → power, end to end.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_bench::{cy_ctrl, ev_ctrl};
use dramctrl_cycle::{CycleConfig, CycleCtrl};
use dramctrl_mem::{presets, AddrMapping, Controller, MemRequest, ReqId};
use dramctrl_power::micron_power;
use dramctrl_system::{workload, MultiChannel, System, SystemConfig};
use dramctrl_traffic::{DramAwareGen, LinearGen, RandomGen, Tester, TraceEntry, TraceGen};

/// Every preset drives both controller models through the tester without
/// losing a request, across policies.
#[test]
fn every_preset_round_trips_both_models() {
    for spec in presets::all() {
        for policy in [PagePolicy::Open, PagePolicy::Closed] {
            let mapping = if policy.is_open() {
                AddrMapping::RoRaBaCoCh
            } else {
                AddrMapping::RoCoRaBaCh
            };
            let n = 500;
            let t = Tester::new(200_000, 1_000);
            let mut gen = LinearGen::new(0, 16 << 20, 64, 70, 0, n, 1);
            let ev = t.run(&mut gen, &mut ev_ctrl(spec.clone(), policy, mapping, 1));
            assert_eq!(
                ev.reads_completed + ev.writes_completed,
                n,
                "{} event {policy}",
                spec.name
            );
            let mut gen = LinearGen::new(0, 16 << 20, 64, 70, 0, n, 1);
            let cy = t.run(&mut gen, &mut cy_ctrl(spec.clone(), policy, mapping, 1));
            assert_eq!(
                cy.reads_completed + cy.writes_completed,
                n,
                "{} cycle {policy}",
                spec.name
            );
        }
    }
}

/// The full pipeline: random generator → crossbar → controllers → power
/// model, over two LPDDR3 channels (the paper's mobile configuration).
#[test]
fn lpddr3_two_channel_pipeline() {
    let spec = presets::lpddr3_1600_x32();
    let channels = 2;
    let ctrls = (0..channels)
        .map(|_| {
            let mut cfg = CtrlConfig::new(spec.clone());
            cfg.channels = channels;
            DramCtrl::new(cfg).unwrap()
        })
        .collect();
    let mut xbar = MultiChannel::new(ctrls, 1_000).unwrap();
    // Cache lines are 64 B; LPDDR3 bursts are 32 B — every request chops.
    let mut gen = RandomGen::new(0, 256 << 20, 64, 80, 0, 4_000, 3);
    let s = Tester::new(50_000, 500).run(&mut gen, &mut xbar);
    assert_eq!(s.reads_completed + s.writes_completed, 4_000);
    let stats = xbar.common_stats();
    // Two bursts per request.
    assert_eq!(stats.rd_bursts + stats.wr_bursts, 8_000);
    // Both channels participated.
    for ch in 0..channels as usize {
        let c = xbar.channel(ch).common_stats();
        assert!(c.rd_bursts + c.wr_bursts > 3_000, "channel {ch} starved");
    }
    let power = micron_power(&spec, &xbar.activity(s.duration));
    assert!(power.total_mw() > 0.0);
    assert!(power.refresh_mw > 0.0, "refresh ran during the window");
}

/// A trace recorded from one generator replays identically into both
/// controller models.
#[test]
fn trace_bridges_models() {
    let spec = presets::ddr3_1333_x64();
    let mut gen = DramAwareGen::new(
        spec.org,
        AddrMapping::RoRaBaCoCh,
        1,
        0,
        8,
        4,
        60,
        5_000,
        2_000,
        17,
    );
    let mut entries = Vec::new();
    use dramctrl_traffic::TrafficGen;
    while let Some((tick, req)) = gen.next_request() {
        entries.push(TraceEntry {
            tick,
            cmd: req.cmd,
            addr: req.addr,
            size: req.size,
        });
    }
    let text = TraceGen::to_text(&entries);
    let t = Tester::new(50_000, 500);

    let mut trace: TraceGen = text.parse().unwrap();
    let ev = t.run(
        &mut trace,
        &mut ev_ctrl(spec.clone(), PagePolicy::Open, AddrMapping::RoRaBaCoCh, 1),
    );
    let mut trace: TraceGen = text.parse().unwrap();
    let cy = t.run(
        &mut trace,
        &mut cy_ctrl(spec.clone(), PagePolicy::Open, AddrMapping::RoRaBaCoCh, 1),
    );
    assert_eq!(ev.reads_completed, cy.reads_completed);
    assert_eq!(ev.writes_completed, cy.writes_completed);
    // First-order latency agreement on identical traces.
    let ratio = cy.read_lat_ns.mean() / ev.read_lat_ns.mean();
    assert!((0.7..1.4).contains(&ratio), "latency ratio {ratio:.3}");
}

/// The same system accepts a single-channel event controller, a
/// cycle-based baseline, and a 4-channel crossbar interchangeably (the
/// `Controller` abstraction), and the fill traffic agrees.
#[test]
fn system_is_generic_over_controllers() {
    let profiles = vec![workload::canneal(); 2];
    let cfg = SystemConfig::table2(2, 30_000);

    let ev = DramCtrl::new(CtrlConfig::new(presets::ddr3_1600_x64())).unwrap();
    let r1 = System::new(cfg.clone(), ev, &profiles, 3).unwrap().run();

    let cy = CycleCtrl::new(CycleConfig::new(presets::ddr3_1600_x64())).unwrap();
    let r2 = System::new(cfg.clone(), cy, &profiles, 3).unwrap().run();

    let ctrls = (0..4)
        .map(|_| {
            let mut c = CtrlConfig::new(presets::wideio_200_x128());
            c.channels = 4;
            DramCtrl::new(c).unwrap()
        })
        .collect();
    let xbar = MultiChannel::new(ctrls, 0).unwrap();
    let r3 = System::new(cfg, xbar, &profiles, 3).unwrap().run();

    for r in [&r1, &r2, &r3] {
        assert!(r.ipc > 0.0);
        assert!(r.insts >= 2 * 30_000);
        assert!(r.dram.rd_bursts > 0);
    }
    // Same workload, same instruction count: fill traffic agrees across
    // all three memory systems to first order.
    let base = r1.dram.rd_bursts as f64;
    for r in [&r2, &r3] {
        let ratio = r.dram.rd_bursts as f64 / base;
        assert!((0.9..1.1).contains(&ratio), "fill ratio {ratio:.3}");
    }
}

/// Chopping invariance: the same byte traffic expressed as one 256-byte
/// request or four 64-byte requests produces identical DRAM burst counts
/// and bytes (paper Section II-A: the rest of the memory system is
/// oblivious to the DRAM burst size).
#[test]
fn chopping_is_transparent() {
    let run = |sizes: &[(u64, u32)]| {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.spec.timing.t_refi = 0;
        let mut ctrl = DramCtrl::new(cfg).unwrap();
        let mut out = Vec::new();
        for (i, &(addr, size)) in sizes.iter().enumerate() {
            DramCtrl::try_send(&mut ctrl, MemRequest::read(ReqId(i as u64), addr, size), 0)
                .unwrap();
        }
        DramCtrl::drain(&mut ctrl, &mut out);
        (ctrl.stats().rd_bursts, ctrl.stats().bytes_read, out.len())
    };
    let (bursts_a, bytes_a, resps_a) = run(&[(0, 256)]);
    let (bursts_b, bytes_b, resps_b) = run(&[(0, 64), (64, 64), (128, 64), (192, 64)]);
    assert_eq!(bursts_a, bursts_b);
    assert_eq!(bytes_a, bytes_b);
    assert_eq!((resps_a, resps_b), (1, 4));
}
