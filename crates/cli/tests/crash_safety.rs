//! Crash-safety end-to-end tests: checkpoint/restore across *processes*
//! and kill-and-resume of journaled sweeps, gating the byte-identical
//! guarantees the crash-safety layer promises.

use std::path::{Path, PathBuf};
use std::process::Command;

fn dramctrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dramctrl"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn ok(out: &std::process::Output) -> &std::process::Output {
    assert!(
        out.status.success(),
        "command failed ({:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// One event's grouping key inside a Perfetto trace file: our tracer
/// serialises each (track, phase, name) group in emission order, so
/// restore equivalence means every group of the resumed trace is a
/// *suffix* of the same group in the uninterrupted trace.
fn group_key(line: &str) -> String {
    let field = |key: &str| {
        let pat = format!("\"{key}\":");
        line.find(&pat)
            .map(|i| {
                let rest = &line[i + pat.len()..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                &rest[..end]
            })
            .unwrap_or("")
            .to_owned()
    };
    format!(
        "{}|{}|{}|{}",
        field("name"),
        field("cat"),
        field("ph"),
        field("tid")
    )
}

/// Event lines of a trace file (trailing commas stripped), grouped.
fn trace_groups(path: &Path) -> std::collections::BTreeMap<String, Vec<String>> {
    let text = std::fs::read_to_string(path).unwrap();
    let mut groups = std::collections::BTreeMap::<String, Vec<String>>::new();
    for line in text.lines().filter(|l| l.starts_with("{\"name\"")) {
        let line = line.strip_suffix(',').unwrap_or(line);
        groups
            .entry(group_key(line))
            .or_default()
            .push(line.to_owned());
    }
    groups
}

const RUN_ARGS: &[&str] = &[
    "run",
    "--device",
    "ddr3-1333-x64",
    "--gen",
    "random",
    "--reads",
    "70",
    "--requests",
    "4000",
    "--ras",
    "2e11",
    "--ecc",
    "secded",
];

#[test]
fn restore_in_fresh_process_is_byte_identical() {
    let dir = tmp_dir("restore");
    let p = |n: &str| dir.join(n).to_str().unwrap().to_owned();

    // Uninterrupted reference run.
    let full = ok(&dramctrl()
        .args(RUN_ARGS)
        .args([
            "--stats-json",
            &p("full.json"),
            "--perfetto",
            &p("full.trace"),
        ])
        .output()
        .unwrap())
    .stdout
    .clone();

    // Same simulation, paused at 2000 injected requests...
    let out = ok(&dramctrl()
        .args(RUN_ARGS)
        .args(["--checkpoint", &p("ck.snap"), "--checkpoint-at", "2000"])
        .output()
        .unwrap())
    .clone();
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checkpoint written"),
        "pause should announce the snapshot"
    );

    // ...then restored in a fresh process and run to completion.
    let resumed = ok(&dramctrl()
        .args(RUN_ARGS)
        .args([
            "--restore",
            &p("ck.snap"),
            "--stats-json",
            &p("resumed.json"),
            "--perfetto",
            &p("resumed.trace"),
        ])
        .output()
        .unwrap())
    .stdout
    .clone();

    // The summary (bandwidth, latency percentiles, RAS fault log counts)
    // and the machine-readable statistics report are byte-identical.
    assert_eq!(
        String::from_utf8(full).unwrap(),
        String::from_utf8(resumed).unwrap(),
        "stdout summary diverged after restore"
    );
    assert_eq!(
        std::fs::read(p("full.json")).unwrap(),
        std::fs::read(p("resumed.json")).unwrap(),
        "statistics report diverged after restore"
    );

    // Every group of the resumed Perfetto trace is byte-identical to the
    // tail of the uninterrupted trace's group: the restored run emits
    // exactly the suffix of the command/request/fault event stream.
    let full_groups = trace_groups(&dir.join("full.trace"));
    let resumed_groups = trace_groups(&dir.join("resumed.trace"));
    assert!(!resumed_groups.is_empty());
    for (key, events) in &resumed_groups {
        let reference = full_groups
            .get(key)
            .unwrap_or_else(|| panic!("group {key:?} missing from the full trace"));
        assert!(
            reference.len() >= events.len(),
            "group {key:?} grew after restore"
        );
        assert_eq!(
            &reference[reference.len() - events.len()..],
            &events[..],
            "group {key:?} is not a suffix of the uninterrupted trace"
        );
    }
}

#[test]
fn cycle_model_restore_matches_too() {
    let dir = tmp_dir("cycle");
    let p = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    let args = [
        "run",
        "--model",
        "cycle",
        "--gen",
        "linear",
        "--requests",
        "2000",
    ];
    let full = ok(&dramctrl().args(args).output().unwrap()).stdout.clone();
    ok(&dramctrl()
        .args(args)
        .args(["--checkpoint", &p("ck.snap"), "--checkpoint-at", "900"])
        .output()
        .unwrap());
    let resumed = ok(&dramctrl()
        .args(args)
        .args(["--restore", &p("ck.snap")])
        .output()
        .unwrap())
    .stdout
    .clone();
    assert_eq!(full, resumed, "cycle-model stdout diverged after restore");
}

#[test]
fn restore_against_different_config_exits_2() {
    let dir = tmp_dir("mismatch");
    let snap = dir.join("ck.snap");
    let snap = snap.to_str().unwrap();
    ok(&dramctrl()
        .args(RUN_ARGS)
        .args(["--checkpoint", snap, "--checkpoint-at", "1000"])
        .output()
        .unwrap());

    // Same snapshot, different device / policy / fault rate: refused
    // loudly with the usage-error exit code, never a hybrid simulation.
    for wrong in [
        vec![
            "run",
            "--device",
            "ddr3-1600-x64",
            "--gen",
            "random",
            "--reads",
            "70",
            "--requests",
            "4000",
            "--ras",
            "2e11",
            "--ecc",
            "secded",
            "--restore",
            snap,
        ],
        vec![
            "run",
            "--device",
            "ddr3-1333-x64",
            "--gen",
            "random",
            "--reads",
            "70",
            "--requests",
            "4000",
            "--restore",
            snap,
        ],
        vec![
            "run",
            "--device",
            "ddr3-1333-x64",
            "--gen",
            "linear",
            "--reads",
            "70",
            "--requests",
            "4000",
            "--ras",
            "2e11",
            "--ecc",
            "secded",
            "--restore",
            snap,
        ],
    ] {
        let out = dramctrl().args(&wrong).output().unwrap();
        let err = String::from_utf8(out.stderr).unwrap();
        assert_eq!(out.status.code(), Some(2), "{wrong:?} should exit 2: {err}");
        assert!(err.contains("cannot restore"), "unhelpful message: {err}");
        assert!(!err.contains("panicked"), "{wrong:?} panicked: {err}");
    }

    // The matching command line still restores fine afterwards.
    ok(&dramctrl()
        .args(RUN_ARGS)
        .args(["--restore", snap])
        .output()
        .unwrap());
}

const SWEEP_ARGS: &[&str] = &[
    "sweep",
    "--models",
    "event,cycle",
    "--reads",
    "0,100",
    "--ras",
    "0,2e11",
    "--requests",
    "1500",
    "--quiet",
];

#[test]
fn killed_sweep_resumes_byte_identical_at_different_worker_count() {
    let dir = tmp_dir("kill");
    let p = |n: &str| dir.join(n).to_str().unwrap().to_owned();

    // Uninterrupted reference sweep (8 jobs).
    ok(&dramctrl()
        .args(SWEEP_ARGS)
        .args(["--jsonl", &p("base.jsonl"), "--md", &p("base.md")])
        .output()
        .unwrap());

    // Journaled sweep killed right after the 3rd job commits: the test
    // hook calls process::exit(86) inside the executor, so everything
    // after those three fsync'd journal lines is lost.
    let out = dramctrl()
        .args(SWEEP_ARGS)
        .args(["--journal", &p("journal.jsonl"), "--workers", "2"])
        .env("DRAMCTRL_TEST_KILL_AFTER_APPENDS", "3")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(86),
        "kill hook did not fire: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let journal = std::fs::read_to_string(p("journal.jsonl")).unwrap();
    assert_eq!(journal.lines().count(), 1 + 3, "header + 3 committed jobs");

    // Resume at a different worker count: skips the journaled jobs, runs
    // the rest, and the merged reports are byte-identical to the
    // uninterrupted sweep's.
    let out = ok(&dramctrl()
        .args(SWEEP_ARGS)
        .args([
            "--resume",
            &p("journal.jsonl"),
            "--workers",
            "1",
            "--jsonl",
            &p("resumed.jsonl"),
            "--md",
            &p("resumed.md"),
        ])
        .output()
        .unwrap())
    .clone();
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resuming: 3 of 8 jobs"),
        "resume should report the skip count: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(p("base.jsonl")).unwrap(),
        std::fs::read(p("resumed.jsonl")).unwrap(),
        "JSONL report diverged after kill + resume"
    );
    assert_eq!(
        std::fs::read(p("base.md")).unwrap(),
        std::fs::read(p("resumed.md")).unwrap(),
        "markdown report diverged after kill + resume"
    );
    // The journal now holds each of the 8 jobs exactly once.
    let journal = std::fs::read_to_string(p("journal.jsonl")).unwrap();
    assert_eq!(journal.lines().count(), 1 + 8);

    // Resuming an already-finished sweep is a no-op with the same output.
    ok(&dramctrl()
        .args(SWEEP_ARGS)
        .args([
            "--resume",
            &p("journal.jsonl"),
            "--jsonl",
            &p("again.jsonl"),
        ])
        .output()
        .unwrap());
    assert_eq!(
        std::fs::read(p("base.jsonl")).unwrap(),
        std::fs::read(p("again.jsonl")).unwrap()
    );
}

#[test]
fn sweep_directory_journal_and_checkpoint_every() {
    let dir = tmp_dir("ckevery");
    let jdir = dir.join("camp");
    let jdir_arg = format!("{}/", jdir.display());

    // --journal DIR/ resolves to DIR/journal.jsonl; --checkpoint-every
    // snapshots each job beside it and cleans up after success.
    ok(&dramctrl()
        .args([
            "sweep",
            "--models",
            "event",
            "--reads",
            "0,100",
            "--requests",
            "1200",
            "--quiet",
            "--journal",
            &jdir_arg,
            "--checkpoint-every",
            "400",
        ])
        .output()
        .unwrap());
    assert!(jdir.join("journal.jsonl").exists());
    let leftovers: Vec<_> = std::fs::read_dir(&jdir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("ckpt-job-"))
        .collect();
    assert!(leftovers.is_empty(), "snapshots left behind: {leftovers:?}");
}

#[test]
fn resume_with_wrong_campaign_exits_2() {
    let dir = tmp_dir("wrongspec");
    let journal = dir.join("journal.jsonl");
    let journal = journal.to_str().unwrap();
    let out = dramctrl()
        .args(SWEEP_ARGS)
        .args(["--journal", journal])
        .env("DRAMCTRL_TEST_KILL_AFTER_APPENDS", "2")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(86));

    // A different campaign spec (extra read point) must be refused: the
    // journal's records would not line up with the new expansion.
    let out = dramctrl()
        .args([
            "sweep",
            "--models",
            "event,cycle",
            "--reads",
            "0,50,100",
            "--ras",
            "0,2e11",
            "--requests",
            "1500",
            "--quiet",
            "--resume",
            journal,
        ])
        .output()
        .unwrap();
    let err = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "wrong spec should exit 2: {err}"
    );
    assert!(
        err.contains("resuming") || err.contains("journal"),
        "unhelpful message: {err}"
    );
    assert!(!err.contains("panicked"), "panicked: {err}");
}
