//! Distributed-dispatch chaos tests: a coordinator fanning a campaign
//! out to a daemon fleet must produce a merged report byte-identical to
//! a local `dramctrl sweep` — with every peer healthy, with a peer
//! SIGKILLed mid-campaign, and with a peer whose store is poisoned —
//! and must refuse to emit anything when the fleet cannot cover the
//! campaign.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn dramctrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dramctrl"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-dispatch-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn ok(out: &std::process::Output) -> &std::process::Output {
    assert!(
        out.status.success(),
        "command failed ({:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A daemon child whose process is reaped (and killed if still alive)
/// on drop, so a failing assertion never leaks daemons.
struct Daemon {
    child: Child,
    sock: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `dramctrl serve` on a Unix socket under `dir` and waits for
/// the socket file to appear.
fn start_daemon(dir: &Path, name: &str, envs: &[(&str, &str)]) -> Daemon {
    let sock = dir.join(format!("{name}.sock"));
    let store = dir.join(format!("{name}.store"));
    let mut cmd = dramctrl();
    cmd.args(["serve", "--listen"])
        .arg(&sock)
        .arg("--store")
        .arg(&store)
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let child = cmd.spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(
            Instant::now() < deadline,
            "daemon {name} never bound {sock:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    Daemon { child, sock }
}

/// The shared campaign: 10 jobs, big enough that a mid-campaign kill
/// lands while work is genuinely in flight.
const AXES: &[&str] = &[
    "--reads",
    "0,25,50,75,100",
    "--policies",
    "open,closed",
    "--requests",
    "20000",
    "--seed",
    "7",
];

/// The never-faulted local reference report for [`AXES`].
fn local_reference(dir: &Path) -> Vec<u8> {
    let jsonl = dir.join("local.jsonl");
    ok(&dramctrl()
        .args(["sweep", "--quiet", "--jsonl"])
        .arg(&jsonl)
        .args(AXES)
        .output()
        .unwrap());
    std::fs::read(&jsonl).unwrap()
}

fn dispatch_cmd(dir: &Path, peers: &[&Daemon], merged: &Path) -> Command {
    let mut cmd = dramctrl();
    cmd.arg("dispatch");
    for p in peers {
        cmd.arg("--peer").arg(&p.sock);
    }
    cmd.arg("--workdir")
        .arg(dir.join("wd"))
        .arg("--jsonl")
        .arg(merged)
        .args(["--timeout", "10s"])
        .args(AXES)
        .stdout(Stdio::null());
    cmd
}

#[test]
fn healthy_fleet_matches_local_sweep_byte_for_byte() {
    let dir = tmp_dir("healthy");
    let daemons: Vec<Daemon> = (0..3)
        .map(|i| start_daemon(&dir, &format!("d{i}"), &[]))
        .collect();
    let merged = dir.join("merged.jsonl");
    let out = dispatch_cmd(&dir, &daemons.iter().collect::<Vec<_>>(), &merged)
        .args(["--json"])
        .output()
        .unwrap();
    ok(&out);
    // --json: every progress event on stderr is a JSON line with the
    // dispatch target, and the campaign was sharded across the fleet.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("\"target\":\"dispatch\"") && stderr.contains("\"msg\":\"shard assigned\""),
        "expected JSON progress events, got:\n{stderr}"
    );
    assert!(stderr.contains("\"msg\":\"shards merged\""), "{stderr}");
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        local_reference(&dir),
        "merged report diverged from the local sweep"
    );
}

#[test]
fn sigkilled_peer_mid_campaign_is_survived_byte_identically() {
    let dir = tmp_dir("sigkill");
    let mut daemons: Vec<Daemon> = (0..3)
        .map(|i| start_daemon(&dir, &format!("d{i}"), &[]))
        .collect();
    let merged = dir.join("merged.jsonl");
    let mut dispatch = dispatch_cmd(&dir, &daemons.iter().collect::<Vec<_>>(), &merged)
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Let the fleet pick up its shards, then SIGKILL one daemon while
    // the campaign is in flight. (If the kill happens to land after its
    // shard finished, dispatch simply never notices — also a pass.)
    std::thread::sleep(Duration::from_millis(600));
    let victim = daemons.remove(0);
    drop(victim); // kill + reap
    let status = dispatch.wait().unwrap();
    assert!(status.success(), "dispatch failed: {status:?}");
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        local_reference(&dir),
        "merged report diverged after a SIGKILLed peer"
    );
}

#[test]
fn poisoned_store_peer_is_routed_around_byte_identically() {
    let dir = tmp_dir("poison");
    // d0's store fails every fsync: the daemon stays up and answers
    // hello, but rejects every submit ("store unavailable") — the
    // degraded-peer path, distinct from a dead socket.
    let poisoned = start_daemon(
        &dir,
        "d0",
        &[("DRAMCTRL_FAULT_PLAN", "eio,op=fsync,path=d0")],
    );
    let healthy = start_daemon(&dir, "d1", &[]);
    let merged = dir.join("merged.jsonl");
    let out = dispatch_cmd(&dir, &[&poisoned, &healthy], &merged)
        .output()
        .unwrap();
    ok(&out);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("store unavailable"),
        "expected the poisoned peer's rejection to surface:\n{stderr}"
    );
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        local_reference(&dir),
        "merged report diverged with a poisoned peer in the fleet"
    );
}

#[test]
fn all_peers_dead_refuses_loudly_with_no_report() {
    let dir = tmp_dir("alldead");
    let merged = dir.join("merged.jsonl");
    let out = dramctrl()
        .arg("dispatch")
        .arg("--peer")
        .arg(dir.join("never-bound.sock"))
        .args(["--peer", "127.0.0.1:1"])
        .arg("--workdir")
        .arg(dir.join("wd"))
        .arg("--jsonl")
        .arg(&merged)
        .args(AXES)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "expected a usage-style failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no healthy peers"), "{stderr}");
    assert!(!merged.exists(), "a report must never appear on failure");
}

#[test]
fn merge_of_a_foreign_spec_hash_exits_2() {
    let dir = tmp_dir("foreign-merge");
    let journal = dir.join("journal.jsonl");
    // A journaled sweep with seed 7...
    ok(&dramctrl()
        .args(["sweep", "--quiet", "--journal"])
        .arg(&journal)
        .args(AXES)
        .output()
        .unwrap());
    // ...merged under seed 8 flags must be refused with exit 2, not
    // silently re-keyed.
    let out = dramctrl()
        .args(["sweep", "--merge"])
        .arg(&journal)
        .args(["--reads", "0,25,50,75,100"])
        .args(["--policies", "open,closed"])
        .args(["--requests", "20000"])
        .args(["--seed", "8"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("belongs to a different campaign"),
        "expected a spec-hash refusal:\n{stderr}"
    );
}

#[test]
fn fleet_status_reports_reachability_per_peer() {
    let dir = tmp_dir("fleet-status");
    let up = start_daemon(&dir, "up", &[]);
    let out = dramctrl()
        .arg("status")
        .arg("--peer")
        .arg(&up.sock)
        .arg("--peer")
        .arg(dir.join("down.sock"))
        .output()
        .unwrap();
    ok(&out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("yes"), "{stdout}");
    assert!(stdout.contains("no "), "{stdout}");
    assert!(stdout.contains("fleet: 1/2 peers reachable"), "{stdout}");
    // All peers down is a non-zero exit.
    let out = dramctrl()
        .arg("status")
        .arg("--peer")
        .arg(dir.join("down.sock"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
