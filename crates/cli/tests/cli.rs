//! End-to-end tests driving the `dramctrl` binary.

use std::process::Command;

fn dramctrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dramctrl"))
}

#[test]
fn devices_lists_presets() {
    let out = dramctrl().arg("devices").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in [
        "DDR3-1600-x64",
        "LPDDR3-1600-x32",
        "WideIO-200-x128",
        "HBM-1000-x128",
    ] {
        assert!(text.contains(name), "missing {name} in\n{text}");
    }
}

#[test]
fn run_reports_bandwidth_and_power() {
    let out = dramctrl()
        .args([
            "run",
            "--device",
            "ddr3-1600-x64",
            "--gen",
            "linear",
            "--requests",
            "5000",
            "--reads",
            "80",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("requests completed : 5000"));
    assert!(text.contains("bandwidth"));
    assert!(text.contains("DRAM power"));
}

#[test]
fn cycle_model_also_runs() {
    let out = dramctrl()
        .args(["run", "--model", "cycle", "--requests", "2000"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("cycle-based baseline"));
}

#[test]
fn record_then_replay_round_trips() {
    let dir = std::env::temp_dir().join("dramctrl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.trace");
    let trace_s = trace.to_str().unwrap();

    let out = dramctrl()
        .args([
            "record",
            "--gen",
            "random",
            "--requests",
            "3000",
            "--reads",
            "60",
            "--o",
            trace_s,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dramctrl()
        .args([
            "replay", trace_s, "--device", "lpddr3", "--policy", "closed",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("requests completed : 3000"));
    assert!(text.contains("LPDDR3"));
}

/// Asserts a bad invocation exits with the usage-error code (2) and a
/// single actionable `error:` line on stderr, never a panic.
fn assert_usage_error(args: &[&str]) -> String {
    let out = dramctrl().args(args).output().unwrap();
    let err = String::from_utf8(out.stderr).unwrap();
    assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2: {err}");
    let error_lines: Vec<_> = err.lines().filter(|l| l.starts_with("error:")).collect();
    assert_eq!(error_lines.len(), 1, "{args:?} wants one error line: {err}");
    assert!(!err.contains("panicked"), "{args:?} panicked: {err}");
    error_lines[0].to_owned()
}

#[test]
fn bad_arguments_fail_cleanly() {
    for args in [
        vec!["run", "--device", "sram"],
        vec!["run", "--bogus", "1"],
        vec!["frobnicate"],
        vec!["replay"],
        vec!["run", "--reads", "150"],
        vec!["run", "--ras", "-3"],
        vec!["run", "--ras", "2e11", "--ecc", "parity"],
        vec!["sweep", "--ras", "1e11,banana"],
    ] {
        assert_usage_error(&args);
    }
}

#[test]
fn unknown_preset_exits_2_with_available_list() {
    let err = assert_usage_error(&["run", "--device", "sram"]);
    assert!(
        err.contains("unknown device") && err.contains("available:"),
        "message should name the alternatives: {err}"
    );
}

#[test]
fn malformed_trace_exits_2() {
    let dir = std::env::temp_dir().join("dramctrl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("garbage.trace");
    std::fs::write(&bad, "0 FROB 0x10 64\nnot a trace line\n").unwrap();
    assert_usage_error(&["replay", bad.to_str().unwrap()]);
    // A missing file is the same class of error, not a panic.
    assert_usage_error(&["replay", "/nonexistent/trace.txt"]);
}

#[test]
fn contradictory_ras_flags_exit_2() {
    let err = assert_usage_error(&["run", "--ecc", "secded", "--requests", "100"]);
    assert!(err.contains("--ras"), "should point at the fix: {err}");
    let err = assert_usage_error(&["replay", "x.trace", "--ecc", "none"]);
    assert!(err.contains("--ras"), "should point at the fix: {err}");
}

#[test]
fn ras_run_reports_fault_statistics() {
    let out = dramctrl()
        .args([
            "run",
            "--requests",
            "5000",
            "--gen",
            "random",
            "--reads",
            "70",
            "--ras",
            "2e11",
            "--ecc",
            "secded",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("requests completed : 5000"), "{text}");
    assert!(
        text.contains("RAS") && text.contains("corrected"),
        "armed run should print the RAS line: {text}"
    );
}

#[test]
fn sweep_error_rate_axis_runs_fault_free_and_faulty_jobs() {
    let dir = std::env::temp_dir().join("dramctrl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("ras-sweep.jsonl");
    let out = dramctrl()
        .args([
            "sweep",
            "--requests",
            "2000",
            "--models",
            "event,cycle",
            "--ras",
            "0,2e11",
            "--quiet",
            "--jsonl",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let records = std::fs::read_to_string(&jsonl).unwrap();
    assert_eq!(records.lines().count(), 4, "2 models x 2 rates");
    assert!(
        records.contains("\"error_rate\":200000000000") && records.contains("\"error_rate\":0"),
        "JSONL should carry the error-rate axis: {records}"
    );
    assert!(
        records.contains("\"ras_corrected\""),
        "faulty jobs should report RAS metrics: {records}"
    );
    assert!(!records.contains("\"outcome\":\"failed\""), "{records}");
}
