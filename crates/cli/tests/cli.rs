//! End-to-end tests driving the `dramctrl` binary.

use std::process::Command;

fn dramctrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dramctrl"))
}

#[test]
fn devices_lists_presets() {
    let out = dramctrl().arg("devices").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in [
        "DDR3-1600-x64",
        "LPDDR3-1600-x32",
        "WideIO-200-x128",
        "HBM-1000-x128",
    ] {
        assert!(text.contains(name), "missing {name} in\n{text}");
    }
}

#[test]
fn run_reports_bandwidth_and_power() {
    let out = dramctrl()
        .args([
            "run",
            "--device",
            "ddr3-1600-x64",
            "--gen",
            "linear",
            "--requests",
            "5000",
            "--reads",
            "80",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("requests completed : 5000"));
    assert!(text.contains("bandwidth"));
    assert!(text.contains("DRAM power"));
}

#[test]
fn cycle_model_also_runs() {
    let out = dramctrl()
        .args(["run", "--model", "cycle", "--requests", "2000"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("cycle-based baseline"));
}

#[test]
fn record_then_replay_round_trips() {
    let dir = std::env::temp_dir().join("dramctrl-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.trace");
    let trace_s = trace.to_str().unwrap();

    let out = dramctrl()
        .args([
            "record",
            "--gen",
            "random",
            "--requests",
            "3000",
            "--reads",
            "60",
            "--o",
            trace_s,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dramctrl()
        .args([
            "replay", trace_s, "--device", "lpddr3", "--policy", "closed",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("requests completed : 3000"));
    assert!(text.contains("LPDDR3"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    for args in [
        vec!["run", "--device", "sram"],
        vec!["run", "--bogus", "1"],
        vec!["frobnicate"],
        vec!["replay"],
        vec!["run", "--reads", "150"],
    ] {
        let out = dramctrl().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("error:"), "{args:?}: {err}");
    }
}
