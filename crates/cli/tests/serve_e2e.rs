//! Service end-to-end tests driving the real `dramctrl` binary: a
//! daemon process on a Unix socket, CLI clients submitting and watching
//! sweeps, byte-comparison against the standalone `sweep` command, and a
//! SIGKILL'd daemon restarted on the same store resuming every job.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn dramctrl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dramctrl"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn ok(out: &std::process::Output) -> &std::process::Output {
    assert!(
        out.status.success(),
        "command failed ({:?}):\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A daemon child that is killed even when the test panics.
struct Daemon(Child);

impl Daemon {
    fn spawn(sock: &str, store: &str, quantum: &str) -> Self {
        Self::spawn_with(sock, store, quantum, &[])
    }

    fn spawn_with(sock: &str, store: &str, quantum: &str, extra: &[&str]) -> Self {
        let child = dramctrl()
            .args([
                "serve",
                "--listen",
                sock,
                "--store",
                store,
                "--quantum",
                quantum,
            ])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        Self(child)
    }

    /// SIGKILL — no cleanup handlers run, exactly the crash we promise
    /// to survive.
    fn kill(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Polls `dramctrl status` until the daemon answers on its socket.
fn wait_ready(sock: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let out = dramctrl().args(["status", "--to", sock]).output().unwrap();
        if out.status.success() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never became ready:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Submits the axes to the daemon; returns the accepted job id.
fn submit(sock: &str, tenant: &str, axes: &[&str]) -> String {
    let out = dramctrl()
        .args(["submit", "--to", sock, "--tenant", tenant])
        .args(axes)
        .output()
        .unwrap();
    let stdout = String::from_utf8(ok(&out).stdout.clone()).unwrap();
    // "accepted job-0000 (3 units)"
    stdout
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no job id in {stdout:?}"))
        .to_owned()
}

/// Axes small enough to finish fast, large enough that a 500-request
/// quantum forces several preemption cycles per unit.
const AXES: &[&str] = &["--seed", "7", "--reads", "0,50,100", "--requests", "3000"];

#[test]
fn two_concurrent_clients_each_get_results_byte_identical_to_cli_sweep() {
    let dir = tmp_dir("two-clients");
    let p = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    let sock = p("daemon.sock");

    // The reference: a plain standalone sweep of the same axes.
    ok(&dramctrl()
        .args(["sweep", "--quiet", "--jsonl", &p("base.jsonl")])
        .args(AXES)
        .output()
        .unwrap());

    let _daemon = Daemon::spawn(&sock, &p("store"), "500");
    wait_ready(&sock);

    let id_a = submit(&sock, "alice", AXES);
    let id_b = submit(&sock, "bob", AXES);
    assert_ne!(id_a, id_b);

    // Both tenants watch concurrently while the scheduler interleaves
    // their jobs at quantum boundaries.
    let watchers: Vec<Child> = [(&id_a, "a.jsonl"), (&id_b, "b.jsonl")]
        .iter()
        .map(|(id, out)| {
            dramctrl()
                .args(["watch", id, "--to", &sock, "--jsonl", &p(out)])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .unwrap()
        })
        .collect();
    for w in watchers {
        ok(&w.wait_with_output().unwrap());
    }
    let base = std::fs::read(p("base.jsonl")).unwrap();
    let a = std::fs::read(p("a.jsonl")).unwrap();
    let b = std::fs::read(p("b.jsonl")).unwrap();
    assert_eq!(a, base, "tenant A's streamed report != standalone sweep");
    assert_eq!(b, base, "tenant B's streamed report != standalone sweep");

    // The job table knows both jobs by id, both finished.
    let status = ok(&dramctrl().args(["status", "--to", &sock]).output().unwrap()).clone();
    let table = String::from_utf8(status.stdout).unwrap();
    assert!(table.contains(&id_a) && table.contains(&id_b), "{table}");
    assert!(table.contains("done"), "{table}");
}

#[test]
fn sigkilled_daemon_restarted_on_same_store_resumes_every_job() {
    let dir = tmp_dir("sigkill");
    let p = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    let sock = p("daemon.sock");
    let store = p("store");
    let axes: &[&str] = &[
        "--seed",
        "11",
        "--reads",
        "0,20,40,60,80,100",
        "--requests",
        "4000",
    ];

    ok(&dramctrl()
        .args(["sweep", "--quiet", "--jsonl", &p("base.jsonl")])
        .args(axes)
        .output()
        .unwrap());

    // Daemon #1: accept the job, commit at least one unit, then die by
    // SIGKILL mid-sweep.
    let mut daemon1 = Daemon::spawn(&sock, &store, "400");
    wait_ready(&sock);
    let id = submit(&sock, "alice", axes);
    let journal = dir.join("store").join(&id).join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let committed = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if committed >= 2 {
            break; // header + at least one record is on disk
        }
        assert!(Instant::now() < deadline, "no unit ever committed");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon1.kill();
    let before = std::fs::read_to_string(&journal).unwrap();

    // Daemon #2 on the same store: recovery re-queues the job; a watch
    // replays the committed records and streams the rest as they finish.
    let _daemon2 = Daemon::spawn(&sock, &store, "400");
    wait_ready(&sock);
    let out = ok(&dramctrl()
        .args(["watch", &id, "--to", &sock, "--jsonl", &p("resumed.jsonl")])
        .output()
        .unwrap())
    .clone();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("6 ok, 0 failed"), "{stdout}");

    assert_eq!(
        std::fs::read(p("resumed.jsonl")).unwrap(),
        std::fs::read(p("base.jsonl")).unwrap(),
        "resumed service results != uninterrupted standalone sweep"
    );
    let after = std::fs::read_to_string(&journal).unwrap();
    assert!(
        after.starts_with(&before),
        "restart rewrote committed journal lines"
    );
    assert_eq!(
        after.lines().count(),
        1 + 6,
        "each unit committed exactly once after the restart"
    );
}

#[test]
fn watch_reconnect_rides_through_a_daemon_kill_and_restart() {
    let dir = tmp_dir("reconnect");
    let p = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    let sock = p("daemon.sock");
    let store = p("store");
    let axes: &[&str] = &[
        "--seed",
        "13",
        "--reads",
        "0,20,40,60,80,100",
        "--requests",
        "4000",
    ];

    ok(&dramctrl()
        .args(["sweep", "--quiet", "--jsonl", &p("base.jsonl")])
        .args(axes)
        .output()
        .unwrap());

    // Daemon #1 accepts the job; a `--reconnect` watcher starts
    // streaming while the daemon is still alive.
    let mut daemon1 = Daemon::spawn(&sock, &store, "400");
    wait_ready(&sock);
    let id = submit(&sock, "alice", axes);
    let watcher = dramctrl()
        .args([
            "watch",
            &id,
            "--to",
            &sock,
            "--reconnect",
            "--jsonl",
            &p("resumed.jsonl"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Let at least one unit commit, then SIGKILL the daemon out from
    // under the live watch.
    let journal = dir.join("store").join(&id).join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let committed = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if committed >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "no unit ever committed");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon1.kill();
    // Leave the watcher retrying against a dead socket for a moment —
    // it must back off, not exit.
    std::thread::sleep(Duration::from_millis(300));

    // Daemon #2 on the same store resumes the job; the watcher should
    // reconnect by itself and run the stream to completion.
    let _daemon2 = Daemon::spawn(&sock, &store, "400");
    let out = ok(&watcher.wait_with_output().unwrap()).clone();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("6 ok, 0 failed"), "{stdout}");

    // Replay dedup on resume: the reassembled report is byte-identical
    // to an uninterrupted standalone sweep — no gap, no duplicate.
    assert_eq!(
        std::fs::read(p("resumed.jsonl")).unwrap(),
        std::fs::read(p("base.jsonl")).unwrap(),
        "reconnected watch report != uninterrupted standalone sweep"
    );
}

/// One raw HTTP/1.1 GET; returns (status, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, body.to_owned())
}

#[test]
fn http_observability_endpoints_respond_on_a_live_daemon() {
    let dir = tmp_dir("http");
    let p = |n: &str| dir.join(n).to_str().unwrap().to_owned();
    let sock = p("daemon.sock");
    // Daemon stderr is nulled, so the resolved addr of port 0 would be
    // lost — derive a per-process port instead.
    let http = format!("127.0.0.1:{}", 21000 + std::process::id() % 20000);
    let _daemon = Daemon::spawn_with(
        &sock,
        &p("store"),
        "500",
        &["--http", &http, "--log-level", "debug"],
    );
    wait_ready(&sock);

    let id = submit(&sock, "alice", AXES);
    ok(&dramctrl()
        .args(["watch", &id, "--to", &sock])
        .output()
        .unwrap());

    let (code, metrics) = http_get(&http, "/metrics");
    assert_eq!(code, 200);
    for needle in [
        "# TYPE dramctrl_admission_total counter",
        "dramctrl_admission_total{result=\"accepted\"} 1",
        "dramctrl_tenant_served_units_total{tenant=\"alice\"} 3",
        "dramctrl_store_fsync_seconds_count{op=\"commit\"} 3",
        "dramctrl_executor_units_per_second",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }
    let (code, health) = http_get(&http, "/healthz");
    assert_eq!(code, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    let (code, jobs) = http_get(&http, "/jobs");
    assert_eq!(code, 200);
    assert!(jobs.contains(&format!("\"id\":\"{id}\"")), "{jobs}");

    // `status --json` emits the same machine-readable shape on one line.
    let out = ok(&dramctrl()
        .args(["status", "--to", &sock, "--json"])
        .output()
        .unwrap())
    .clone();
    let line = String::from_utf8(out.stdout).unwrap();
    assert_eq!(line.lines().count(), 1);
    assert!(
        line.starts_with("{\"event\":\"status\"") && line.contains("\"tenants\":"),
        "{line}"
    );
}

#[test]
fn version_prints_all_format_versions() {
    let out = ok(&dramctrl().arg("version").output().unwrap()).clone();
    let text = String::from_utf8(out.stdout.clone()).unwrap();
    for needle in ["dramctrl", "proto", "snap", "journal"] {
        assert!(text.contains(needle), "{text}");
    }
    // --version and -V say the same thing.
    for flag in ["--version", "-V"] {
        let alias = ok(&dramctrl().arg(flag).output().unwrap()).clone();
        assert_eq!(alias.stdout, out.stdout);
    }
}
