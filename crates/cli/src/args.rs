//! Tiny hand-rolled argument parsing (no external dependencies).

use dramctrl::{EccMode, PagePolicy, SchedPolicy};
use dramctrl_kernel::Tick;
use dramctrl_mem::{presets, AddrMapping, MemSpec};
use std::collections::BTreeMap;

/// A parsed `--flag value` map plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    multi: BTreeMap<String, Vec<String>>,
    positional: Vec<String>,
    switches: Vec<String>,
}

/// A user-facing argument error.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ArgError> {
    Err(ArgError(msg.into()))
}

impl Args {
    /// Parses `--flag value` pairs, `--switch`es (no value; must be listed
    /// in `switches`) and positional arguments.
    pub fn parse(
        argv: impl IntoIterator<Item = String>,
        switches: &[&str],
    ) -> Result<Args, ArgError> {
        Self::parse_with_repeats(argv, switches, &[])
    }

    /// Like [`Args::parse`], but flags listed in `repeatable` may appear
    /// any number of times and accumulate into [`Args::get_all`] instead
    /// of the duplicate-flag error (e.g. `--peer A --peer B`).
    pub fn parse_with_repeats(
        argv: impl IntoIterator<Item = String>,
        switches: &[&str],
        repeatable: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            // `--name` long options, plus single-letter short options like
            // `-o` (two characters, second alphabetic, so negative numbers
            // stay positional).
            let name = a.strip_prefix("--").or_else(|| {
                a.strip_prefix('-')
                    .filter(|n| n.len() == 1 && n.chars().all(|c| c.is_ascii_alphabetic()))
            });
            if let Some(name) = name {
                if switches.contains(&name) {
                    args.switches.push(name.to_owned());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                    if repeatable.contains(&name) {
                        args.multi.entry(name.to_owned()).or_default().push(value);
                    } else if args.flags.insert(name.to_owned(), value).is_some() {
                        return err(format!("--{name} given twice"));
                    }
                }
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// A flag's raw value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Every occurrence of a repeatable flag, in command-line order.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.multi.get(name).map_or(&[], Vec::as_slice)
    }

    /// Whether a switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A flag parsed with `FromStr`, or `default` when absent.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Rejects unknown flags (everything consumed must be in `known`).
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for name in self
            .flags
            .keys()
            .chain(self.multi.keys())
            .chain(self.switches.iter())
        {
            if !known.contains(&name.as_str()) {
                return err(format!("unknown option --{name}"));
            }
        }
        Ok(())
    }
}

/// Parses a duration like `10ns`, `1.5us`, `2ms` or a bare picosecond
/// count into ticks.
pub fn parse_duration(s: &str) -> Result<Tick, ArgError> {
    let (num, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .unwrap_or((s, "ps"));
    let value: f64 = num
        .parse()
        .map_err(|_| ArgError(format!("bad duration {s:?}")))?;
    let scale = match unit {
        "ps" => 1.0,
        "ns" => 1e3,
        "us" => 1e6,
        "ms" => 1e9,
        "s" => 1e12,
        other => return err(format!("unknown time unit {other:?} in {s:?}")),
    };
    if value < 0.0 {
        return err(format!("negative duration {s:?}"));
    }
    Ok((value * scale).round() as Tick)
}

/// Parses a size like `64`, `4KiB`, `2MiB`, `1GiB` into bytes.
pub fn parse_size(s: &str) -> Result<u64, ArgError> {
    let (num, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .unwrap_or((s, ""));
    let value: u64 = num
        .parse()
        .map_err(|_| ArgError(format!("bad size {s:?}")))?;
    let scale = match unit {
        "" | "B" => 1,
        "KiB" | "KB" | "K" | "k" => 1 << 10,
        "MiB" | "MB" | "M" | "m" => 1 << 20,
        "GiB" | "GB" | "G" | "g" => 1 << 30,
        other => return err(format!("unknown size unit {other:?} in {s:?}")),
    };
    Ok(value * scale)
}

/// Looks up a device preset by (case-insensitive, punctuation-tolerant)
/// name, e.g. `ddr3-1600`, `DDR3_1600_x64`, `lpddr3`.
pub fn parse_device(name: &str) -> Result<MemSpec, ArgError> {
    let canon = |s: &str| {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase()
    };
    let want = canon(name);
    let all = presets::all();
    // Exact (canonicalised) match first, then unique prefix.
    if let Some(spec) = all.iter().find(|s| canon(s.name) == want) {
        return Ok(spec.clone());
    }
    let matches: Vec<_> = all
        .iter()
        .filter(|s| canon(s.name).starts_with(&want))
        .collect();
    match matches.len() {
        1 => Ok(matches[0].clone()),
        0 => err(format!(
            "unknown device {name:?}; available: {}",
            all.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
        )),
        _ => err(format!(
            "ambiguous device {name:?}: {}",
            matches
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Parses a page policy name.
pub fn parse_policy(s: &str) -> Result<PagePolicy, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "open" => Ok(PagePolicy::Open),
        "open-adaptive" | "open_adaptive" => Ok(PagePolicy::OpenAdaptive),
        "closed" => Ok(PagePolicy::Closed),
        "closed-adaptive" | "closed_adaptive" => Ok(PagePolicy::ClosedAdaptive),
        other => err(format!(
            "unknown page policy {other:?} (open, open-adaptive, closed, closed-adaptive)"
        )),
    }
}

/// Parses a scheduling policy name.
pub fn parse_sched(s: &str) -> Result<SchedPolicy, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "fcfs" => Ok(SchedPolicy::Fcfs),
        "frfcfs" | "fr-fcfs" => Ok(SchedPolicy::FrFcfs),
        other => err(format!("unknown scheduler {other:?} (fcfs, frfcfs)")),
    }
}

/// Parses an ECC mode name.
pub fn parse_ecc(s: &str) -> Result<EccMode, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "none" => Ok(EccMode::None),
        "secded" | "sec-ded" | "sec_ded" => Ok(EccMode::SecDed),
        "chipkill" => Ok(EccMode::Chipkill),
        other => err(format!(
            "unknown ECC mode {other:?} (none, secded, chipkill)"
        )),
    }
}

/// Parses a `--ras` fault rate (faults per gigabit-hour).
pub fn parse_ras_rate(s: &str) -> Result<f64, ArgError> {
    s.parse::<f64>()
        .ok()
        .filter(|r| r.is_finite() && *r >= 0.0)
        .ok_or_else(|| {
            ArgError(format!(
                "--ras: {s:?} is not a non-negative fault rate (faults per gigabit-hour, e.g. 2e11)"
            ))
        })
}

/// Parses an address mapping name.
pub fn parse_mapping(s: &str) -> Result<AddrMapping, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "rorabacoch" => Ok(AddrMapping::RoRaBaCoCh),
        "rorabachco" => Ok(AddrMapping::RoRaBaChCo),
        "rocorabach" => Ok(AddrMapping::RoCoRaBaCh),
        other => err(format!(
            "unknown mapping {other:?} (RoRaBaCoCh, RoRaBaChCo, RoCoRaBaCh)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_switches_positionals() {
        let argv = ["--device", "ddr3", "trace.txt", "--csv", "--requests", "5"].map(String::from);
        let a = Args::parse(argv, &["csv"]).unwrap();
        assert_eq!(a.get("device"), Some("ddr3"));
        assert!(a.switch("csv"));
        assert_eq!(a.positional(), ["trace.txt"]);
        assert_eq!(a.parse_or("requests", 0u64).unwrap(), 5);
        assert_eq!(a.parse_or("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn short_options_and_negative_positionals() {
        let a = Args::parse(["-o", "out.txt", "-5"].map(String::from), &[]).unwrap();
        assert_eq!(a.get("o"), Some("out.txt"));
        assert_eq!(a.positional(), ["-5"]);
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(Args::parse(["--x"].map(String::from), &[]).is_err());
        assert!(Args::parse(["--x", "1", "--x", "2"].map(String::from), &[]).is_err());
    }

    #[test]
    fn repeatable_flags_accumulate_in_order() {
        let argv = ["--peer", "a", "--seed", "7", "--peer", "b"].map(String::from);
        let a = Args::parse_with_repeats(argv, &[], &["peer"]).unwrap();
        assert_eq!(a.get_all("peer"), ["a", "b"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_all("seed"), [] as [&str; 0]);
        // Repeatable names still count as known flags.
        assert!(a.ensure_known(&["peer", "seed"]).is_ok());
        assert!(a.ensure_known(&["seed"]).is_err());
        // Non-repeatable duplicates stay an error even when another flag
        // is repeatable.
        let argv = ["--seed", "1", "--seed", "2"].map(String::from);
        assert!(Args::parse_with_repeats(argv, &[], &["peer"]).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = Args::parse(["--bogus", "1"].map(String::from), &[]).unwrap();
        assert!(a.ensure_known(&["device"]).is_err());
        assert!(a.ensure_known(&["bogus"]).is_ok());
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration("10ns").unwrap(), 10_000);
        assert_eq!(parse_duration("1.5us").unwrap(), 1_500_000);
        assert_eq!(parse_duration("250").unwrap(), 250);
        assert_eq!(parse_duration("2ms").unwrap(), 2_000_000_000);
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("5parsecs").is_err());
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size("64").unwrap(), 64);
        assert_eq!(parse_size("4KiB").unwrap(), 4096);
        assert_eq!(parse_size("2MiB").unwrap(), 2 << 20);
        assert!(parse_size("9XiB").is_err());
    }

    #[test]
    fn device_lookup() {
        assert_eq!(parse_device("DDR3-1600-x64").unwrap().name, "DDR3-1600-x64");
        assert_eq!(parse_device("ddr3_1600_x64").unwrap().name, "DDR3-1600-x64");
        assert_eq!(parse_device("wideio").unwrap().name, "WideIO-200-x128");
        assert!(parse_device("ddr3").is_err(), "ambiguous");
        assert!(parse_device("sram").is_err());
    }

    #[test]
    fn ecc_and_ras_rate() {
        assert_eq!(parse_ecc("SEC-DED").unwrap(), EccMode::SecDed);
        assert_eq!(parse_ecc("chipkill").unwrap(), EccMode::Chipkill);
        assert!(parse_ecc("parity").is_err());
        assert_eq!(parse_ras_rate("2e11").unwrap(), 2e11);
        assert_eq!(parse_ras_rate("0").unwrap(), 0.0);
        assert!(parse_ras_rate("-1").is_err());
        assert!(parse_ras_rate("NaN").is_err());
        assert!(parse_ras_rate("lots").is_err());
    }

    #[test]
    fn policy_sched_mapping() {
        assert_eq!(
            parse_policy("open-adaptive").unwrap(),
            PagePolicy::OpenAdaptive
        );
        assert!(parse_policy("half-open").is_err());
        assert_eq!(parse_sched("fr-fcfs").unwrap(), SchedPolicy::FrFcfs);
        assert_eq!(
            parse_mapping("rocorabach").unwrap(),
            AddrMapping::RoCoRaBaCh
        );
    }
}
