//! `dramctrl` — command-line front end to the simulator family.
//!
//! ```text
//! dramctrl devices
//! dramctrl run --device ddr3-1600 --gen random --reads 70 --requests 100000
//! dramctrl record --gen linear --requests 10000 -o trace.txt
//! dramctrl replay trace.txt --device lpddr3 --policy closed
//! dramctrl sweep --policies open,closed --reads 0,50,100 --jsonl report.jsonl
//! ```

mod args;

use args::{
    parse_device, parse_duration, parse_ecc, parse_mapping, parse_policy, parse_ras_rate,
    parse_sched, parse_size, ArgError, Args,
};
use dramctrl::{CtrlConfig, DramCtrl, FaultModel, RasConfig};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_kernel::fsio::write_atomic;
use dramctrl_kernel::snap::{fingerprint, SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{presets, Controller, MemSpec};
use dramctrl_obs::{ChromeTracer, EpochRecorder};
use dramctrl_power::{drampower_energy, micron_power};
use dramctrl_stats::Report;
use dramctrl_traffic::{
    DramAwareGen, LinearGen, RandomGen, SnapGen, TestSummary, Tester, TraceEntry, TraceGen,
    TrafficGen,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
dramctrl — event-based DRAM controller simulator (ISPASS 2014 reproduction)

USAGE:
    dramctrl devices                          list device presets
    dramctrl run [OPTIONS]                    run a synthetic workload
    dramctrl record [OPTIONS] -o FILE         write a request trace file
                                              (alias: trace-record)
    dramctrl replay FILE [OPTIONS]            replay a trace file
    dramctrl sweep [OPTIONS]                  run a parallel parameter-sweep campaign
    dramctrl serve --listen ADDR --store DIR  run the always-up simulation service
    dramctrl submit --to ADDR [AXES]          submit a sweep to a running service
    dramctrl watch ID --to ADDR [OPTIONS]     stream a submitted job's results
    dramctrl status --to ADDR                 show a service's job table
    dramctrl dispatch --peer ADDR... [AXES]   fan a sweep out to a daemon fleet,
                                              surviving dead/slow/lying peers
    dramctrl version                          print crate/protocol/format versions

RUN / RECORD OPTIONS:
    --device NAME        device preset (default ddr3-1600-x64)
    --model event|cycle  controller model (default event)
    --gen linear|random|dram-aware   traffic pattern (default linear)
    --reads PCT          read percentage 0..100 (default 100)
    --requests N         number of requests (default 100000)
    --period DUR         inter-transaction time, e.g. 10ns (default 0 = saturate)
    --range SIZE         address range, e.g. 256MiB (default 256MiB)
    --block SIZE         request size in bytes (default 64)
    --stride N           dram-aware: sequential bursts per row (default 8)
    --banks N            dram-aware: banks targeted (default 4)
    --policy P           open|open-adaptive|closed|closed-adaptive (default open)
    --sched S            fcfs|frfcfs (default frfcfs)
    --mapping M          RoRaBaCoCh|RoRaBaChCo|RoCoRaBaCh (default RoRaBaCoCh)
    --seed N             RNG seed (default 1)
    --powerdown DUR      enable power-down after this idle time
    --energy             also print the DRAMPower-style energy breakdown

RAS OPTIONS (run and replay; faults are seeded and deterministic):
    --ras RATE           inject faults at RATE transient upsets per
                         gigabit-hour (e.g. 2e11); derived stuck-row,
                         rank-failure and link-error rates scale with it
    --ecc MODE           none|secded|chipkill (default secded;
                         requires --ras)

CHECKPOINT OPTIONS (run; snapshots are deterministic — resuming in a
fresh process is byte-identical to never having stopped):
    --checkpoint FILE    write a state snapshot to FILE and stop once
                         --checkpoint-at requests have been injected
    --checkpoint-at N    injection count at which to pause (requires
                         --checkpoint)
    --restore FILE       resume a run from a snapshot; the command line
                         must describe the same simulation that wrote it
                         (a mismatch is refused)

OBSERVABILITY OPTIONS (run and replay):
    --perfetto FILE      write a Chrome/Perfetto trace of every DRAM command
                         (open the file at https://ui.perfetto.dev)
    --epochs DUR         record an epoch time-series at this interval
                         (e.g. 1us; written to --epochs-out)
    --epochs-out FILE    epoch output path; .jsonl writes JSON lines,
                         anything else CSV (default epochs.csv)
    --stats-json FILE    write the full statistics report as JSON

SWEEP OPTIONS (comma-separated lists become campaign axes; their
Cartesian product runs in parallel with per-job deterministic seeds):
    --devices A,B        device presets (default ddr3-1333-x64)
    --models L           event,cycle (default event)
    --policies L         page policies (default open)
    --scheds L           schedulers (default frfcfs)
    --mappings L         address mappings (default RoRaBaCoCh)
    --channels L         channel counts (default 1)
    --gens L             linear,random,dram-aware (default linear)
    --reads L            read percentages (default 100)
    --requests L         request counts (default 10000)
    --range SIZE         linear/random address range (default 256MiB)
    --block N            request size in bytes (default 64)
    --stride N           dram-aware stride in bursts (default 8)
    --banks N            dram-aware banks (default 4)
    --ras L              fault-rate axis, faults per gigabit-hour
                         (default 0 = fault-free; e.g. 0,1e11,2e11)
    --seed N             campaign seed (default 1)
    --workers N          worker threads, 0 = all cores (default 0)
    --retries N          attempts per job before it is recorded failed (default 2)
    --jsonl FILE         also write the deterministic JSON-lines report
    --md FILE            also write the result table as markdown
    --csv                print the result table as CSV
    --quiet              suppress the stderr progress line
    --obs-dir DIR        per-job observability artifacts: DIR/job-<index>
                         gets .trace.json (Perfetto), .epochs.csv and
                         .stats.json
    --journal PATH       write-ahead journal: every finished job is
                         fsync'd to PATH (a directory gets journal.jsonl)
                         before it counts as done
    --resume PATH        resume a killed sweep from its journal: verifies
                         the campaign matches, skips journaled jobs, runs
                         the rest; merged reports are byte-identical to an
                         uninterrupted run's
    --checkpoint-every N checkpoint each running job every N injected
                         requests (requires --journal/--resume; snapshots
                         live beside the journal and are removed when the
                         sweep completes)
    --shard I/N          run only jobs with index % N == I (requires
                         --journal/--resume); N cooperating processes
                         given shards 0/N..N-1/N partition the campaign,
                         and --merge recombines their journals
    --merge P1,P2,...    merge shard journals into the full report (with
                         the same axis flags the shards ran); no
                         simulation happens, and the merged --jsonl/--md
                         are byte-identical to an unsharded run's
    --group-commit-ms N  batch journal fsyncs in an N ms window instead
                         of one per record (higher throughput, same
                         crash-safety: a lost batch tail re-runs
                         deterministically on resume; default 0 = every
                         record)
    --metrics-json FILE  write executor operational metrics (units/s,
                         worker busy/idle, journal batch sizes, retries)
                         as JSON when the sweep finishes

SERVICE OPTIONS:
    serve:
      --listen ADDR      socket to listen on: a path (Unix socket) or
                         host:port (TCP); port 0 picks one (announced on
                         stderr)
      --store DIR        durable job store; a killed daemon restarted on
                         the same store resumes every in-flight job
      --max-jobs N       admission bound: reject submits at N unfinished
                         jobs (default 8)
      --quantum N        preemption quantum in injected requests: long
                         jobs checkpoint-pause at request boundaries so
                         tenants share the simulator fairly (default 1000)
      --http ADDR        also serve read-only HTTP observability
                         endpoints on ADDR (path or host:port):
                         /metrics (Prometheus), /metrics.json, /healthz
                         (503 when the store is unwritable), /jobs
      --log-level LEVEL  stderr log threshold: error|warn|info|debug|trace
                         (default info; lines are structured key=\"value\")
      --client-timeout D per-connection read/write deadline; idle or
                         non-reading clients are evicted after D
                         (e.g. 30s, 250ms; 0 disables; default 30s)
      --subscriber-buffer N
                         outbound event-buffer depth per watcher; a
                         watcher that stops reading is evicted once its
                         buffer fills (default 1024)
      --retain N         garbage-collect the store: keep at most N
                         finished jobs (oldest evicted first, at startup
                         and on every completion; running and queued jobs
                         are never touched; default: keep everything)
    submit (takes the same axis flags as sweep, plus):
      --to ADDR          the service to submit to
      --tenant NAME      tenant for fair scheduling (default cli)
      --epochs DUR       request observed units: epoch series binned at
                         this interval streamed to watchers (e.g. 1ms)
    watch:
      --to ADDR          the service to connect to
      --jsonl FILE       write streamed records as a JSON-lines report
                         (byte-identical to the same campaign's
                         `sweep --jsonl` output)
      --obs-dir DIR      write streamed stats/epoch artifacts per unit
      --reconnect        survive daemon restarts: retry with exponential
                         backoff and resume the stream gap- and dup-free
                         from the last-seen record
    status:
      --to ADDR          the service to query
      --peer ADDR        (repeatable) query a whole fleet instead: one
                         row per peer with a reachability column and
                         aggregated job counts
      --json             print the raw status event (one JSON line with
                         per-job and per-tenant detail) instead of tables;
                         with --peer, one JSON line per peer
    dispatch (takes the same axis flags as sweep, plus):
      --peer ADDR        (repeatable) a daemon to dispatch shards to
      --peers-file FILE  additional peers, one address per line
                         (# comments and blank lines ignored)
      --workdir DIR      where shard journals accumulate (default: a
                         fresh directory under the system temp dir)
      --tenant NAME      tenant submitted to every peer (default dispatch)
      --timeout D        per-read streaming deadline; a connected peer
                         silent for this long fails its shard and the
                         shard is re-dispatched (e.g. 30s; 0 disables;
                         default 60s)
      --rounds N         assignment rounds before giving up with an
                         `incomplete` error (default 10)
      --no-hedge         don't re-issue slow shards to idle peers
      --json             emit progress events (shard assigned /
                         re-dispatched / hedged / merged) as JSON lines
                         on stderr instead of logfmt
      --jsonl/--md/--csv as sweep; the merged report is byte-identical
                         to a local `dramctrl sweep` of the same flags
";

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let cmd = argv.remove(0);
    let result = match cmd.as_str() {
        "devices" => devices(),
        "run" => run(argv),
        "record" | "trace-record" => record(argv),
        "replay" => replay(argv),
        "sweep" => sweep(argv),
        "serve" => serve(argv),
        "submit" => submit(argv),
        "watch" => watch(argv),
        "status" => status(argv),
        "dispatch" => dispatch(argv),
        "version" | "--version" | "-V" => {
            print_version();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(ArgError(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One line, actionable, and the conventional usage-error code
            // (2) so scripts can tell bad invocations from failed runs.
            // Service commands emit the line through the structured logger
            // so daemon/client stderr stays machine-parseable end to end.
            if matches!(
                cmd.as_str(),
                "serve" | "submit" | "watch" | "status" | "dispatch"
            ) {
                dramctrl_obs::log_error!(
                    cmd.as_str(), e;
                    "hint" => "run `dramctrl help` for usage"
                );
            } else {
                eprintln!("error: {e} (run `dramctrl help` for usage)");
            }
            ExitCode::from(2)
        }
    }
}

fn devices() -> Result<(), ArgError> {
    println!(
        "{:<18} {:>9} {:>6} {:>6} {:>9} {:>10} {:>11}",
        "device", "bus bits", "banks", "ranks", "burst B", "peak GB/s", "capacity"
    );
    for spec in presets::all() {
        println!(
            "{:<18} {:>9} {:>6} {:>6} {:>9} {:>10.2} {:>8} MiB",
            spec.name,
            spec.org.bus_width_bits(),
            spec.org.banks,
            spec.org.ranks,
            spec.org.burst_bytes(),
            spec.peak_bandwidth_gbps(),
            spec.org.capacity_bytes() >> 20,
        );
    }
    Ok(())
}

const RUN_OPTS: &[&str] = &[
    "device",
    "model",
    "gen",
    "reads",
    "requests",
    "period",
    "range",
    "block",
    "stride",
    "banks",
    "policy",
    "sched",
    "mapping",
    "seed",
    "powerdown",
    "energy",
    "ras",
    "ecc",
    "o",
    "perfetto",
    "epochs",
    "epochs-out",
    "stats-json",
    "checkpoint",
    "checkpoint-at",
    "restore",
];

/// The CLI's run-time-selected probe: each sink is present only when its
/// flag was given. `(None, None)` observes nothing.
type CliProbe = (Option<ChromeTracer>, Option<EpochRecorder>);

/// Observability outputs requested on the command line.
struct ObsOpts {
    perfetto: Option<String>,
    epochs_out: Option<String>,
    interval: Tick,
    stats_json: Option<String>,
}

impl ObsOpts {
    fn parse(a: &Args) -> Result<Self, ArgError> {
        let interval = parse_duration(a.get("epochs").unwrap_or("1us"))?;
        if interval == 0 {
            return Err(ArgError("--epochs interval must be non-zero".into()));
        }
        // --epochs alone picks the default output path; --epochs-out alone
        // uses the default 1 us interval.
        let epochs_out = match (a.get("epochs-out"), a.get("epochs")) {
            (Some(path), _) => Some(path.to_owned()),
            (None, Some(_)) => Some("epochs.csv".to_owned()),
            (None, None) => None,
        };
        Ok(Self {
            perfetto: a.get("perfetto").map(str::to_owned),
            epochs_out,
            interval,
            stats_json: a.get("stats-json").map(str::to_owned),
        })
    }

    /// Builds the probe pair matching the requested sinks.
    fn probe(&self) -> CliProbe {
        (
            self.perfetto.as_ref().map(|_| ChromeTracer::new()),
            self.epochs_out
                .as_ref()
                .map(|_| EpochRecorder::new(self.interval)),
        )
    }

    /// Writes the trace and epoch files from a finished run's probe.
    fn write_probe(&self, probe: CliProbe, end: Tick) -> Result<(), ArgError> {
        let write = |path: &str, text: String| {
            write_atomic(path, text).map_err(|e| ArgError(format!("writing {path:?}: {e}")))
        };
        if let (Some(path), Some(tracer)) = (&self.perfetto, probe.0) {
            write(path, tracer.to_json())?;
            eprintln!(
                "wrote Perfetto trace ({} events) to {path} — open at https://ui.perfetto.dev",
                tracer.event_count()
            );
        }
        if let (Some(path), Some(mut epochs)) = (&self.epochs_out, probe.1) {
            epochs.finish(end);
            let text = if path.ends_with(".jsonl") {
                epochs.to_jsonl()
            } else {
                epochs.to_csv()
            };
            write(path, text)?;
            eprintln!("wrote {} epochs to {path}", epochs.rows().len());
        }
        Ok(())
    }

    /// Writes the machine-readable statistics report, when requested.
    fn write_stats(&self, report: &Report) -> Result<(), ArgError> {
        if let Some(path) = &self.stats_json {
            write_atomic(path, report.to_json())
                .map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
            eprintln!("wrote {} statistics to {path}", report.len());
        }
        Ok(())
    }
}

/// Builds the optional fault model config from `--ras` / `--ecc`.
/// `--ecc` alone is rejected: an ECC mode without a fault rate has no
/// observable effect, so the contradiction is surfaced instead of
/// silently ignored.
fn parse_ras_config(a: &Args) -> Result<Option<RasConfig>, ArgError> {
    match (a.get("ras"), a.get("ecc")) {
        (None, None) => Ok(None),
        (None, Some(_)) => Err(ArgError(
            "--ecc has no effect without --ras RATE; add --ras or drop --ecc".into(),
        )),
        (Some(rate), ecc) => {
            let seed: u64 = a.parse_or("seed", 1u64)?;
            let mut ras = RasConfig::from_error_rate(parse_ras_rate(rate)?, seed);
            if let Some(mode) = ecc {
                ras = ras.with_ecc(parse_ecc(mode)?);
            }
            Ok(Some(ras))
        }
    }
}

/// Prints the RAS summary line for an armed run; no-op when `--ras` was
/// not given.
fn print_ras(fm: Option<&FaultModel>) {
    let Some(fm) = fm else { return };
    let stats = fm.stats();
    let get = |name: &str| {
        stats
            .entries()
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    };
    println!(
        "RAS                : {} corrected, {} uncorrectable, {} silent, {} retries, {} row remaps, {} rank(s) offlined",
        get("ras_corrected"),
        get("ras_uncorrected"),
        get("ras_silent"),
        get("ras_retries"),
        get("ras_row_remaps"),
        get("ras_ranks_offlined"),
    );
}

struct WorkloadSpec {
    spec: MemSpec,
    gen: Box<dyn SnapGen>,
    /// Canonical description of every parameter that shapes the request
    /// stream — one input to the checkpoint fingerprint.
    desc: String,
}

fn build_workload(a: &Args) -> Result<WorkloadSpec, ArgError> {
    let spec = parse_device(a.get("device").unwrap_or("ddr3-1600-x64"))?;
    let reads: u8 = a.parse_or("reads", 100u8)?;
    if reads > 100 {
        return Err(ArgError("--reads must be 0..=100".into()));
    }
    let requests: u64 = a.parse_or("requests", 100_000u64)?;
    let period = parse_duration(a.get("period").unwrap_or("0"))?;
    let range = parse_size(a.get("range").unwrap_or("256MiB"))?;
    let block: u32 = a.parse_or("block", 64u32)?;
    let seed: u64 = a.parse_or("seed", 1u64)?;
    let mapping = parse_mapping(a.get("mapping").unwrap_or("rorabacoch"))?;
    let gen_name = a.get("gen").unwrap_or("linear");
    let gen: Box<dyn SnapGen> = match gen_name {
        "linear" => Box::new(LinearGen::new(
            0, range, block, reads, period, requests, seed,
        )),
        "random" => Box::new(RandomGen::new(
            0, range, block, reads, period, requests, seed,
        )),
        "dram-aware" | "dram_aware" => {
            let stride: u64 = a.parse_or("stride", 8u64)?;
            let banks: u32 = a.parse_or("banks", 4u32)?;
            Box::new(DramAwareGen::new(
                spec.org, mapping, 1, 0, stride, banks, reads, period, requests, seed,
            ))
        }
        other => return Err(ArgError(format!("unknown generator {other:?}"))),
    };
    let stride: u64 = a.parse_or("stride", 8u64)?;
    let banks: u32 = a.parse_or("banks", 4u32)?;
    let desc = format!(
        "device={} gen={gen_name} reads={reads} requests={requests} period={period} \
         range={range} block={block} stride={stride} banks={banks} seed={seed} \
         mapping={mapping:?}",
        spec.name
    );
    Ok(WorkloadSpec { spec, gen, desc })
}

/// Checkpoint/restore options for `run`.
struct RunCkpt {
    checkpoint: Option<String>,
    at: Option<u64>,
    restore: Option<String>,
}

impl RunCkpt {
    fn parse(a: &Args) -> Result<Self, ArgError> {
        let ck = Self {
            checkpoint: a.get("checkpoint").map(str::to_owned),
            at: a
                .get("checkpoint-at")
                .map(str::parse)
                .transpose()
                .map_err(|_| ArgError("--checkpoint-at: cannot parse injection count".into()))?,
            restore: a.get("restore").map(str::to_owned),
        };
        match (&ck.checkpoint, ck.at) {
            (Some(_), None) => Err(ArgError(
                "--checkpoint needs --checkpoint-at N (where to pause)".into(),
            )),
            (None, Some(_)) => Err(ArgError(
                "--checkpoint-at needs --checkpoint FILE (where to write)".into(),
            )),
            _ => Ok(ck),
        }
    }
}

/// Drives a `run`/`replay` simulation with optional restore-on-entry and
/// pause-at-checkpoint. Returns `None` when the run paused (the snapshot
/// was written and the caller should exit without printing a summary).
fn drive_run<C: Controller + SnapState>(
    gen: &mut (impl TrafficGen + SnapState),
    ctrl: &mut C,
    fp: u64,
    ck: &RunCkpt,
    tester: &Tester,
) -> Result<Option<TestSummary>, ArgError> {
    let mut run = tester.begin();
    if let Some(path) = &ck.restore {
        let bytes = std::fs::read(path)
            .map_err(|e| ArgError(format!("reading checkpoint {path:?}: {e}")))?;
        restore_state_of(&bytes, fp, &mut run, gen, ctrl)
            .map_err(|e| ArgError(format!("cannot restore checkpoint {path:?}: {e}")))?;
        eprintln!(
            "restored checkpoint {path} ({} requests already injected)",
            run.injected()
        );
    }
    while run.step(gen, ctrl, Tick::MAX) {
        if let (Some(path), Some(n)) = (&ck.checkpoint, ck.at) {
            if run.injected() >= n {
                let mut w = SnapWriter::new(fp);
                run.save_state(&mut w);
                gen.save_state(&mut w);
                ctrl.save_state(&mut w);
                write_atomic(path, w.into_bytes())
                    .map_err(|e| ArgError(format!("writing checkpoint {path:?}: {e}")))?;
                eprintln!(
                    "checkpoint written to {path} at {} injected requests; \
                     continue with --restore {path}",
                    run.injected()
                );
                return Ok(None);
            }
        }
    }
    Ok(Some(run.finish(ctrl)))
}

/// Restores `(run, gen, ctrl)` — the fixed component order — from
/// snapshot bytes, rejecting wrong-fingerprint and trailing-garbage
/// states.
fn restore_state_of(
    bytes: &[u8],
    fp: u64,
    run: &mut dramctrl_traffic::TestRun,
    gen: &mut impl SnapState,
    ctrl: &mut impl SnapState,
) -> Result<(), SnapError> {
    let mut r = SnapReader::new(bytes, fp)?;
    run.restore_state(&mut r)?;
    gen.restore_state(&mut r)?;
    ctrl.restore_state(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapError::Corrupt(
            "snapshot has trailing bytes after the controller state".into(),
        ));
    }
    Ok(())
}

fn print_summary(s: &TestSummary, spec: &MemSpec) {
    println!(
        "requests completed : {}",
        s.reads_completed + s.writes_completed
    );
    println!(
        "  reads / writes   : {} / {}",
        s.reads_completed, s.writes_completed
    );
    println!("simulated time     : {:.3} us", s.duration as f64 / 1e6);
    println!(
        "bandwidth          : {:.2} GB/s of {:.2} GB/s peak ({:.1}% bus)",
        s.bandwidth_gbps,
        spec.peak_bandwidth_gbps(),
        s.bus_util * 100.0
    );
    println!(
        "read latency       : mean {:.1} ns, p50 {} ns, p95 {} ns, p99 {} ns",
        s.read_lat_ns.mean(),
        s.read_lat_ns.quantile(0.5).unwrap_or(0),
        s.read_lat_ns.quantile(0.95).unwrap_or(0),
        s.read_lat_ns.quantile(0.99).unwrap_or(0),
    );
    println!(
        "row-hit rate       : {:.1}%",
        s.ctrl.page_hit_rate() * 100.0
    );
}

fn run(argv: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(argv, &["energy"])?;
    a.ensure_known(RUN_OPTS)?;
    let WorkloadSpec {
        spec,
        mut gen,
        desc,
    } = build_workload(&a)?;
    let policy = parse_policy(a.get("policy").unwrap_or("open"))?;
    let sched = parse_sched(a.get("sched").unwrap_or("frfcfs"))?;
    let mapping = parse_mapping(a.get("mapping").unwrap_or("rorabacoch"))?;
    let obs = ObsOpts::parse(&a)?;
    let ras = parse_ras_config(&a)?;
    let ck = RunCkpt::parse(&a)?;
    let model = a.get("model").unwrap_or("event").to_owned();
    // The fingerprint covers everything that shapes the simulation, so a
    // snapshot can only be restored by the command line that matches it.
    let fp = fingerprint(
        format!(
            "run model={model} policy={policy:?} sched={sched:?} ras={ras:?} \
             powerdown={} {desc}",
            a.get("powerdown").unwrap_or("0")
        )
        .as_bytes(),
    );
    let tester = Tester::new(1_000_000, 10_000);

    match model.as_str() {
        "event" => {
            let mut cfg = CtrlConfig::new(spec.clone());
            cfg.page_policy = policy;
            cfg.scheduling = sched;
            cfg.mapping = mapping;
            cfg.ras = ras;
            if let Some(pd) = a.get("powerdown") {
                cfg.powerdown_idle = parse_duration(pd)?;
            }
            let mut ctrl =
                DramCtrl::with_probe(cfg, obs.probe()).map_err(|e| ArgError(e.to_string()))?;
            let Some(summary) = drive_run(&mut gen, &mut ctrl, fp, &ck, &tester)? else {
                return Ok(());
            };
            println!("== {} (event-based model) ==", spec.name);
            print_summary(&summary, &spec);
            print_ras(ctrl.fault_model());
            let act = Controller::activity(&mut ctrl, summary.duration);
            let power = micron_power(&spec, &act);
            println!("DRAM power         : {:.1} mW", power.total_mw());
            if a.switch("energy") {
                println!();
                print!("{}", drampower_energy(&spec, &act).report("energy"));
            }
            obs.write_stats(&Controller::report(&ctrl, "ctrl", summary.duration))?;
            obs.write_probe(ctrl.into_probe(), summary.duration)?;
        }
        "cycle" => {
            let mut cfg = CycleConfig::new(spec.clone());
            cfg.page_policy = if policy.is_open() {
                CyclePagePolicy::Open
            } else {
                CyclePagePolicy::Closed
            };
            cfg.scheduling = match sched {
                dramctrl::SchedPolicy::Fcfs => CycleSched::Fcfs,
                dramctrl::SchedPolicy::FrFcfs => CycleSched::FrFcfs,
            };
            cfg.mapping = mapping;
            cfg.ras = ras;
            let mut ctrl =
                CycleCtrl::with_probe(cfg, obs.probe()).map_err(|e| ArgError(e.to_string()))?;
            let Some(summary) = drive_run(&mut gen, &mut ctrl, fp, &ck, &tester)? else {
                return Ok(());
            };
            println!("== {} (cycle-based baseline) ==", spec.name);
            print_summary(&summary, &spec);
            print_ras(ctrl.fault_model());
            let act = Controller::activity(&mut ctrl, summary.duration);
            println!(
                "DRAM power         : {:.1} mW",
                micron_power(&spec, &act).total_mw()
            );
            obs.write_stats(&Controller::report(&ctrl, "ctrl", summary.duration))?;
            obs.write_probe(ctrl.into_probe(), summary.duration)?;
        }
        other => return Err(ArgError(format!("unknown model {other:?}"))),
    }
    Ok(())
}

const SWEEP_OPTS: &[&str] = &[
    "devices",
    "models",
    "policies",
    "scheds",
    "mappings",
    "channels",
    "gens",
    "reads",
    "requests",
    "range",
    "block",
    "stride",
    "banks",
    "ras",
    "seed",
    "workers",
    "retries",
    "jsonl",
    "md",
    "csv",
    "quiet",
    "obs-dir",
    "journal",
    "resume",
    "checkpoint-every",
    "shard",
    "merge",
    "group-commit-ms",
    "metrics-json",
];

/// Resolves `--journal`/`--resume` PATH: a directory (existing, or a
/// trailing separator) means `PATH/journal.jsonl`.
fn journal_path(p: &str) -> PathBuf {
    let path = PathBuf::from(p);
    if path.is_dir() || p.ends_with('/') {
        path.join("journal.jsonl")
    } else {
        path
    }
}

/// Builds the campaign the sweep/submit axis flags describe. The name is
/// fixed (`sweep`) so a campaign submitted to a service produces records
/// byte-comparable with a local `sweep` run of the same flags.
fn campaign_from_args(a: &Args) -> Result<dramctrl_campaign::Campaign, ArgError> {
    use dramctrl_campaign::{Campaign, Model, TrafficPattern};

    let list = |name: &str, default: &str| -> Result<Vec<String>, ArgError> {
        let items: Vec<String> = a
            .get(name)
            .unwrap_or(default)
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        if items.is_empty() {
            return Err(ArgError(format!("--{name}: list must not be empty")));
        }
        Ok(items)
    };

    let devices = list("devices", "ddr3-1333-x64")?
        .iter()
        .map(|d| parse_device(d).map(|s| s.name.to_owned()))
        .collect::<Result<Vec<_>, _>>()?;
    let models = list("models", "event")?
        .iter()
        .map(|m| m.parse::<Model>().map_err(ArgError))
        .collect::<Result<Vec<_>, _>>()?;
    let policies = list("policies", "open")?
        .iter()
        .map(|p| parse_policy(p))
        .collect::<Result<Vec<_>, _>>()?;
    let scheds = list("scheds", "frfcfs")?
        .iter()
        .map(|s| parse_sched(s))
        .collect::<Result<Vec<_>, _>>()?;
    let mappings = list("mappings", "rorabacoch")?
        .iter()
        .map(|m| parse_mapping(m))
        .collect::<Result<Vec<_>, _>>()?;
    let channels = list("channels", "1")?
        .iter()
        .map(|c| {
            c.parse::<u32>()
                .map_err(|_| ArgError(format!("--channels: cannot parse {c:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let reads = list("reads", "100")?
        .iter()
        .map(|r| {
            r.parse::<u8>()
                .ok()
                .filter(|r| *r <= 100)
                .ok_or_else(|| ArgError(format!("--reads: {r:?} is not 0..=100")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let requests = list("requests", "10000")?
        .iter()
        .map(|n| {
            n.parse::<u64>()
                .map_err(|_| ArgError(format!("--requests: cannot parse {n:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let range = parse_size(a.get("range").unwrap_or("256MiB"))?;
    let block: u32 = a.parse_or("block", 64u32)?;
    let stride: u64 = a.parse_or("stride", 8u64)?;
    let banks: u32 = a.parse_or("banks", 4u32)?;
    let traffic = list("gens", "linear")?
        .iter()
        .map(|g| match g.as_str() {
            "linear" => Ok(TrafficPattern::Linear { range, block }),
            "random" => Ok(TrafficPattern::Random { range, block }),
            "dram-aware" | "dram_aware" => Ok(TrafficPattern::DramAware { stride, banks }),
            other => Err(ArgError(format!("unknown generator {other:?}"))),
        })
        .collect::<Result<Vec<_>, _>>()?;

    let error_rates = list("ras", "0")?
        .iter()
        .map(|r| parse_ras_rate(r))
        .collect::<Result<Vec<_>, _>>()?;

    let seed: u64 = a.parse_or("seed", 1u64)?;
    Ok(Campaign::new("sweep", seed)
        .devices(devices)
        .models(models)
        .policies(policies)
        .scheds(scheds)
        .mappings(mappings)
        .channels(channels)
        .traffic(traffic)
        .read_pcts(reads)
        .requests(requests)
        .error_rates(error_rates))
}

/// Parses `--shard I/N` into `(index, count)`.
fn parse_shard(s: &str) -> Result<(u32, u32), ArgError> {
    let bad = || ArgError(format!("--shard: expected I/N with I < N, got {s:?}"));
    let (i, n) = s.split_once('/').ok_or_else(bad)?;
    let i: u32 = i.trim().parse().map_err(|_| bad())?;
    let n: u32 = n.trim().parse().map_err(|_| bad())?;
    if n == 0 || i >= n {
        return Err(bad());
    }
    Ok((i, n))
}

fn sweep(argv: Vec<String>) -> Result<(), ArgError> {
    use dramctrl_bench::{run_job, run_job_resumable};
    use dramctrl_campaign::{
        merge_journals, run_campaign, run_campaign_journaled, run_campaign_shard, CampaignJournal,
        ExecutorConfig, JobMetrics, JobSpec, Progress,
    };

    let a = Args::parse(argv, &["csv", "quiet"])?;
    a.ensure_known(SWEEP_OPTS)?;
    let campaign = campaign_from_args(&a)?;
    let seed = campaign.seed;

    // --merge: recombine shard journals into the full report. Pure file
    // work — no simulation, no executor.
    if let Some(m) = a.get("merge") {
        for conflict in ["journal", "resume", "shard", "obs-dir", "checkpoint-every"] {
            if a.get(conflict).is_some() {
                return Err(ArgError(format!(
                    "--merge only reads journals; drop --{conflict}"
                )));
            }
        }
        let paths: Vec<PathBuf> = m.split(',').map(|p| journal_path(p.trim())).collect();
        let report = merge_journals(&campaign, &paths)
            .map_err(|e| ArgError(format!("merging journals: {e}")))?;
        return finish_report(&a, &report);
    }

    // Opt-in operational metrics: the registry outlives the run so the
    // final JSON export sees every sample. Metrics never touch report or
    // journal bytes (the executor guarantees it).
    let metrics_out = a.get("metrics-json").map(|p| {
        let registry = dramctrl_obs::Registry::new();
        let m = dramctrl_campaign::ExecMetrics::register(&registry);
        (p.to_owned(), registry, m)
    });
    let cfg = ExecutorConfig {
        workers: a.parse_or("workers", 0usize)?,
        max_attempts: {
            let retries: u32 = a.parse_or("retries", 2u32)?;
            if retries == 0 {
                return Err(ArgError("--retries must be at least 1".into()));
            }
            retries
        },
        progress: if a.switch("quiet") {
            Progress::Silent
        } else {
            Progress::Stderr
        },
        metrics: metrics_out.as_ref().map(|(_, _, m)| m.clone()),
        ..ExecutorConfig::default()
    };
    // Durable journal: --journal starts one, --resume picks an existing
    // one back up (verifying it matches this campaign).
    let mut journal = match (a.get("journal"), a.get("resume")) {
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "--journal and --resume are mutually exclusive; --resume \
                 already knows its journal"
                    .into(),
            ))
        }
        (Some(p), None) => {
            let path = journal_path(p);
            if let Some(parent) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)
                    .map_err(|e| ArgError(format!("creating {}: {e}", parent.display())))?;
            }
            Some(
                CampaignJournal::create(&path, &campaign)
                    .map_err(|e| ArgError(format!("creating journal {}: {e}", path.display())))?,
            )
        }
        (None, Some(p)) => {
            let path = journal_path(p);
            let j = CampaignJournal::resume(&path, &campaign)
                .map_err(|e| ArgError(format!("resuming {}: {e}", path.display())))?;
            eprintln!(
                "resuming: {} of {} jobs already journaled",
                j.completed().len(),
                campaign.len()
            );
            Some(j)
        }
        (None, None) => None,
    };

    let shard = a.get("shard").map(parse_shard).transpose()?;
    if shard.is_some() && journal.is_none() {
        return Err(ArgError(
            "--shard needs --journal or --resume: shards meet again only \
             through their journals"
                .into(),
        ));
    }
    // Opt-in group commit: batch journal fsyncs in a window. Crash-safe
    // because a lost unsynced tail re-runs deterministically on resume
    // and keep-first dedup keeps the first committed record canonical.
    let group_ms: u64 = a.parse_or("group-commit-ms", 0u64)?;
    if group_ms > 0 {
        let Some(j) = journal.as_mut() else {
            return Err(ArgError(
                "--group-commit-ms tunes the journal; add --journal or --resume".into(),
            ));
        };
        j.set_group_commit(Some(std::time::Duration::from_millis(group_ms)));
    }

    let every: u64 = a.parse_or("checkpoint-every", 0u64)?;
    if every > 0 {
        if journal.is_none() {
            return Err(ArgError(
                "--checkpoint-every needs --journal or --resume (snapshots \
                 live beside the journal)"
                    .into(),
            ));
        }
        if a.get("obs-dir").is_some() {
            return Err(ArgError(
                "--checkpoint-every cannot be combined with --obs-dir".into(),
            ));
        }
    }
    // Snapshots live beside the journal; remember the directory even when
    // this invocation doesn't checkpoint, so a plain `--resume` still
    // cleans up snapshots left by an interrupted `--checkpoint-every` run.
    let ckpt_dir = journal
        .as_ref()
        .map(|j| j.path().parent().unwrap_or(Path::new(".")).to_path_buf());
    let job_ckpt =
        move |dir: &Path, job: &JobSpec| dir.join(format!("ckpt-job-{:04}.snap", job.index));

    match shard {
        Some((i, n)) => eprintln!(
            "sweep: shard {i}/{n} of {} jobs, seed {}",
            campaign.len(),
            seed
        ),
        None => eprintln!("sweep: {} jobs, seed {}", campaign.len(), seed),
    }
    let runner: Box<dyn Fn(&JobSpec) -> JobMetrics + Sync> = match a.get("obs-dir") {
        Some(dir) => {
            use dramctrl_bench::run_job_observed;
            std::fs::create_dir_all(dir).map_err(|e| ArgError(format!("creating {dir:?}: {e}")))?;
            let dir = PathBuf::from(dir);
            Box::new(move |job| {
                let (metrics, art) = run_job_observed(job, 1_000_000);
                let base = dir.join(format!("job-{:04}", job.index));
                // A failed write panics so the executor records the job as
                // failed instead of silently dropping the artifact.
                let write = |ext: &str, text: &str| {
                    let path = base.with_extension(ext);
                    write_atomic(&path, text)
                        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
                };
                write("trace.json", &art.perfetto_json);
                write("epochs.csv", &art.epochs_csv);
                write("stats.json", &art.stats_json);
                metrics
            })
        }
        None => match &ckpt_dir {
            Some(dir) => {
                let dir = dir.clone();
                Box::new(move |job| {
                    run_job_resumable(job, Some(&job_ckpt(&dir, job)), every, None)
                        .expect("an unpaused job run always completes")
                })
            }
            None => Box::new(run_job),
        },
    };
    let report = match (&mut journal, shard) {
        (Some(j), Some(s)) => run_campaign_shard(&campaign, &cfg, j, s, runner),
        (Some(j), None) => run_campaign_journaled(&campaign, &cfg, j, runner),
        (None, _) => run_campaign(&campaign, &cfg, runner),
    };
    if let Some(j) = journal.as_mut() {
        // With group commit on, the last batch may still be unsynced.
        j.sync()
            .map_err(|e| ArgError(format!("syncing the journal: {e}")))?;
    }
    // A finished sweep no longer needs its per-job snapshots. (Shards
    // only tried to remove their own jobs' snapshots plus already-absent
    // paths, so cross-shard cleanup is a harmless no-op.)
    if let Some(dir) = &ckpt_dir {
        for job in campaign.expand() {
            let _ = std::fs::remove_file(job_ckpt(dir, &job));
        }
    }
    if shard.is_some() {
        eprintln!(
            "shard report covers {} of {} jobs; merge the shard journals \
             with --merge for the full report",
            report.records.len(),
            campaign.len()
        );
    }
    if let Some((path, registry, _)) = &metrics_out {
        write_atomic(path, registry.render_json())
            .map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
        eprintln!("wrote executor metrics to {path}");
    }
    finish_report(&a, &report)
}

/// Writes the report outputs (`--jsonl`, `--md`, the printed table and
/// summary) and turns failed jobs into a non-zero exit.
fn finish_report(a: &Args, report: &dramctrl_campaign::CampaignReport) -> Result<(), ArgError> {
    if let Some(path) = a.get("jsonl") {
        write_atomic(path, report.to_jsonl())
            .map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
        eprintln!("wrote {} JSONL records to {path}", report.records.len());
    }
    let table = report.table(&[
        "bus_util",
        "bandwidth_gbps",
        "avg_read_lat_ns",
        "row_hit_rate",
    ]);
    if let Some(path) = a.get("md") {
        write_atomic(path, table.render())
            .map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
        eprintln!("wrote result table to {path}");
    }
    table.print();
    eprintln!("{}", report.summary());
    if report.failed() > 0 {
        return Err(ArgError(format!("{} job(s) failed", report.failed())));
    }
    Ok(())
}

/// Prints the version tuple a service handshake exchanges: crate,
/// protocol, snapshot format, journal format. Scripts parse this to
/// check that a client and a daemon binary will interoperate.
fn print_version() {
    println!(
        "dramctrl {} (proto {}, snap {}, journal {})",
        env!("CARGO_PKG_VERSION"),
        dramctrl_serve::PROTO_VERSION,
        dramctrl_kernel::snap::SNAP_VERSION,
        dramctrl_campaign::JOURNAL_VERSION,
    );
}

const SERVE_OPTS: &[&str] = &[
    "listen",
    "store",
    "max-jobs",
    "quantum",
    "http",
    "log-level",
    "client-timeout",
    "subscriber-buffer",
    "retain",
];

fn serve(argv: Vec<String>) -> Result<(), ArgError> {
    use dramctrl_serve::{serve_http, Listener, ServeConfig, Server};
    let a = Args::parse(argv, &[])?;
    a.ensure_known(SERVE_OPTS)?;
    if let Some(level) = a.get("log-level") {
        dramctrl_obs::log::set_level(dramctrl_obs::log::parse_level(level).map_err(ArgError)?);
    }
    let listen = a
        .get("listen")
        .ok_or_else(|| ArgError("serve needs --listen ADDR (a path or host:port)".into()))?;
    let store = a
        .get("store")
        .ok_or_else(|| ArgError("serve needs --store DIR (the durable job store)".into()))?;
    let mut cfg = ServeConfig::new(store);
    cfg.max_jobs = a.parse_or("max-jobs", cfg.max_jobs)?;
    cfg.quantum = a.parse_or("quantum", cfg.quantum)?;
    if cfg.quantum == 0 {
        return Err(ArgError("--quantum must be at least 1".into()));
    }
    if let Some(t) = a.get("client-timeout") {
        // `parse_duration` yields picoseconds; the deadline is wall
        // clock, so convert. `0` disables the deadline entirely.
        let ps = parse_duration(t)?;
        if ps > 0 && ps < 1_000_000_000 {
            return Err(ArgError("--client-timeout below 1ms is not usable".into()));
        }
        cfg.client_timeout = (ps > 0).then(|| std::time::Duration::from_nanos(ps / 1_000));
    }
    cfg.subscriber_buffer = a.parse_or("subscriber-buffer", cfg.subscriber_buffer)?;
    if cfg.subscriber_buffer == 0 {
        return Err(ArgError("--subscriber-buffer must be at least 1".into()));
    }
    cfg.retain = a
        .get("retain")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| ArgError(format!("--retain: cannot parse {v:?}")))
        })
        .transpose()?;
    let (quantum, max_jobs) = (cfg.quantum, cfg.max_jobs);
    let server =
        Server::open(cfg).map_err(|e| ArgError(format!("opening store {store:?}: {e}")))?;
    server.start_scheduler();
    let listener =
        Listener::bind(listen).map_err(|e| ArgError(format!("binding {listen:?}: {e}")))?;
    // Read-only observability endpoints on a second listener, served from
    // a background thread so a slow scrape never blocks job clients.
    if let Some(http) = a.get("http") {
        let http_listener =
            Listener::bind(http).map_err(|e| ArgError(format!("binding {http:?}: {e}")))?;
        dramctrl_obs::log_info!(
            "serve", "http listening";
            "addr" => http_listener.local_addr()
        );
        let http_server = server.clone();
        std::thread::Builder::new()
            .name("dramctrl-http".into())
            .spawn(move || {
                if let Err(e) = serve_http(&http_server, &http_listener) {
                    dramctrl_obs::log_error!("serve", "http accept loop failed"; "error" => e);
                }
            })
            .expect("spawning the http thread");
    }
    // The resolved address matters when --listen used port 0.
    dramctrl_obs::log_info!(
        "serve", "listening";
        "addr" => listener.local_addr(),
        "store" => store,
        "quantum" => quantum,
        "max_jobs" => max_jobs
    );
    server
        .serve(&listener)
        .map_err(|e| ArgError(format!("accept loop failed: {e}")))
}

/// Axis flags shared with sweep, plus the service-client flags.
const SUBMIT_OPTS: &[&str] = &[
    "devices", "models", "policies", "scheds", "mappings", "channels", "gens", "reads", "requests",
    "range", "block", "stride", "banks", "ras", "seed", "to", "tenant", "epochs",
];

fn submit(argv: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(argv, &[])?;
    a.ensure_known(SUBMIT_OPTS)?;
    let to = a
        .get("to")
        .ok_or_else(|| ArgError("submit needs --to ADDR (a running `dramctrl serve`)".into()))?;
    let campaign = campaign_from_args(&a)?;
    let epochs = match a.get("epochs") {
        Some(d) => {
            let ticks = parse_duration(d)?;
            if ticks == 0 {
                return Err(ArgError("--epochs interval must be non-zero".into()));
            }
            ticks
        }
        None => 0,
    };
    let tenant = a.get("tenant").unwrap_or("cli");
    let mut client = connect(to)?;
    let (id, total) = client
        .submit(tenant, epochs, &campaign)
        .map_err(|e| ArgError(e.to_string()))?;
    println!("accepted {id} ({total} units)");
    dramctrl_obs::log_info!(
        "submit", "accepted";
        "job" => id, "units" => total, "watch" => format!("dramctrl watch {id} --to {to}")
    );
    Ok(())
}

/// Connects to a service, refusing version-mismatched daemons.
fn connect(addr: &str) -> Result<dramctrl_serve::Client, ArgError> {
    dramctrl_serve::Client::connect(addr)
        .map_err(|e| ArgError(format!("connecting to {addr:?}: {e}")))
}

const WATCH_OPTS: &[&str] = &["to", "jsonl", "obs-dir", "reconnect"];

fn watch(argv: Vec<String>) -> Result<(), ArgError> {
    use dramctrl_serve::wire::Value;
    let a = Args::parse(argv, &["reconnect"])?;
    a.ensure_known(WATCH_OPTS)?;
    let [id] = a.positional() else {
        return Err(ArgError("watch needs exactly one job id".into()));
    };
    let to = a
        .get("to")
        .ok_or_else(|| ArgError("watch needs --to ADDR (a running `dramctrl serve`)".into()))?;
    let obs_dir = a.get("obs-dir").map(PathBuf::from);
    if let Some(dir) = &obs_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| ArgError(format!("creating {}: {e}", dir.display())))?;
    }

    let mut records: std::collections::BTreeMap<usize, String> = Default::default();
    let mut on_event = |v: &Value, line: &str| {
        let index = || v.get("index").and_then(Value::as_u64).unwrap_or(0) as usize;
        match v.get("event").and_then(Value::as_str) {
            Some("record") => {
                if let Some(data) = dramctrl_serve::record_data(line) {
                    records.insert(index(), data.to_owned());
                }
            }
            Some("progress") => {
                let done = v.get("done").and_then(Value::as_u64).unwrap_or(0);
                let total = v.get("total").and_then(Value::as_u64).unwrap_or(0);
                eprint!("\r[{id}] {done}/{total} units committed  ");
            }
            Some(event @ ("stats" | "epochs")) => {
                if let (Some(dir), Some(text)) = (&obs_dir, v.get("text").and_then(Value::as_str)) {
                    let ext = if event == "stats" {
                        "stats.json"
                    } else {
                        "epochs.jsonl"
                    };
                    let path = dir.join(format!("unit-{:06}.{ext}", index()));
                    write_atomic(&path, text)
                        .unwrap_or_else(|e| panic!("writing artifact {}: {e}", path.display()));
                }
            }
            _ => {}
        }
    };
    let summary = if a.switch("reconnect") {
        // Rides through daemon restarts: retryable transport errors
        // reconnect with backoff, and the replayed history is deduped by
        // unit index, so the collected records stay gap- and dup-free.
        dramctrl_serve::Client::watch_with_reconnect(to, id, &mut on_event)
    } else {
        connect(to)?.watch(id, &mut on_event)
    }
    .map_err(|e| ArgError(e.to_string()))?;
    eprintln!();

    if let Some(path) = a.get("jsonl") {
        // Records keyed by index render in campaign order — the same
        // bytes `sweep --jsonl` writes for this campaign.
        let jsonl: String = records.into_values().map(|l| l + "\n").collect();
        write_atomic(path, jsonl).map_err(|e| ArgError(format!("writing {path:?}: {e}")))?;
        dramctrl_obs::log_info!("watch", "wrote JSONL report"; "path" => path);
    }
    println!("{id}: {} ok, {} failed", summary.ok, summary.failed);
    if summary.failed > 0 {
        return Err(ArgError(format!("{} unit(s) failed", summary.failed)));
    }
    Ok(())
}

/// Axis flags shared with sweep, plus the fleet-coordinator flags.
const DISPATCH_OPTS: &[&str] = &[
    "devices",
    "models",
    "policies",
    "scheds",
    "mappings",
    "channels",
    "gens",
    "reads",
    "requests",
    "range",
    "block",
    "stride",
    "banks",
    "ras",
    "seed",
    "peer",
    "peers-file",
    "workdir",
    "tenant",
    "timeout",
    "rounds",
    "no-hedge",
    "json",
    "log-level",
    "jsonl",
    "md",
    "csv",
];

fn dispatch(argv: Vec<String>) -> Result<(), ArgError> {
    use dramctrl_serve::dispatch::DispatchConfig;
    let a = Args::parse_with_repeats(argv, &["csv", "json", "no-hedge"], &["peer"])?;
    a.ensure_known(DISPATCH_OPTS)?;
    if a.switch("json") {
        dramctrl_obs::log::set_format(dramctrl_obs::log::Format::Json);
    }
    if let Some(level) = a.get("log-level") {
        dramctrl_obs::log::set_level(dramctrl_obs::log::parse_level(level).map_err(ArgError)?);
    }
    let mut peers: Vec<String> = a.get_all("peer").to_vec();
    if let Some(file) = a.get("peers-file") {
        let text = std::fs::read_to_string(file)
            .map_err(|e| ArgError(format!("reading {file:?}: {e}")))?;
        peers.extend(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned),
        );
    }
    if peers.is_empty() {
        return Err(ArgError(
            "dispatch needs at least one --peer ADDR (or --peers-file)".into(),
        ));
    }
    let campaign = campaign_from_args(&a)?;
    let workdir = a.get("workdir").map_or_else(
        || {
            std::env::temp_dir().join(format!(
                "dramctrl-dispatch-{}-{}",
                std::process::id(),
                campaign.seed
            ))
        },
        PathBuf::from,
    );
    let mut cfg = DispatchConfig::new(&workdir);
    if let Some(tenant) = a.get("tenant") {
        cfg.tenant = tenant.to_owned();
    }
    if let Some(t) = a.get("timeout") {
        let ps = parse_duration(t)?;
        if ps > 0 && ps < 1_000_000_000 {
            return Err(ArgError("--timeout below 1ms is not usable".into()));
        }
        cfg.io_timeout = (ps > 0).then(|| std::time::Duration::from_nanos(ps / 1_000));
    }
    cfg.hedge = !a.switch("no-hedge");
    cfg.max_rounds = a.parse_or("rounds", cfg.max_rounds)?;
    if cfg.max_rounds == 0 {
        return Err(ArgError("--rounds must be at least 1".into()));
    }
    let (report, stats) =
        dramctrl_serve::dispatch(&campaign, &peers, &cfg).map_err(|e| ArgError(e.to_string()))?;
    dramctrl_obs::log_info!(
        "dispatch", "campaign complete";
        "jobs" => report.records.len(), "shards" => stats.shards,
        "rounds" => stats.rounds, "redispatches" => stats.redispatches,
        "hedges" => stats.hedges, "peers_lost" => stats.peers_lost
    );
    finish_report(&a, &report)
}

fn status(argv: Vec<String>) -> Result<(), ArgError> {
    use dramctrl_serve::wire::Value;
    let a = Args::parse_with_repeats(argv, &["json"], &["peer"])?;
    a.ensure_known(&["to", "json", "peer"])?;
    if !a.get_all("peer").is_empty() {
        if a.get("to").is_some() {
            return Err(ArgError(
                "status takes either --to ADDR or --peer ADDR..., not both".into(),
            ));
        }
        return fleet_status(&a);
    }
    let to = a
        .get("to")
        .ok_or_else(|| ArgError("status needs --to ADDR (or --peer ADDR...)".into()))?;
    let mut client = connect(to)?;
    let table = client.status().map_err(|e| ArgError(e.to_string()))?;
    if a.switch("json") {
        // The raw status event: one JSON line with the full per-job and
        // per-tenant detail, for scripts.
        println!("{}", table.encode());
        return Ok(());
    }
    let jobs = table.get("jobs").and_then(Value::as_arr).unwrap_or(&[]);
    println!(
        "{:<10} {:<12} {:>6} {:>7} {:>6}  state",
        "job", "tenant", "done", "failed", "total"
    );
    for j in jobs {
        let s = |k: &str| j.get(k).and_then(Value::as_str).unwrap_or("?").to_owned();
        let n = |k: &str| j.get(k).and_then(Value::as_u64).unwrap_or(0);
        println!(
            "{:<10} {:<12} {:>6} {:>7} {:>6}  {}",
            s("id"),
            s("tenant"),
            n("done"),
            n("failed"),
            n("total"),
            s("state")
        );
    }
    let tenants = table.get("tenants").and_then(Value::as_arr).unwrap_or(&[]);
    if !tenants.is_empty() {
        println!();
        println!(
            "{:<12} {:>6} {:>6} {:>7} {:>7} {:>8}  running",
            "tenant", "queued", "jobs", "served", "failed", "rejected"
        );
        for t in tenants {
            let s = |k: &str| t.get(k).and_then(Value::as_str).unwrap_or("?").to_owned();
            let n = |k: &str| t.get(k).and_then(Value::as_u64).unwrap_or(0);
            let running = t
                .get("running")
                .and_then(|r| {
                    let job = r.get("job").and_then(Value::as_str)?;
                    let unit = r.get("unit").and_then(Value::as_u64)?;
                    Some(format!("{job}#{unit}"))
                })
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<12} {:>6} {:>6} {:>7} {:>7} {:>8}  {}",
                s("tenant"),
                n("queued"),
                n("active_jobs"),
                n("served"),
                n("failed"),
                n("rejected"),
                running
            );
        }
    }
    dramctrl_obs::log_info!("status", "queried"; "to" => to, "jobs" => jobs.len());
    Ok(())
}

/// `status --peer A --peer B ...`: one row per peer with a reachability
/// column and job tallies, plus a fleet summary line. Unreachable peers
/// are reported, not fatal — unless *no* peer answers.
fn fleet_status(a: &Args) -> Result<(), ArgError> {
    use dramctrl_serve::wire::Value;
    let peers = a.get_all("peer");
    let json = a.switch("json");
    if !json {
        println!(
            "{:<32} {:<9} {:>5} {:>6} {:>7}",
            "peer", "reachable", "jobs", "done", "failed"
        );
    }
    let (mut reachable, mut jobs_total, mut done_total, mut failed_total) = (0usize, 0, 0, 0);
    for peer in peers {
        let reply = dramctrl_serve::Client::connect(peer).and_then(|mut c| c.status());
        match reply {
            Ok(table) => {
                reachable += 1;
                let jobs = table.get("jobs").and_then(Value::as_arr).unwrap_or(&[]);
                let sum = |k: &str| {
                    jobs.iter()
                        .map(|j| j.get(k).and_then(Value::as_u64).unwrap_or(0))
                        .sum::<u64>()
                };
                let (done, failed) = (sum("done"), sum("failed"));
                jobs_total += jobs.len();
                done_total += done;
                failed_total += failed;
                if json {
                    println!(
                        "{{\"peer\":{},\"reachable\":true,\"status\":{}}}",
                        Value::Str(peer.clone()).encode(),
                        table.encode()
                    );
                } else {
                    println!(
                        "{:<32} {:<9} {:>5} {:>6} {:>7}",
                        peer,
                        "yes",
                        jobs.len(),
                        done,
                        failed
                    );
                }
            }
            Err(e) => {
                if json {
                    println!(
                        "{{\"peer\":{},\"reachable\":false,\"error\":{}}}",
                        Value::Str(peer.clone()).encode(),
                        Value::Str(e.to_string()).encode()
                    );
                } else {
                    println!("{:<32} {:<9} {e}", peer, "no");
                }
            }
        }
    }
    dramctrl_obs::log_info!(
        "status", "fleet queried";
        "peers" => peers.len(), "reachable" => reachable,
        "jobs" => jobs_total, "done" => done_total, "failed" => failed_total
    );
    if !json {
        println!(
            "fleet: {reachable}/{} peers reachable, {jobs_total} jobs \
             ({done_total} units done, {failed_total} failed)",
            peers.len()
        );
    }
    if reachable == 0 {
        return Err(ArgError("no reachable peers".into()));
    }
    Ok(())
}

fn record(argv: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(argv, &[])?;
    a.ensure_known(RUN_OPTS)?;
    let out_path = a
        .get("o")
        .ok_or_else(|| ArgError("record needs -o/--o FILE".into()))?
        .to_owned();
    let WorkloadSpec { mut gen, .. } = build_workload(&a)?;
    let mut entries = Vec::new();
    while let Some((tick, req)) = gen.next_request() {
        entries.push(TraceEntry {
            tick,
            cmd: req.cmd,
            addr: req.addr,
            size: req.size,
        });
    }
    write_atomic(&out_path, TraceGen::to_text(&entries))
        .map_err(|e| ArgError(format!("writing {out_path:?}: {e}")))?;
    println!("wrote {} requests to {}", entries.len(), out_path);
    Ok(())
}

fn replay(argv: Vec<String>) -> Result<(), ArgError> {
    let a = Args::parse(argv, &["energy"])?;
    a.ensure_known(RUN_OPTS)?;
    let [path] = a.positional() else {
        return Err(ArgError("replay needs exactly one trace file".into()));
    };
    // Validate the flag set before touching the filesystem so a
    // contradictory invocation is diagnosed as such even when the trace
    // path is also bad.
    let ras = parse_ras_config(&a)?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path:?}: {e}")))?;
    let mut trace: TraceGen = text.parse().map_err(|e| ArgError(format!("{e}")))?;
    let spec = parse_device(a.get("device").unwrap_or("ddr3-1600-x64"))?;
    let obs = ObsOpts::parse(&a)?;
    let mut cfg = CtrlConfig::new(spec.clone());
    cfg.page_policy = parse_policy(a.get("policy").unwrap_or("open"))?;
    cfg.scheduling = parse_sched(a.get("sched").unwrap_or("frfcfs"))?;
    cfg.mapping = parse_mapping(a.get("mapping").unwrap_or("rorabacoch"))?;
    cfg.ras = ras;
    let ck = RunCkpt::parse(&a)?;
    // The trace *contents* (not the file name) are part of the replay
    // fingerprint: restoring against an edited trace is refused.
    let fp = fingerprint(
        format!(
            "replay trace={:#018x} device={} policy={:?} sched={:?} mapping={:?} ras={:?}",
            fingerprint(text.as_bytes()),
            spec.name,
            cfg.page_policy,
            cfg.scheduling,
            cfg.mapping,
            cfg.ras,
        )
        .as_bytes(),
    );
    let mut ctrl = DramCtrl::with_probe(cfg, obs.probe()).map_err(|e| ArgError(e.to_string()))?;
    let Some(summary) = drive_run(
        &mut trace,
        &mut ctrl,
        fp,
        &ck,
        &Tester::new(1_000_000, 10_000),
    )?
    else {
        return Ok(());
    };
    println!("== replay of {} on {} ==", path, spec.name);
    print_summary(&summary, &spec);
    print_ras(ctrl.fault_model());
    obs.write_stats(&Controller::report(&ctrl, "ctrl", summary.duration))?;
    obs.write_probe(ctrl.into_probe(), summary.duration)?;
    Ok(())
}
