//! QoS scheduling tests (paper Section II-C: "The memory controller
//! schedules requests based on the Quality-of-Service requirements of the
//! requesting CPUs and I/O devices").
//!
//! Priorities are per source port; within the highest class present, the
//! normal FR-FCFS/FCFS rules apply.

use dramctrl::{CtrlConfig, DramCtrl, SchedPolicy};
use dramctrl_mem::{presets, AddrMapping, DramAddr, MemRequest, MemResponse, ReqId};

fn ctrl(qos: Vec<u8>, sched: SchedPolicy) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0;
    cfg.qos_priorities = qos;
    cfg.scheduling = sched;
    DramCtrl::new(cfg).unwrap()
}

fn addr(bank: u32, row: u64, col: u64) -> u64 {
    AddrMapping::RoRaBaCoCh.encode(
        &DramAddr {
            rank: 0,
            bank,
            row,
            col,
        },
        0,
        &presets::ddr3_1333_x64().org,
        1,
    )
}

fn drain(c: &mut DramCtrl) -> Vec<MemResponse> {
    let mut out = Vec::new();
    c.drain(&mut out);
    out
}

/// Background reads from source 0, one urgent read from source 1.
fn flood_plus_urgent(c: &mut DramCtrl) {
    for i in 0..16u64 {
        // Conflict-heavy background: a different row of bank 0 each time.
        let req = MemRequest::read(ReqId(i), addr(0, i, 0), 64).with_source(0);
        c.try_send(req, 0).unwrap();
    }
    let urgent = MemRequest::read(ReqId(99), addr(1, 5, 0), 64).with_source(1);
    c.try_send(urgent, 0).unwrap();
}

#[test]
fn high_priority_bypasses_the_flood() {
    let mut with_qos = ctrl(vec![0, 7], SchedPolicy::FrFcfs);
    flood_plus_urgent(&mut with_qos);
    let out = drain(&mut with_qos);
    let urgent = out.iter().find(|r| r.id == ReqId(99)).unwrap();
    // Served ahead of all 16 background conflicts — wait, the first
    // background access was already chosen before the urgent request...
    // no: all arrive at tick 0; the urgent one wins the first slot.
    assert_eq!(urgent.ready_at, 33_000, "urgent read served first");

    let mut no_qos = ctrl(vec![], SchedPolicy::FrFcfs);
    flood_plus_urgent(&mut no_qos);
    let out = drain(&mut no_qos);
    let urgent = out.iter().find(|r| r.id == ReqId(99)).unwrap();
    // Without QoS, FR-FCFS treats it like any other request; bank 1 is
    // free so it goes early, but behind at least the first bank-0 access
    // on the bus. With QoS it must be strictly first.
    assert!(urgent.ready_at >= 33_000);
}

#[test]
fn equal_priorities_behave_like_no_qos() {
    let run = |qos: Vec<u8>| {
        let mut c = ctrl(qos, SchedPolicy::FrFcfs);
        flood_plus_urgent(&mut c);
        drain(&mut c)
            .iter()
            .map(|r| (r.id, r.ready_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(vec![]), run(vec![3, 3]));
}

#[test]
fn row_hits_still_win_within_a_class() {
    let mut c = ctrl(vec![0, 7], SchedPolicy::FrFcfs);
    // Two high-priority reads: a conflict then a row hit; the hit (sent
    // second) is served first within the class.
    c.try_send(
        MemRequest::read(ReqId(0), addr(0, 1, 0), 64).with_source(1),
        0,
    )
    .unwrap();
    c.try_send(
        MemRequest::read(ReqId(1), addr(0, 2, 0), 64).with_source(1),
        0,
    )
    .unwrap();
    c.try_send(
        MemRequest::read(ReqId(2), addr(0, 1, 1), 64).with_source(1),
        0,
    )
    .unwrap();
    let out = drain(&mut c);
    let order: Vec<_> = out.iter().map(|r| r.id.0).collect();
    assert_eq!(order, vec![0, 2, 1]);
}

#[test]
fn fcfs_respects_priority_classes() {
    let mut c = ctrl(vec![0, 7], SchedPolicy::Fcfs);
    flood_plus_urgent(&mut c);
    let out = drain(&mut c);
    assert_eq!(out[0].id, ReqId(99), "urgent first even under FCFS");
}

#[test]
fn unmapped_sources_default_to_lowest() {
    let mut c = ctrl(vec![0, 7], SchedPolicy::FrFcfs);
    // Source 5 is beyond the priority table: priority 0.
    c.try_send(
        MemRequest::read(ReqId(0), addr(0, 1, 0), 64).with_source(5),
        0,
    )
    .unwrap();
    c.try_send(
        MemRequest::read(ReqId(1), addr(1, 1, 0), 64).with_source(1),
        0,
    )
    .unwrap();
    let out = drain(&mut c);
    assert_eq!(out[0].id, ReqId(1));
}

#[test]
fn writes_also_prioritised_within_drain() {
    // Two writes, low priority to bank 0 row A first, then high priority
    // to bank 1; during the drain the high-priority write issues first.
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0;
    cfg.qos_priorities = vec![0, 7];
    cfg.write_buffer_size = 4;
    cfg.write_high_thresh = 0.5; // drain at 2 queued writes
    cfg.write_low_thresh = 0.25;
    let mut c = DramCtrl::new(cfg).unwrap();
    c.try_send(
        MemRequest::write(ReqId(0), addr(0, 1, 0), 64).with_source(0),
        0,
    )
    .unwrap();
    c.try_send(
        MemRequest::write(ReqId(1), addr(1, 1, 0), 64).with_source(1),
        0,
    )
    .unwrap();
    drain(&mut c);
    // Observable through bank state: the LAST write leaves its row open;
    // high priority went first, so bank 0's row is the one left open by
    // the final (low-priority) write.
    assert_eq!(c.open_row(0, 0), Some(1));
    assert_eq!(c.open_row(0, 1), Some(1));
    // And both were serviced.
    assert_eq!(c.stats().wr_bursts, 2);
}
