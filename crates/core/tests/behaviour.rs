//! Behavioural and property-based tests for the event-based controller:
//! flow control, conservation invariants and statistics plumbing.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy, SchedPolicy, SendError};
use dramctrl_kernel::rng::Rng;
use dramctrl_mem::{presets, AddrMapping, MemCmd, MemRequest, ReqId};

fn small_ctrl() -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0;
    cfg.read_buffer_size = 2;
    cfg.write_buffer_size = 2;
    DramCtrl::new(cfg).unwrap()
}

#[test]
fn oversized_request_is_too_large() {
    let mut c = small_ctrl();
    let err = c
        .try_send(MemRequest::read(ReqId(0), 0, 256), 0)
        .unwrap_err();
    assert_eq!(
        err,
        SendError::TooLarge {
            bursts: 4,
            capacity: 2
        }
    );
}

#[test]
fn read_queue_full_backpressure() {
    let mut c = small_ctrl();
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    c.try_send(MemRequest::read(ReqId(1), 64, 64), 0).unwrap();
    assert!(!c.can_accept(MemCmd::Read, 128, 64));
    let err = c
        .try_send(MemRequest::read(ReqId(2), 128, 64), 0)
        .unwrap_err();
    assert_eq!(err, SendError::ReadQueueFull);
    // Draining frees space again.
    let mut out = Vec::new();
    c.drain(&mut out);
    assert!(c.can_accept(MemCmd::Read, 128, 64));
}

#[test]
fn write_queue_full_backpressure() {
    let mut c = small_ctrl();
    c.try_send(MemRequest::write(ReqId(0), 0, 64), 0).unwrap();
    c.try_send(MemRequest::write(ReqId(1), 64, 64), 0).unwrap();
    assert_eq!(
        c.try_send(MemRequest::write(ReqId(2), 128, 64), 0),
        Err(SendError::WriteQueueFull)
    );
}

#[test]
#[should_panic(expected = "zero-sized request")]
fn zero_size_panics() {
    let mut c = small_ctrl();
    let _ = c.try_send(MemRequest::read(ReqId(0), 0, 0), 0);
}

#[test]
fn invalid_config_is_rejected() {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.write_low_thresh = 0.9;
    cfg.write_high_thresh = 0.5;
    assert!(DramCtrl::new(cfg).is_err());
}

#[test]
fn report_contains_key_metrics() {
    let mut c = small_ctrl();
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    let end = c.drain(&mut out);
    let report = c.report("ctrl", end);
    for key in [
        "rd_bursts",
        "bus_util",
        "page_hit_rate",
        "avg_read_lat_ns",
        "activates",
    ] {
        assert!(report.get(key).is_some(), "missing {key}");
    }
    assert_eq!(report.get("rd_bursts"), Some(1.0));
    assert!(report.get("bus_util").unwrap() > 0.0);
}

#[test]
fn activity_stats_track_bank_state() {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0;
    cfg.page_policy = PagePolicy::Closed;
    let mut c = DramCtrl::new(cfg).unwrap();
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    let act = c.activity(1_000_000);
    assert_eq!(act.activates, 1);
    assert_eq!(act.precharges, 1);
    assert_eq!(act.rd_bursts, 1);
    // Closed-page: the bank is open only from ACT (0 ns) to the
    // auto-precharge (gated by tRAS at 36 ns) out of the 1 us window.
    assert_eq!(act.sim_time - act.time_all_banks_precharged, 36_000);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut c = small_ctrl();
        let mut out = Vec::new();
        let mut t = 0;
        for i in 0..50u64 {
            t += 5_000;
            let req = if i % 3 == 0 {
                MemRequest::write(ReqId(i), i * 64, 64)
            } else {
                MemRequest::read(ReqId(i), (i % 7) * 4096 + i * 64, 64)
            };
            c.advance_to(t, &mut out);
            while c.try_send(req, t).is_err() {
                let next = c.next_event().expect("progress must be possible");
                t = t.max(next);
                c.advance_to(t, &mut out);
            }
        }
        c.drain(&mut out);
        out.iter().map(|r| (r.id, r.ready_at)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// A seeded batch of requests with mixed commands, sizes and localities.
fn requests(rng: &mut Rng, max_len: u64) -> Vec<(bool, u64, u32)> {
    let sizes = [16u32, 64, 128, 256];
    (0..rng.gen_range(1..max_len))
        .map(|_| {
            (
                rng.gen_bool(),
                rng.gen_range(0..1 << 22),
                sizes[rng.gen_range(0..4) as usize],
            )
        })
        .collect()
}

/// Every accepted request produces exactly one response, regardless of
/// command mix, chopping, merging and forwarding; the controller ends
/// idle and conservation holds between bursts and queue traffic.
#[test]
fn one_response_per_request() {
    let mut rng = Rng::seed_from_u64(0xBE4A_0001);
    for _ in 0..64 {
        let reqs = requests(&mut rng, 60);
        let policy_idx = rng.gen_range(0..4) as usize;
        let sched = rng.gen_range(0..2) as usize;
        let mapping_idx = rng.gen_range(0..3) as usize;
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.spec.timing.t_refi = 0;
        cfg.page_policy = [
            PagePolicy::Open,
            PagePolicy::OpenAdaptive,
            PagePolicy::Closed,
            PagePolicy::ClosedAdaptive,
        ][policy_idx];
        cfg.scheduling = [SchedPolicy::Fcfs, SchedPolicy::FrFcfs][sched];
        cfg.mapping = [
            AddrMapping::RoRaBaCoCh,
            AddrMapping::RoRaBaChCo,
            AddrMapping::RoCoRaBaCh,
        ][mapping_idx];
        let mut c = DramCtrl::new(cfg).unwrap();

        let mut out = Vec::new();
        let mut t = 0;
        let mut accepted = 0u64;
        for (i, &(is_read, addr, size)) in reqs.iter().enumerate() {
            let req = if is_read {
                MemRequest::read(ReqId(i as u64), addr, size)
            } else {
                MemRequest::write(ReqId(i as u64), addr, size)
            };
            loop {
                match c.try_send(req, t) {
                    Ok(()) => {
                        accepted += 1;
                        break;
                    }
                    Err(SendError::TooLarge { .. }) => break,
                    Err(_) => {
                        let next = c.next_event().expect("backpressure implies pending work");
                        t = t.max(next);
                        c.advance_to(t, &mut out);
                    }
                }
            }
        }
        c.drain(&mut out);

        assert_eq!(out.len() as u64, accepted);
        assert!(c.is_idle());
        // Responses are delivered in non-decreasing ready order.
        assert!(out.windows(2).all(|w| w[0].ready_at <= w[1].ready_at));
        // All response ids are distinct and were actually sent.
        let mut ids: Vec<_> = out.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, accepted);

        let s = c.stats();
        assert_eq!(s.reads_accepted + s.writes_accepted, accepted);
        // Bus time equals bursts * tBURST.
        let bursts = s.rd_bursts + s.wr_bursts;
        assert_eq!(s.bus_busy, bursts * c.config().spec.timing.t_burst);
        // Row hits never exceed bursts; activates need a matching burst
        // unless the access was a pure reopen (impossible here).
        assert!(s.rd_row_hits + s.wr_row_hits <= bursts);
        assert!(s.activates <= bursts);
    }
}

/// The bank-state timeline never goes negative and the precharged time
/// never exceeds the window.
#[test]
fn activity_bounds() {
    let mut rng = Rng::seed_from_u64(0xBE4A_0002);
    for _ in 0..64 {
        let reqs = requests(&mut rng, 60);
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.spec.timing.t_refi = 0;
        let mut c = DramCtrl::new(cfg).unwrap();
        let mut out = Vec::new();
        let mut t = 0;
        for (i, &(is_read, addr, size)) in reqs.iter().enumerate() {
            let req = if is_read {
                MemRequest::read(ReqId(i as u64), addr, size)
            } else {
                MemRequest::write(ReqId(i as u64), addr, size)
            };
            loop {
                match c.try_send(req, t) {
                    Ok(()) => break,
                    Err(SendError::TooLarge { .. }) => break,
                    Err(_) => {
                        let next = c.next_event().unwrap();
                        t = t.max(next);
                        c.advance_to(t, &mut out);
                    }
                }
            }
        }
        let end = c.drain(&mut out).max(t) + 1_000_000;
        let act = c.activity(end);
        assert!(act.time_all_banks_precharged <= end);
        assert_eq!(act.ranks, 1);
        // With an open-page policy the last row stays open forever, so the
        // fraction may legitimately reach 0.0.
        assert!((0.0..=1.0).contains(&act.precharged_fraction()));
    }
}

/// gem5-style windowed statistics (paper Section II-E): snapshot, run a
/// region of interest, and diff.
#[test]
fn windowed_stats_isolate_a_region() {
    let mut c = small_ctrl();
    let mut out = Vec::new();
    // Warm-up phase: 10 reads.
    for i in 0..10u64 {
        DramCtrl::try_send(&mut c, MemRequest::read(ReqId(i), i * 64, 64), 0).unwrap();
        DramCtrl::drain(&mut c, &mut out);
    }
    let snapshot = dramctrl_mem::Controller::common_stats(&c);
    assert_eq!(snapshot.rd_bursts, 10);

    // Region of interest: 2 writes (the small queue's capacity) and 3
    // reads.
    for i in 0..2u64 {
        DramCtrl::try_send(&mut c, MemRequest::write(ReqId(100 + i), i * 64, 64), 0).unwrap();
    }
    for i in 0..3u64 {
        DramCtrl::try_send(
            &mut c,
            MemRequest::read(ReqId(200 + i), 4096 + i * 64, 64),
            0,
        )
        .unwrap();
        DramCtrl::drain(&mut c, &mut out);
    }
    DramCtrl::drain(&mut c, &mut out);

    let window = dramctrl_mem::Controller::common_stats(&c).since(&snapshot);
    assert_eq!(window.rd_bursts, 3);
    assert_eq!(window.wr_bursts, 2);
    assert_eq!(window.bytes_read, 3 * 64);
    // The window's mean latency only covers the three region reads.
    assert!(window.avg_read_lat() > 0.0);
    assert_eq!(window.bus_busy, 5 * c.config().spec.timing.t_burst);
}

#[test]
fn reset_restores_a_fresh_controller_bit_for_bit() {
    use dramctrl_kernel::snap::{SnapState, SnapWriter};
    let snap = |c: &DramCtrl| {
        let mut w = SnapWriter::new(0);
        c.save_state(&mut w);
        w.into_bytes()
    };
    // Mixed reads/writes spread over rows and banks, drained in batches so
    // time advances and refreshes fire between sends.
    let drive = |c: &mut DramCtrl| {
        let mut out = Vec::new();
        let mut t = 0;
        for batch in 0..3u64 {
            for i in 0..8u64 {
                let n = batch * 8 + i;
                let req = if i % 3 == 0 {
                    MemRequest::write(ReqId(n), n * 8192, 64)
                } else {
                    MemRequest::read(ReqId(n), n * 8192, 64)
                };
                c.try_send(req, t).unwrap();
            }
            t = c.drain(&mut out);
        }
        (t, out.len())
    };
    let cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    let mut fresh = DramCtrl::new(cfg.clone()).unwrap();
    let mut used = DramCtrl::new(cfg).unwrap();
    drive(&mut used);
    used.reset();
    // Every piece of mutable state is back to its constructed value…
    assert_eq!(snap(&used), snap(&fresh));
    // …and the reused controller services a new workload identically.
    let a = drive(&mut used);
    let b = drive(&mut fresh);
    assert_eq!(a, b);
    assert_eq!(snap(&used), snap(&fresh));
    assert_eq!(
        format!("{:?}", used.stats()),
        format!("{:?}", fresh.stats())
    );
}
