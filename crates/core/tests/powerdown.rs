//! Tests for the precharge power-down extension (the paper lists
//! low-power states as future work — Section II-G: "Currently, we do not
//! model the low-power states and associated timing constraints").
//!
//! Semantics: after `powerdown_idle` ticks with empty queues and a quiet
//! bus, every rank precharges its open banks and enters power-down. The
//! first command after wake-up pays `t_xp`; a refresh wakes the rank
//! (paying `t_xp`) and the controller may re-enter power-down afterwards.

use dramctrl::{CtrlConfig, DramCtrl};
use dramctrl_mem::{presets, MemRequest, MemResponse, ReqId};

const IDLE: u64 = 100_000; // 100 ns
const T_XP: u64 = 7_500;

fn ctrl(powerdown: bool) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0;
    cfg.powerdown_idle = if powerdown { IDLE } else { 0 };
    DramCtrl::new(cfg).unwrap()
}

fn run_to(c: &mut DramCtrl, t: u64) -> Vec<MemResponse> {
    let mut out = Vec::new();
    c.advance_to(t, &mut out);
    out
}

#[test]
fn disabled_by_default() {
    let mut c = ctrl(false);
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    run_to(&mut c, 10_000_000);
    assert_eq!(c.stats().powerdowns, 0);
    let act = c.activity(10_000_000);
    assert_eq!(act.time_powered_down, 0);
}

#[test]
fn enters_after_idle_and_wakes_with_txp() {
    let mut c = ctrl(true);
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let out = run_to(&mut c, 5_000_000);
    assert_eq!(out[0].ready_at, 33_000);
    assert_eq!(c.stats().powerdowns, 1, "entered power-down while idle");
    // The check fired at bus-idle (33 us) + 100 ns; the open row was
    // precharged on entry.
    assert_eq!(c.open_row(0, 0), None);

    // A read at 10 us pays tXP on top of the cold-bank latency.
    c.try_send(MemRequest::read(ReqId(1), 0, 64), 10_000_000)
        .unwrap();
    let out = run_to(&mut c, 20_000_000);
    assert_eq!(out[0].ready_at, 10_000_000 + T_XP + 33_000);
}

#[test]
fn accumulates_powerdown_time() {
    let mut c = ctrl(true);
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    run_to(&mut c, 5_000_000);
    // Entry: bus idle at 33 us... the check runs at 33_000 + 100_000 =
    // 133 us(ns scale): entry completes after the precharge (tRP).
    let entry = 133_000 + 13_500;
    let act = c.activity(5_000_000);
    assert_eq!(act.time_powered_down, 5_000_000 - entry);
    // Waking stops the clock.
    c.try_send(MemRequest::read(ReqId(1), 0, 64), 10_000_000)
        .unwrap();
    let act = c.activity(10_000_000);
    assert_eq!(act.time_powered_down, 10_000_000 - entry);
}

#[test]
fn no_powerdown_under_steady_traffic() {
    let mut c = ctrl(true);
    let mut out = Vec::new();
    // A request every 50 ns — never idle for the full 100 ns window.
    for i in 0..200u64 {
        let t = i * 50_000;
        c.advance_to(t, &mut out);
        c.try_send(MemRequest::read(ReqId(i), (i % 16) * 4096, 64), t)
            .unwrap();
    }
    // Stop just after the last request: during the traffic no idle window
    // ever reached 100 ns. (Running further WOULD power down — the tail
    // after the last request is genuinely idle.)
    c.advance_to(10_000_000, &mut out);
    assert_eq!(c.stats().powerdowns, 0);
    assert_eq!(out.len(), 200);
}

#[test]
fn reenters_after_each_idle_period() {
    let mut c = ctrl(true);
    let mut out = Vec::new();
    for burst in 0..3u64 {
        let t = burst * 5_000_000;
        c.advance_to(t, &mut out);
        c.try_send(MemRequest::read(ReqId(burst), 0, 64), t)
            .unwrap();
    }
    c.advance_to(20_000_000, &mut out);
    assert_eq!(c.stats().powerdowns, 3);
    let act = c.activity(20_000_000);
    // Powered down for most of the 20 us.
    assert!(act.time_powered_down > 18_000_000);
    assert!(act.powered_down_fraction() > 0.9);
}

#[test]
fn refresh_wakes_and_reenters() {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.powerdown_idle = IDLE;
    let t_refi = cfg.spec.timing.t_refi;
    let mut c = DramCtrl::new(cfg).unwrap();
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    // Run across 4 refresh intervals.
    c.advance_to(4 * t_refi + 1_000_000, &mut out);
    assert_eq!(c.stats().refreshes, 4);
    // Re-entered power-down after the initial access and after each
    // refresh episode.
    assert!(c.stats().powerdowns >= 4, "got {}", c.stats().powerdowns);
    let act = c.activity(4 * t_refi + 1_000_000);
    // Still powered down nearly the whole time (refreshes are short).
    assert!(act.powered_down_fraction() > 0.95);
}

#[test]
fn powerdown_saves_background_power() {
    use dramctrl_power::micron_power;

    let run = |pd: bool| {
        let mut c = ctrl(pd);
        c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
        let mut out = Vec::new();
        c.advance_to(10_000_000, &mut out);
        let spec = c.config().spec.clone();
        micron_power(&spec, &c.activity(10_000_000)).total_mw()
    };
    let with_pd = run(true);
    let without = run(false);
    assert!(
        with_pd < without * 0.5,
        "power-down should cut idle power: {with_pd:.0} vs {without:.0} mW"
    );
}

#[test]
fn parked_writes_drain_before_powerdown() {
    let mut c = ctrl(true);
    // A single write parks below the low watermark and would normally
    // stay on chip; the power-down path flushes it first.
    c.try_send(MemRequest::write(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    c.advance_to(5_000_000, &mut out);
    assert_eq!(c.stats().wr_bursts, 1, "write reached DRAM");
    assert_eq!(c.write_queue_len(), 0);
    assert_eq!(c.stats().powerdowns, 1);
    let act = c.activity(5_000_000);
    assert!(act.time_powered_down > 4_000_000);
}

#[test]
fn new_traffic_cancels_pd_drain_urgency() {
    let mut c = ctrl(true);
    c.try_send(MemRequest::write(ReqId(0), 0, 64), 0).unwrap();
    // Before the idle threshold elapses, more traffic arrives: the write
    // goes back to being governed by the normal watermarks.
    let mut out = Vec::new();
    c.advance_to(50_000, &mut out);
    c.try_send(MemRequest::read(ReqId(1), 4096, 64), 50_000)
        .unwrap();
    c.advance_to(90_000, &mut out);
    assert_eq!(c.stats().powerdowns, 0);
    // Eventually everything drains and power-down engages once.
    c.advance_to(5_000_000, &mut out);
    assert_eq!(c.stats().powerdowns, 1);
}
