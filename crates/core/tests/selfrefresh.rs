//! Tests for the self-refresh extension: the deeper of the two low-power
//! states. Power-down descends into self-refresh after
//! `selfrefresh_after` more idle time; while self-refreshing the DRAM
//! refreshes itself (external refreshes are suppressed) and exit costs
//! `t_xs` instead of `t_xp`.

use dramctrl::{CtrlConfig, DramCtrl};
use dramctrl_mem::{presets, MemRequest, ReqId};

const PD_IDLE: u64 = 100_000; // 100 ns
const SR_AFTER: u64 = 1_000_000; // 1 us of power-down, then self-refresh
const T_XS: u64 = 170_000;

fn ctrl(refresh: bool) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    if !refresh {
        cfg.spec.timing.t_refi = 0;
    }
    cfg.powerdown_idle = PD_IDLE;
    cfg.selfrefresh_after = SR_AFTER;
    DramCtrl::new(cfg).unwrap()
}

#[test]
fn config_requires_powerdown() {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.selfrefresh_after = SR_AFTER;
    cfg.powerdown_idle = 0;
    assert!(DramCtrl::new(cfg).is_err());
}

#[test]
fn descends_after_powerdown_period() {
    let mut c = ctrl(false);
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    c.advance_to(10_000_000, &mut out);
    assert_eq!(c.stats().powerdowns, 1);
    assert_eq!(c.stats().self_refreshes, 1);
    let act = c.activity(10_000_000);
    // PD phase lasted exactly `selfrefresh_after`; the rest is SR.
    assert_eq!(act.time_powered_down, SR_AFTER);
    assert!(act.time_self_refresh > 8_000_000);
    assert!(act.self_refresh_fraction() > 0.8);
}

#[test]
fn wake_from_self_refresh_costs_txs() {
    let mut c = ctrl(false);
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    c.advance_to(10_000_000, &mut out);
    assert_eq!(c.stats().self_refreshes, 1);
    c.try_send(MemRequest::read(ReqId(1), 0, 64), 20_000_000)
        .unwrap();
    out.clear();
    c.advance_to(30_000_000, &mut out);
    // Cold bank after SR exit: tXS + tRCD + tCL + tBURST.
    assert_eq!(out[0].ready_at, 20_000_000 + T_XS + 33_000);
}

#[test]
fn self_refresh_suppresses_external_refreshes() {
    let mut c = ctrl(true);
    let t_refi = c.config().spec.timing.t_refi;
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    // Ten refresh intervals: the rank descends into SR after ~1.1 us and
    // stays there, so almost no external refreshes are performed.
    c.advance_to(10 * t_refi, &mut out);
    assert_eq!(c.stats().self_refreshes, 1);
    assert!(
        c.stats().refreshes <= 1,
        "external refreshes should be suppressed, got {}",
        c.stats().refreshes
    );
}

#[test]
fn wake_before_descent_costs_only_txp() {
    let mut c = ctrl(false);
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    // Wake during the PD phase (entry ~146.5 ns, descent at ~1.15 us).
    c.advance_to(500_000, &mut out);
    assert_eq!(c.stats().powerdowns, 1);
    assert_eq!(c.stats().self_refreshes, 0);
    c.try_send(MemRequest::read(ReqId(1), 0, 64), 500_000)
        .unwrap();
    out.clear();
    // The stale self-refresh check (armed by the first power-down entry)
    // fires around 1.15 us; the rank re-entered power-down at ~0.79 us,
    // so descent must NOT happen yet.
    c.advance_to(1_500_000, &mut out);
    assert_eq!(out[0].ready_at, 500_000 + 7_500 + 33_000);
    assert_eq!(c.stats().self_refreshes, 0, "stale check must not descend");
    assert_eq!(c.stats().powerdowns, 2);
    // The fresh check (armed by the second entry) descends on schedule.
    c.advance_to(2_000_000, &mut out);
    assert_eq!(c.stats().self_refreshes, 1);
}

#[test]
fn self_refresh_draws_less_power_than_powerdown() {
    use dramctrl_power::micron_power;
    let spec = presets::ddr3_1333_x64();
    let base = dramctrl_mem::ActivityStats {
        sim_time: 1_000_000,
        time_all_banks_precharged: 1_000_000,
        ranks: 1,
        ..Default::default()
    };
    let pd = micron_power(
        &spec,
        &dramctrl_mem::ActivityStats {
            time_powered_down: 1_000_000,
            ..base
        },
    );
    let sr = micron_power(
        &spec,
        &dramctrl_mem::ActivityStats {
            time_self_refresh: 1_000_000,
            ..base
        },
    );
    let awake = micron_power(&spec, &base);
    assert!(sr.total_mw() < pd.total_mw());
    assert!(pd.total_mw() < awake.total_mw());
}

#[test]
fn long_idle_ends_fully_self_refreshed() {
    let mut c = ctrl(true);
    c.try_send(MemRequest::write(ReqId(0), 0, 64), 0).unwrap();
    let mut out = Vec::new();
    let horizon = 100_000_000; // 100 us
    c.advance_to(horizon, &mut out);
    let act = c.activity(horizon);
    let covered = act.time_powered_down + act.time_self_refresh;
    assert!(
        covered > horizon * 97 / 100,
        "low-power states should cover the idle run: {covered} of {horizon}"
    );
    assert!(act.self_refresh_fraction() > 0.9);
}
