//! Multi-rank behaviour: ranks provide parallelism beyond banks (paper
//! Section II: "a number of DRAM devices can be connected to the same
//! busses in ranks, offering additional parallelism"), with per-rank
//! activation windows and refresh.

use dramctrl::{CtrlConfig, DramCtrl};
use dramctrl_mem::{presets, AddrMapping, DramAddr, MemRequest, MemResponse, ReqId};

fn two_rank_ctrl(refresh: bool) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.org.ranks = 2;
    if !refresh {
        cfg.spec.timing.t_refi = 0;
    }
    DramCtrl::new(cfg).unwrap()
}

fn addr(rank: u32, bank: u32, row: u64, col: u64) -> u64 {
    let mut org = presets::ddr3_1333_x64().org;
    org.ranks = 2;
    AddrMapping::RoRaBaCoCh.encode(
        &DramAddr {
            rank,
            bank,
            row,
            col,
        },
        0,
        &org,
        1,
    )
}

fn drain(c: &mut DramCtrl) -> Vec<MemResponse> {
    let mut out = Vec::new();
    c.drain(&mut out);
    out
}

#[test]
fn ranks_overlap_like_banks() {
    let mut c = two_rank_ctrl(false);
    // Same bank index, different ranks: ACTs are independent.
    c.try_send(MemRequest::read(ReqId(0), addr(0, 0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(1, 0, 9, 0), 64), 0)
        .unwrap();
    let out = drain(&mut c);
    assert_eq!(out[0].ready_at, 33_000);
    // The second rank's access is purely bus-limited.
    assert_eq!(out[1].ready_at, 39_000);
    assert_eq!(c.stats().activates, 2);
}

#[test]
fn trrd_does_not_couple_ranks() {
    // Within one rank, back-to-back ACTs are tRRD (6 ns) apart; across
    // ranks they are not coupled at all, so four interleaved activates
    // across two ranks finish as fast as two per rank allow.
    let mut c = two_rank_ctrl(false);
    for (i, (rank, bank)) in [(0, 0), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
        c.try_send(
            MemRequest::read(ReqId(i as u64), addr(*rank, *bank, 1, 0), 64),
            0,
        )
        .unwrap();
    }
    let out = drain(&mut c);
    // All four stream on the bus back-to-back: 33, 39, 45, 51 ns.
    let times: Vec<_> = out.iter().map(|r| r.ready_at).collect();
    assert_eq!(times, vec![33_000, 39_000, 45_000, 51_000]);
}

#[test]
fn activation_window_is_per_rank() {
    // Five activates to ONE rank hit the tXAW window (30 ns, 4 acts);
    // five activates spread over two ranks do not.
    let run = |ranks: &[u32]| {
        let mut c = two_rank_ctrl(false);
        for (i, &r) in ranks.iter().enumerate() {
            let bank = (i as u32) % 8;
            c.try_send(
                MemRequest::read(ReqId(i as u64), addr(r, bank, 1, 0), 64),
                0,
            )
            .unwrap();
        }
        drain(&mut c).last().unwrap().ready_at
    };
    let one_rank = run(&[0, 0, 0, 0, 0]);
    let two_ranks = run(&[0, 1, 0, 1, 0]);
    assert_eq!(one_rank, 63_000, "tXAW gates the 5th ACT in one rank");
    assert_eq!(two_ranks, 57_000, "no window pressure across ranks");
}

#[test]
fn each_rank_refreshes() {
    let mut c = two_rank_ctrl(true);
    let t_refi = c.config().spec.timing.t_refi;
    let mut out = Vec::new();
    c.advance_to(3 * t_refi, &mut out);
    assert_eq!(c.stats().refreshes, 6, "both ranks refresh every tREFI");
}

#[test]
fn refresh_blocks_only_its_rank() {
    let mut c = two_rank_ctrl(true);
    let t_refi = c.config().spec.timing.t_refi;
    // Two reads arriving exactly at the refresh deadline, one per rank.
    // Both ranks refresh at the same tick (no staggering), so both pay
    // tRFC; but bank state stays per-rank (no cross-rank precharges).
    c.try_send(MemRequest::read(ReqId(0), addr(0, 0, 5, 0), 64), t_refi)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(1, 0, 5, 0), 64), t_refi)
        .unwrap();
    let mut out = Vec::new();
    c.advance_to(t_refi + 1_000_000, &mut out);
    let t_rfc = c.config().spec.timing.t_rfc;
    assert_eq!(out[0].ready_at, t_refi + t_rfc + 33_000);
    assert_eq!(out[1].ready_at, t_refi + t_rfc + 39_000);
    assert_eq!(c.stats().refreshes, 2);
}

#[test]
fn capacity_doubles_with_ranks() {
    let mut org = presets::ddr3_1333_x64().org;
    let single = org.capacity_bytes();
    org.ranks = 2;
    assert_eq!(org.capacity_bytes(), 2 * single);
    // And the decoder covers the whole space injectively at the rank bit.
    let a0 = AddrMapping::RoRaBaCoCh.decode(addr(0, 3, 7, 2), &org, 1);
    let a1 = AddrMapping::RoRaBaCoCh.decode(addr(1, 3, 7, 2), &org, 1);
    assert_eq!((a0.bank, a0.row, a0.col), (a1.bank, a1.row, a1.col));
    assert_ne!(a0.rank, a1.rank);
}
