//! Cycle-exact timing tests for the event-based controller.
//!
//! Every expected latency below is derived by hand from the DDR3-1333
//! timing parameters (`tRCD = tCL = tRP = 13.5 ns`, `tRAS = 36 ns`,
//! `tBURST = 6 ns`, `tRRD = 6 ns`, `tXAW = 30 ns` with a 4-activate limit,
//! `tWTR = 7.5 ns`, `tRTW = 3 ns`, `tRTP = 7.5 ns`, `tWR = 15 ns`,
//! `tRFC = 160 ns`, `tREFI = 7.8 us`). Ticks are picoseconds.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy, SchedPolicy};
use dramctrl_mem::{presets, AddrMapping, DramAddr, MemRequest, MemResponse, ReqId};

/// A DDR3-1333 controller with refresh disabled (deterministic timing) and
/// the given tweaks applied.
fn ctrl_with(f: impl FnOnce(&mut CtrlConfig)) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0; // no refresh unless a test asks for it
    f(&mut cfg);
    DramCtrl::new(cfg).expect("valid test config")
}

fn ctrl() -> DramCtrl {
    ctrl_with(|_| {})
}

/// Byte address of (bank, row, col) under the default mapping.
fn addr(bank: u32, row: u64, col: u64) -> u64 {
    let org = presets::ddr3_1333_x64().org;
    AddrMapping::RoRaBaCoCh.encode(
        &DramAddr {
            rank: 0,
            bank,
            row,
            col,
        },
        0,
        &org,
        1,
    )
}

fn run(ctrl: &mut DramCtrl) -> Vec<MemResponse> {
    let mut out = Vec::new();
    ctrl.drain(&mut out);
    out
}

#[test]
fn cold_read_is_rcd_cl_burst() {
    let mut c = ctrl();
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    let out = run(&mut c);
    // tRCD + tCL + tBURST = 13.5 + 13.5 + 6 ns.
    assert_eq!(out[0].ready_at, 33_000);
    assert_eq!(c.stats().activates, 1);
    assert_eq!(c.stats().rd_row_hits, 0);
}

#[test]
fn row_hit_streams_back_to_back() {
    let mut c = ctrl();
    for i in 0..2 {
        c.try_send(MemRequest::read(ReqId(i), addr(0, 5, i), 64), 0)
            .unwrap();
    }
    let out = run(&mut c);
    assert_eq!(out[0].ready_at, 33_000);
    // The second burst follows immediately on the data bus.
    assert_eq!(out[1].ready_at, 39_000);
    assert_eq!(c.stats().rd_row_hits, 1);
    assert_eq!(c.stats().activates, 1);
}

#[test]
fn bank_conflict_pays_ras_rp_rcd() {
    let mut c = ctrl();
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 6, 0), 64), 0)
        .unwrap();
    let out = run(&mut c);
    assert_eq!(out[0].ready_at, 33_000);
    // PRE gated by tRAS (36 ns), then tRP + tRCD + tCL + tBURST.
    // 36 + 13.5 + 13.5 + 13.5 + 6 = 82.5 ns.
    assert_eq!(out[1].ready_at, 82_500);
    assert_eq!(c.stats().precharges, 1);
    assert_eq!(c.stats().activates, 2);
}

#[test]
fn different_banks_overlap_fully() {
    let mut c = ctrl();
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(1, 9, 0), 64), 0)
        .unwrap();
    let out = run(&mut c);
    // Bank 1's ACT (at tRRD = 6 ns) hides behind bank 0's access; the
    // second burst is bus-limited, as if it were a row hit.
    assert_eq!(out[0].ready_at, 33_000);
    assert_eq!(out[1].ready_at, 39_000);
    assert_eq!(c.stats().activates, 2);
    assert_eq!(c.stats().rd_row_hits, 0);
}

#[test]
fn activation_window_gates_fifth_bank() {
    let send_five = |c: &mut DramCtrl| {
        for b in 0..5 {
            c.try_send(MemRequest::read(ReqId(b.into()), addr(b, 1, 0), 64), 0)
                .unwrap();
        }
    };
    // With the tXAW window (30 ns, 4 activates): ACTs at 0, 6, 12, 18 ns,
    // then the 5th waits until 30 ns, pushing its data to 57..63 ns.
    let mut limited = ctrl();
    send_five(&mut limited);
    let out = run(&mut limited);
    assert_eq!(out[4].ready_at, 63_000);

    // Without the limit the 5th ACT goes at 24 ns and data stays
    // bus-limited: 51..57 ns.
    let mut unlimited = ctrl_with(|cfg| cfg.spec.timing.activation_limit = 0);
    send_five(&mut unlimited);
    let out = run(&mut unlimited);
    assert_eq!(out[4].ready_at, 57_000);
}

#[test]
fn write_acknowledged_on_enqueue() {
    let mut c = ctrl();
    c.try_send(MemRequest::write(ReqId(0), addr(0, 2, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.advance_to(0, &mut out);
    // Early write response at enqueue time (zero frontend latency).
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].ready_at, 0);
    // The write itself has not touched DRAM yet (held below the low
    // watermark).
    assert_eq!(c.stats().wr_bursts, 0);
    assert_eq!(c.write_queue_len(), 1);
    run(&mut c);
    assert_eq!(c.stats().wr_bursts, 1);
}

#[test]
fn read_forwarded_from_write_queue() {
    let mut c = ctrl();
    let a = addr(0, 2, 0);
    c.try_send(MemRequest::write(ReqId(0), a, 64), 0).unwrap();
    c.try_send(MemRequest::read(ReqId(1), a, 64), 0).unwrap();
    let out = run(&mut c);
    let read = out.iter().find(|r| r.id == ReqId(1)).unwrap();
    // Serviced from the write queue: no DRAM latency at all.
    assert_eq!(read.ready_at, 0);
    assert_eq!(c.stats().forwarded_reads, 1);
    assert_eq!(c.stats().rd_bursts, 0);
}

#[test]
fn partial_read_not_forwarded() {
    let mut c = ctrl();
    let a = addr(0, 2, 0);
    // Write covers only the first 16 bytes of the burst.
    c.try_send(MemRequest::write(ReqId(0), a, 16), 0).unwrap();
    c.try_send(MemRequest::read(ReqId(1), a, 64), 0).unwrap();
    run(&mut c);
    assert_eq!(c.stats().forwarded_reads, 0);
    assert_eq!(c.stats().rd_bursts, 1);
}

#[test]
fn writes_merge_when_subsumed() {
    let mut c = ctrl();
    let a = addr(0, 2, 0);
    c.try_send(MemRequest::write(ReqId(0), a, 64), 0).unwrap();
    c.try_send(MemRequest::write(ReqId(1), a + 8, 8), 0)
        .unwrap();
    assert_eq!(c.stats().merged_writes, 1);
    assert_eq!(c.write_queue_len(), 1);
    // A write that is not subsumed gets its own entry.
    c.try_send(MemRequest::write(ReqId(2), a + 64, 64), 0)
        .unwrap();
    assert_eq!(c.write_queue_len(), 2);
}

#[test]
fn large_read_chopped_single_response() {
    let mut c = ctrl();
    // 256 B = 4 bursts, same row.
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 256), 0)
        .unwrap();
    let out = run(&mut c);
    assert_eq!(out.len(), 1);
    // tRCD + tCL + 4 * tBURST.
    assert_eq!(out[0].ready_at, 51_000);
    assert_eq!(c.stats().rd_bursts, 4);
    assert_eq!(c.stats().rd_row_hits, 3);
}

#[test]
fn cache_line_chopped_on_narrow_interface() {
    // LPDDR3 x32: 32-byte bursts, so a 64-byte line needs two bursts —
    // the sub-cache-line handling of paper Section II-A.
    let mut cfg = CtrlConfig::new(presets::lpddr3_1600_x32());
    cfg.spec.timing.t_refi = 0;
    let mut c = DramCtrl::new(cfg).unwrap();
    c.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
    let out = run(&mut c);
    assert_eq!(out.len(), 1);
    assert_eq!(c.stats().rd_bursts, 2);
    // Second burst is a row hit (sequential sub-accesses benefit).
    assert_eq!(c.stats().rd_row_hits, 1);
    // tRCD + tCL + 2*tBURST = 15 + 15 + 10 ns.
    assert_eq!(out[0].ready_at, 40_000);
}

#[test]
fn static_latencies_add_to_reads_and_acks() {
    let mut c = ctrl_with(|cfg| {
        cfg.frontend_latency = 10_000;
        cfg.backend_latency = 20_000;
    });
    c.try_send(MemRequest::write(ReqId(0), addr(0, 1, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 5, 0), 64), 0)
        .unwrap();
    let out = run(&mut c);
    let ack = out.iter().find(|r| r.id == ReqId(0)).unwrap();
    let read = out.iter().find(|r| r.id == ReqId(1)).unwrap();
    assert_eq!(ack.ready_at, 10_000, "write ack pays the frontend");
    assert_eq!(read.ready_at, 33_000 + 30_000, "read pays front+back");
}

#[test]
fn write_then_read_pays_wtr_turnaround() {
    // Single-entry write buffer so the write drains immediately.
    let mut c = ctrl_with(|cfg| {
        cfg.write_buffer_size = 1;
        cfg.write_high_thresh = 1.0;
        cfg.write_low_thresh = 1.0;
    });
    c.try_send(MemRequest::write(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.advance_to(500, &mut out); // write issue decided; data on bus 27..33 ns
    assert_eq!(c.stats().wr_bursts, 1);
    // Read arrives while the write burst is still in flight.
    c.try_send(MemRequest::read(ReqId(1), addr(0, 5, 1), 64), 1_000)
        .unwrap();
    c.advance_to(200_000, &mut out);
    let read = out.iter().find(|r| r.id == ReqId(1)).unwrap();
    // Write data ends at 33 ns; the row hit's CAS could deliver at 20.5 ns
    // + tCL, but the turnaround pins the read data to start no earlier
    // than 33 + tWTR + tCL = 54 ns; ends 60 ns.
    assert_eq!(read.ready_at, 60_000);
    assert_eq!(c.stats().bus_turnarounds, 1);
}

#[test]
fn read_then_write_pays_rtw_bubble() {
    let mut c = ctrl_with(|cfg| {
        cfg.write_buffer_size = 1;
        cfg.write_high_thresh = 1.0;
        cfg.write_low_thresh = 1.0;
    });
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::write(ReqId(1), addr(0, 5, 1), 64), 0)
        .unwrap();
    run(&mut c);
    // Read data 27..33 ns; write data start = 33 + tRTW(3) = 36 ns.
    // Visible through the accumulated turnaround count and bus busy time.
    assert_eq!(c.stats().bus_turnarounds, 1);
    assert_eq!(c.stats().rd_bursts, 1);
    assert_eq!(c.stats().wr_bursts, 1);
}

#[test]
fn high_watermark_forces_write_drain_before_reads() {
    let mut c = ctrl_with(|cfg| {
        cfg.write_buffer_size = 8;
        cfg.write_high_thresh = 0.5; // 4 entries
        cfg.write_low_thresh = 0.5;
        cfg.min_writes_per_switch = 2;
    });
    // Four writes to one row of bank 1 reach the high watermark; one read
    // to bank 0 waits.
    for i in 0..4u64 {
        c.try_send(MemRequest::write(ReqId(i), addr(1, 1, i), 64), 0)
            .unwrap();
    }
    c.try_send(MemRequest::read(ReqId(9), addr(0, 5, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.advance_to(1_000_000, &mut out);
    let read = out.iter().find(|r| r.id == ReqId(9)).unwrap();
    // Two writes (the minimum per switch) go first: data 27..33, 33..39 ns.
    // Read turnaround: 39 + tWTR + tCL = 60 ns; data ends 66 ns.
    assert_eq!(read.ready_at, 66_000);
    assert_eq!(c.stats().wr_bursts, 2, "min_writes_per_switch honoured");
}

#[test]
fn refresh_delays_reads_by_rfc() {
    // Keep the default 7.8 us refresh interval.
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    let t_refi = cfg.spec.timing.t_refi;
    let t_rfc = cfg.spec.timing.t_rfc;
    cfg.page_policy = PagePolicy::Open;
    let mut c = DramCtrl::new(cfg).unwrap();
    // A read arriving exactly at the refresh deadline sees the full tRFC.
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), t_refi)
        .unwrap();
    let mut out = Vec::new();
    c.advance_to(t_refi + t_rfc + 100_000, &mut out);
    assert_eq!(out[0].ready_at, t_refi + t_rfc + 33_000);
    assert_eq!(c.stats().refreshes, 1);
}

#[test]
fn refreshes_recur_every_refi() {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    let t_refi = cfg.spec.timing.t_refi;
    cfg.page_policy = PagePolicy::Open;
    let mut c = DramCtrl::new(cfg).unwrap();
    let mut out = Vec::new();
    c.advance_to(10 * t_refi, &mut out);
    assert_eq!(c.stats().refreshes, 10);
    assert!(out.is_empty());
}

#[test]
fn frfcfs_prioritises_row_hits() {
    let mut c = ctrl();
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 6, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(2), addr(0, 5, 1), 64), 0)
        .unwrap();
    let out = run(&mut c);
    let order: Vec<_> = out.iter().map(|r| r.id.0).collect();
    assert_eq!(order, vec![0, 2, 1], "row hit (id 2) bypasses conflict");
    assert_eq!(out[1].ready_at, 39_000);
    assert_eq!(out[2].ready_at, 82_500);
}

#[test]
fn fcfs_serves_in_arrival_order() {
    let mut c = ctrl_with(|cfg| cfg.scheduling = SchedPolicy::Fcfs);
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 6, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(2), addr(0, 5, 1), 64), 0)
        .unwrap();
    let out = run(&mut c);
    let order: Vec<_> = out.iter().map(|r| r.id.0).collect();
    assert_eq!(order, vec![0, 1, 2]);
    // Request 2 reopens row 5 after the conflict: 82.5 + 36 + 13.5 ns of
    // bank cycling... derived: pre at 85.5 (tRAS after ACT at 49.5),
    // ACT 99, CAS 112.5, data 126..132 ns.
    assert_eq!(out[2].ready_at, 132_000);
}

#[test]
fn closed_adaptive_keeps_row_for_queued_hits() {
    let two_same_row = |c: &mut DramCtrl| {
        c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
            .unwrap();
        c.try_send(MemRequest::read(ReqId(1), addr(0, 5, 1), 64), 0)
            .unwrap();
    };
    let mut closed = ctrl_with(|cfg| cfg.page_policy = PagePolicy::Closed);
    two_same_row(&mut closed);
    let out = run(&mut closed);
    assert_eq!(closed.stats().rd_row_hits, 0);
    assert_eq!(closed.stats().activates, 2);
    // Reopen after auto-precharge: PRE allowed at tRAS = 36, +tRP +tRCD
    // +tCL +tBURST = 82.5 ns.
    assert_eq!(out[1].ready_at, 82_500);

    let mut adaptive = ctrl_with(|cfg| cfg.page_policy = PagePolicy::ClosedAdaptive);
    two_same_row(&mut adaptive);
    let out = run(&mut adaptive);
    assert_eq!(adaptive.stats().rd_row_hits, 1);
    assert_eq!(adaptive.stats().activates, 1);
    assert_eq!(out[1].ready_at, 39_000);
    // With nothing left queued the row was auto-precharged.
    assert_eq!(adaptive.open_row(0, 0), None);
}

#[test]
fn open_adaptive_closes_on_queued_conflict() {
    // A write to another row of the same bank sits in the write queue
    // (below the low watermark, so it is never drained); the adaptive
    // policy closes the row right after the read, the plain open policy
    // leaves it open.
    let scenario = |policy| {
        let mut c = ctrl_with(|cfg| cfg.page_policy = policy);
        c.try_send(MemRequest::write(ReqId(0), addr(0, 9, 0), 64), 0)
            .unwrap();
        c.try_send(MemRequest::read(ReqId(1), addr(0, 5, 0), 64), 0)
            .unwrap();
        let mut out = Vec::new();
        c.advance_to(1_000_000, &mut out);
        c
    };
    let open = scenario(PagePolicy::Open);
    assert_eq!(open.open_row(0, 0), Some(5));
    assert_eq!(open.stats().precharges, 0);

    let adaptive = scenario(PagePolicy::OpenAdaptive);
    assert_eq!(adaptive.open_row(0, 0), None);
    assert_eq!(adaptive.stats().precharges, 1);
}

#[test]
fn starvation_guard_closes_hot_row() {
    let mut c = ctrl_with(|cfg| cfg.max_accesses_per_row = 4);
    for i in 0..8 {
        c.try_send(MemRequest::read(ReqId(i), addr(0, 5, i), 64), 0)
            .unwrap();
    }
    run(&mut c);
    // 8 accesses with a forced close every 4: two activates.
    assert_eq!(c.stats().activates, 2);
    assert_eq!(c.stats().rd_row_hits, 6);
}

#[test]
fn write_recovery_gates_precharge() {
    // A write to row A followed by a read to row B of the same bank: the
    // precharge may not issue until tWR after the write data (48 ns),
    // later than the tRAS bound (36 ns) — unlike the read-read conflict
    // case (82.5 ns), this one lands at 94.5 ns.
    let mut c = ctrl_with(|cfg| {
        cfg.write_buffer_size = 1;
        cfg.write_high_thresh = 1.0;
        cfg.write_low_thresh = 1.0;
    });
    c.try_send(MemRequest::write(ReqId(0), addr(0, 1, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.advance_to(500, &mut out); // write issued: data 27..33 ns
    c.try_send(MemRequest::read(ReqId(1), addr(0, 2, 0), 64), 1_000)
        .unwrap();
    c.advance_to(300_000, &mut out);
    let read = out.iter().find(|r| r.id == ReqId(1)).unwrap();
    // PRE at 33 + tWR(15) = 48; ACT 61.5; CAS 75; data 88.5..94.5 ns.
    assert_eq!(read.ready_at, 94_500);
}

#[test]
fn read_to_precharge_delay_gates_early_close() {
    // Closed-page single read: the auto-precharge waits for
    // max(ACT + tRAS, CAS + tRTP) = max(36, 13.5 + 7.5) = 36 ns, so the
    // second read to another row starts its ACT at 49.5 ns.
    let mut c = ctrl_with(|cfg| cfg.page_policy = PagePolicy::Closed);
    c.try_send(MemRequest::read(ReqId(0), addr(0, 1, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 2, 0), 64), 0)
        .unwrap();
    let out = run(&mut c);
    assert_eq!(out[0].ready_at, 33_000);
    assert_eq!(out[1].ready_at, 82_500);
    // With a long tRTP the close (and thus the reopen) slips by the
    // difference: tRTP = 30 ns makes PRE wait until CAS + 30 = 43.5 ns.
    let mut c = ctrl_with(|cfg| {
        cfg.page_policy = PagePolicy::Closed;
        cfg.spec.timing.t_rtp = 30_000;
    });
    c.try_send(MemRequest::read(ReqId(0), addr(0, 1, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 2, 0), 64), 0)
        .unwrap();
    let out = run(&mut c);
    assert_eq!(out[1].ready_at, 90_000); // 43.5 + 13.5 + 27 + 6
}
