//! Differential-equivalence harness: indexed scheduler vs reference scans.
//!
//! The controller's hot paths (write snooping, FR-FCFS selection, the
//! adaptive page policies' occupancy test) are answered from incremental
//! indices (`sched`). The pre-index linear scans survive behind
//! [`DramCtrl::new_reference`], and this module proves the two are
//! *byte-identical*: a lockstep driver feeds both controllers the same
//! request stream and asserts equal acceptance decisions, equal response
//! streams (every field of every [`MemResponse`]), equal drain ticks and
//! equal rendered statistics reports.
//!
//! The module is compiled for tests and under the `ref-model` feature so
//! the benches can reuse the same harness (`cargo bench` runs the check
//! before timing anything).
//!
//! The same lockstep driver also proves the *zero-perturbation guarantee*
//! of the instrumentation layer ([`assert_probe_transparent`]): a
//! controller carrying live `dramctrl-obs` sinks must produce byte-identical
//! responses, drain ticks and statistics reports to an uninstrumented one.

use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::Tick;
use dramctrl_mem::{MemRequest, ReqId};
use dramctrl_obs::{ChromeTracer, EpochRecorder};

use crate::config::CtrlConfig;
use crate::ctrl::DramCtrl;

/// What one lockstep comparison observed (for sanity assertions: a
/// workload that exercises nothing proves nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffSummary {
    /// Requests both controllers accepted.
    pub accepted: usize,
    /// Requests both controllers rejected (flow control).
    pub rejected: usize,
    /// Responses both controllers delivered.
    pub responses: usize,
    /// Tick at which both controllers drained idle.
    pub drain_tick: Tick,
}

/// Drives an indexed and a reference controller in lockstep over
/// `requests` (ticks must be non-decreasing) and asserts byte-identical
/// behaviour at every step.
///
/// # Panics
/// Panics on the first divergence: acceptance decision, response stream,
/// drain tick or rendered statistics report.
pub fn assert_equivalent(cfg: &CtrlConfig, requests: &[(Tick, MemRequest)]) -> DiffSummary {
    let mut indexed = DramCtrl::new(cfg.clone()).expect("valid config");
    let mut reference = DramCtrl::new_reference(cfg.clone()).expect("valid config");
    let mut iresp = Vec::new();
    let mut rresp = Vec::new();
    let mut accepted = 0;
    let mut rejected = 0;
    for &(t, req) in requests {
        indexed.advance_to(t, &mut iresp);
        reference.advance_to(t, &mut rresp);
        assert_eq!(iresp, rresp, "response streams diverged before tick {t}");
        let can = indexed.can_accept(req.cmd, req.addr, req.size);
        assert_eq!(
            can,
            reference.can_accept(req.cmd, req.addr, req.size),
            "can_accept diverged at tick {t} for {req:?}"
        );
        let sent = indexed.try_send(req, t);
        assert_eq!(
            sent,
            reference.try_send(req, t),
            "try_send diverged at tick {t} for {req:?}"
        );
        assert_eq!(sent.is_ok(), can, "can_accept disagreed with try_send");
        if sent.is_ok() {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    let it = indexed.drain(&mut iresp);
    let rt = reference.drain(&mut rresp);
    assert_eq!(it, rt, "drain ticks diverged");
    assert_eq!(iresp, rresp, "final response streams diverged");
    assert_eq!(
        indexed.report("ctrl", it).to_string(),
        reference.report("ctrl", rt).to_string(),
        "rendered statistics reports diverged"
    );
    DiffSummary {
        accepted,
        rejected,
        responses: iresp.len(),
        drain_tick: it,
    }
}

/// Drives an uninstrumented controller and one carrying live observability
/// sinks (a [`ChromeTracer`] paired with an [`EpochRecorder`]) in lockstep
/// over `requests`, asserting the zero-perturbation guarantee: byte-identical
/// acceptance decisions, response streams, drain ticks and rendered +
/// JSON-serialised statistics reports. Returns the traced run's probe so
/// callers can additionally assert the sinks saw real events.
///
/// # Panics
/// Panics on the first divergence between the traced and untraced run.
pub fn assert_probe_transparent(
    cfg: &CtrlConfig,
    requests: &[(Tick, MemRequest)],
) -> (DiffSummary, (ChromeTracer, EpochRecorder)) {
    let mut plain = DramCtrl::new(cfg.clone()).expect("valid config");
    let probe = (ChromeTracer::new(), EpochRecorder::new(1_000_000));
    let mut traced = DramCtrl::with_probe(cfg.clone(), probe).expect("valid config");
    let mut presp = Vec::new();
    let mut tresp = Vec::new();
    let mut accepted = 0;
    let mut rejected = 0;
    for &(t, req) in requests {
        plain.advance_to(t, &mut presp);
        traced.advance_to(t, &mut tresp);
        assert_eq!(
            presp, tresp,
            "tracing perturbed the response stream before tick {t}"
        );
        let sent = plain.try_send(req, t);
        assert_eq!(
            sent,
            traced.try_send(req, t),
            "tracing perturbed flow control at tick {t} for {req:?}"
        );
        if sent.is_ok() {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    let pt = plain.drain(&mut presp);
    let tt = traced.drain(&mut tresp);
    assert_eq!(pt, tt, "tracing perturbed the drain tick");
    assert_eq!(presp, tresp, "tracing perturbed the final response stream");
    assert_eq!(
        plain.report("ctrl", pt).to_string(),
        traced.report("ctrl", tt).to_string(),
        "tracing perturbed the rendered statistics report"
    );
    assert_eq!(
        plain.report("ctrl", pt).to_json(),
        traced.report("ctrl", tt).to_json(),
        "tracing perturbed the JSON statistics report"
    );
    let summary = DiffSummary {
        accepted,
        rejected,
        responses: tresp.len(),
        drain_tick: tt,
    };
    let mut probe = traced.into_probe();
    probe.1.finish(tt);
    (summary, probe)
}

/// Drives a controller with `ras: None` and one armed with a zero-rate
/// [`RasConfig`](dramctrl_ras::RasConfig) in lockstep over `requests`,
/// asserting the RAS plumbing is invisible when no fault can fire:
/// byte-identical acceptance decisions, response streams and drain ticks,
/// a byte-identical statistics report once the armed run's `ras_*` entries
/// are stripped — and every one of those `ras_*` counters zero.
///
/// # Panics
/// Panics on the first divergence, or if `cfg` already has RAS configured.
pub fn assert_ras_transparent(cfg: &CtrlConfig, requests: &[(Tick, MemRequest)]) -> DiffSummary {
    assert!(cfg.ras.is_none(), "pass a fault-free base config");
    let mut armed_cfg = cfg.clone();
    armed_cfg.ras = Some(dramctrl_ras::RasConfig::new(0xA5));
    let mut plain = DramCtrl::new(cfg.clone()).expect("valid config");
    let mut armed = DramCtrl::new(armed_cfg).expect("valid config");
    let mut presp = Vec::new();
    let mut aresp = Vec::new();
    let mut accepted = 0;
    let mut rejected = 0;
    for &(t, req) in requests {
        plain.advance_to(t, &mut presp);
        armed.advance_to(t, &mut aresp);
        assert_eq!(
            presp, aresp,
            "zero-rate RAS perturbed the response stream before tick {t}"
        );
        let sent = plain.try_send(req, t);
        assert_eq!(
            sent,
            armed.try_send(req, t),
            "zero-rate RAS perturbed flow control at tick {t} for {req:?}"
        );
        if sent.is_ok() {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    let pt = plain.drain(&mut presp);
    let at = armed.drain(&mut aresp);
    assert_eq!(pt, at, "zero-rate RAS perturbed the drain tick");
    assert_eq!(
        presp, aresp,
        "zero-rate RAS perturbed the final response stream"
    );
    // Compare the JSON reports (stable schema, no column alignment to
    // disturb) after stripping the armed run's `ras_*` entries.
    // One entry per line; the document closer `]}` sits on whichever line
    // is last, so trim it off along with the entry separator.
    let strip_ras = |json: String| -> String {
        json.lines()
            .filter(|l| !l.contains("\"ras_"))
            .map(|l| l.trim_end_matches("]}").trim_end_matches(','))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_ras(plain.report("ctrl", pt).to_json()),
        strip_ras(armed.report("ctrl", at).to_json()),
        "zero-rate RAS perturbed the statistics report"
    );
    let fm = armed.fault_model().expect("armed controller carries RAS");
    for (name, v) in fm.stats().entries() {
        assert_eq!(v, 0, "zero-rate RAS counted {name}={v}");
    }
    assert!(fm.log().is_empty(), "zero-rate RAS logged faults");
    DiffSummary {
        accepted,
        rejected,
        responses: aresp.len(),
        drain_tick: at,
    }
}

/// Drives an uninterrupted controller and a checkpoint/restore pair over
/// the same `requests`, asserting the crash-safety guarantee of the
/// snapshot layer: pausing after `pause_after` requests, serialising the
/// controller, restoring the bytes into a *freshly constructed* controller
/// and continuing must be byte-identical to never having stopped — same
/// post-pause response stream, same drain tick, same rendered and JSON
/// statistics reports, same fault log (when RAS is armed), and a Perfetto
/// trace identical to the uninterrupted run's post-pause trace suffix
/// (captured by swapping a fresh tracer in at the pause point).
///
/// Returns the summary of the uninterrupted run plus the snapshot size in
/// bytes, so callers can assert the pause actually split live state.
///
/// # Panics
/// Panics on the first divergence, or if `pause_after` is out of range.
pub fn assert_checkpoint_equivalent(
    cfg: &CtrlConfig,
    requests: &[(Tick, MemRequest)],
    pause_after: usize,
) -> (DiffSummary, usize) {
    use dramctrl_kernel::snap::{SnapReader, SnapState, SnapWriter};
    assert!(
        pause_after < requests.len(),
        "pause point outside the workload"
    );
    let mut base = DramCtrl::with_probe(cfg.clone(), ChromeTracer::new()).expect("valid config");
    let mut resumed: Option<DramCtrl<ChromeTracer>> = None;
    let mut bresp = Vec::new();
    let mut rresp = Vec::new();
    let mut snap_len = 0;
    let mut accepted = 0;
    let mut rejected = 0;
    for (i, &(t, req)) in requests.iter().enumerate() {
        if i == pause_after {
            // Snapshot the live controller mid-flight...
            let mut w = SnapWriter::new(0xC0FFEE);
            base.save_state(&mut w);
            let bytes = w.into_bytes();
            snap_len = bytes.len();
            // ...restore into a virgin controller built from the same
            // config...
            let mut fresh =
                DramCtrl::with_probe(cfg.clone(), ChromeTracer::new()).expect("valid config");
            let mut r = SnapReader::new(&bytes, 0xC0FFEE).expect("fresh snapshot header");
            fresh.restore_state(&mut r).expect("fresh snapshot body");
            assert!(r.is_exhausted(), "snapshot has trailing bytes");
            resumed = Some(fresh);
            // ...and start the baseline's trace suffix: from here on the
            // uninterrupted run records into a fresh tracer, which must
            // match the resumed run's tracer byte for byte.
            let _prefix = std::mem::take(base.probe_mut());
            bresp.clear();
        }
        base.advance_to(t, &mut bresp);
        let sent = base.try_send(req, t);
        if sent.is_ok() {
            accepted += 1;
        } else {
            rejected += 1;
        }
        if let Some(res) = resumed.as_mut() {
            res.advance_to(t, &mut rresp);
            assert_eq!(bresp, rresp, "response streams diverged before tick {t}");
            assert_eq!(
                sent,
                res.try_send(req, t),
                "try_send diverged at tick {t} for {req:?}"
            );
        }
    }
    let mut resumed = resumed.expect("pause point inside the workload");
    let bt = base.drain(&mut bresp);
    let rt = resumed.drain(&mut rresp);
    assert_eq!(bt, rt, "drain ticks diverged");
    assert_eq!(bresp, rresp, "final response streams diverged");
    assert_eq!(
        base.report("ctrl", bt).to_string(),
        resumed.report("ctrl", rt).to_string(),
        "rendered statistics reports diverged"
    );
    assert_eq!(
        base.report("ctrl", bt).to_json(),
        resumed.report("ctrl", rt).to_json(),
        "JSON statistics reports diverged"
    );
    if base.fault_model().is_some() {
        assert_eq!(
            base.fault_model().unwrap().log_text(),
            resumed.fault_model().unwrap().log_text(),
            "fault logs diverged"
        );
    }
    assert_eq!(
        base.into_probe().to_json(),
        resumed.into_probe().to_json(),
        "post-pause Perfetto trace suffixes diverged"
    );
    (
        DiffSummary {
            accepted,
            rejected,
            responses: bresp.len(),
            drain_tick: bt,
        },
        snap_len,
    )
}

/// Generates a deterministic random request stream that exercises every
/// controller path the indices touch: row hits and conflicts (a hot
/// region), bank spread (a wide region), write merging and read forwarding
/// (revisited addresses), sub-burst unaligned accesses, multi-burst
/// chopped requests, QoS sources `0..qos_sources` and bursty arrivals.
///
/// Ticks are non-decreasing, as [`assert_equivalent`] requires.
pub fn random_workload(seed: u64, n: usize, qos_sources: u16) -> Vec<(Tick, MemRequest)> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t: Tick = 0;
    (0..n)
        .map(|i| {
            // Bursty: half the arrivals are back-to-back, the rest spread
            // out to let queues drain and refreshes interleave.
            if rng.gen_bool() {
                t += rng.gen_range(0..100_000);
            }
            let addr = if rng.gen_bool() {
                rng.gen_range(0..1 << 14) // hot: hits, merges, forwards
            } else {
                rng.gen_range(0..1 << 26) // wide: bank/row spread
            };
            let size = match rng.gen_range(0..4) {
                0 => rng.gen_range_inclusive(1..=64) as u32, // sub-burst
                1 => 64,
                2 => 128,
                _ => 256, // chopped into several bursts
            };
            let req = if rng.gen_bool() {
                MemRequest::read(ReqId(i as u64), addr, size)
            } else {
                MemRequest::write(ReqId(i as u64), addr, size)
            };
            let source = if qos_sources > 1 {
                (rng.next_u64() % u64::from(qos_sources)) as u16
            } else {
                0
            };
            (t, req.with_source(source))
        })
        .collect()
}

/// Splits a workload across `channels` controllers the way an interleaving
/// crossbar would, by burst-aligned address bits.
pub fn split_by_channel(
    requests: &[(Tick, MemRequest)],
    channels: u64,
) -> Vec<Vec<(Tick, MemRequest)>> {
    let mut per: Vec<Vec<(Tick, MemRequest)>> = vec![Vec::new(); channels as usize];
    for &(t, req) in requests {
        per[((req.addr >> 6) % channels) as usize].push((t, req));
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PagePolicy, SchedPolicy};
    use dramctrl_mem::presets;
    use dramctrl_ras::EccMode;

    fn cfg_matrix() -> Vec<CtrlConfig> {
        let mut cfgs = Vec::new();
        for pp in [
            PagePolicy::Open,
            PagePolicy::OpenAdaptive,
            PagePolicy::Closed,
            PagePolicy::ClosedAdaptive,
        ] {
            for sp in [SchedPolicy::FrFcfs, SchedPolicy::Fcfs] {
                let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
                cfg.page_policy = pp;
                cfg.scheduling = sp;
                cfgs.push(cfg);
            }
        }
        cfgs
    }

    /// Every page policy × scheduling policy is byte-identical between the
    /// indexed and reference controllers, and the workload actually
    /// exercises the paths (responses flow).
    #[test]
    fn all_policies_and_schedulers_equivalent() {
        for (i, cfg) in cfg_matrix().into_iter().enumerate() {
            let wl = random_workload(0xD1FF + i as u64, 150, 1);
            let summary = assert_equivalent(&cfg, &wl);
            assert!(summary.responses > 0);
            assert!(summary.accepted > 50, "workload barely exercised paths");
        }
    }

    /// QoS classes reorder service; the indexed order index must agree
    /// with the priority scan.
    #[test]
    fn qos_priorities_equivalent() {
        for sp in [SchedPolicy::FrFcfs, SchedPolicy::Fcfs] {
            let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
            cfg.page_policy = PagePolicy::OpenAdaptive;
            cfg.scheduling = sp;
            cfg.qos_priorities = vec![0, 1, 3, 7];
            let wl = random_workload(0x905, 200, 4);
            let summary = assert_equivalent(&cfg, &wl);
            assert!(summary.responses > 0);
        }
    }

    /// Tiny queues force rejections, so flow control (including the
    /// `can_accept`/`try_send` agreement) is exercised on both sides.
    #[test]
    fn flow_control_equivalent_with_tiny_queues() {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.read_buffer_size = 4;
        cfg.write_buffer_size = 4;
        let wl = random_workload(0xF10, 150, 1);
        let summary = assert_equivalent(&cfg, &wl);
        assert!(summary.rejected > 0, "workload never hit flow control");
    }

    /// Satellite property test: 64 seeded random workloads, each run at
    /// one channel and split across four channels, stay byte-identical.
    /// Policies rotate with the seed so the whole matrix keeps being
    /// covered as seeds grow.
    #[test]
    fn sixty_four_random_workloads_at_one_and_four_channels() {
        let cfgs = cfg_matrix();
        for seed in 0..64u64 {
            let cfg = &cfgs[(seed as usize) % cfgs.len()];
            let qos = if seed % 3 == 0 { 4 } else { 1 };
            let wl = random_workload(0x5EED_0000 + seed, 96, qos);
            let mut single = cfg.clone();
            if qos == 4 {
                single.qos_priorities = vec![0, 2, 5, 6];
            }
            assert_equivalent(&single, &wl);
            let mut multi = single.clone();
            multi.channels = 4;
            for sub in split_by_channel(&wl, 4) {
                if !sub.is_empty() {
                    assert_equivalent(&multi, &sub);
                }
            }
        }
    }

    /// The zero-perturbation guarantee: live Chrome-trace + epoch sinks
    /// leave every output of every page/scheduling policy byte-identical,
    /// while the sinks themselves see real commands and produce loadable
    /// JSON.
    #[test]
    fn tracing_is_zero_perturbation_across_policies() {
        for (i, cfg) in cfg_matrix().into_iter().enumerate() {
            let wl = random_workload(0x0B5 + i as u64, 150, 1);
            let (summary, (tracer, epochs)) = assert_probe_transparent(&cfg, &wl);
            assert!(summary.responses > 0);
            assert!(!tracer.is_empty(), "tracer saw no events");
            let json = tracer.to_json();
            dramctrl_obs::json::validate(&json).expect("loadable trace JSON");
            assert!(json.contains("\"RD\"") || json.contains("\"WR\""));
            assert!(!epochs.rows().is_empty(), "no epochs recorded");
        }
    }

    /// Zero-perturbation also holds through the power-down/self-refresh
    /// state machine, and the tracer records the residency transitions.
    #[test]
    fn tracing_is_zero_perturbation_with_powerdown() {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.powerdown_idle = 200_000;
        cfg.selfrefresh_after = 400_000;
        let wl = random_workload(0x0B6, 120, 1);
        let (summary, (tracer, _)) = assert_probe_transparent(&cfg, &wl);
        assert!(summary.responses > 0);
        let json = tracer.to_json();
        assert!(json.contains("\"powerdown\""), "no power-down slice traced");
    }

    /// Power-down and self-refresh interact with arrival side effects;
    /// the indexed controller must wake and drain identically.
    #[test]
    fn powerdown_paths_equivalent() {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.page_policy = PagePolicy::ClosedAdaptive;
        cfg.powerdown_idle = 200_000;
        cfg.selfrefresh_after = 400_000;
        let wl = random_workload(0x9D, 120, 1);
        let summary = assert_equivalent(&cfg, &wl);
        assert!(summary.responses > 0);
    }

    /// A zero-rate fault model is invisible across the whole policy ×
    /// scheduler matrix, with power-down, and at one and four channels.
    #[test]
    fn zero_rate_ras_is_transparent_across_policies_and_channels() {
        for (i, cfg) in cfg_matrix().into_iter().enumerate() {
            let wl = random_workload(0x9A5 + i as u64, 120, 1);
            let summary = assert_ras_transparent(&cfg, &wl);
            assert!(summary.responses > 0);
            let mut multi = cfg.clone();
            multi.channels = 4;
            for sub in split_by_channel(&wl, 4) {
                if !sub.is_empty() {
                    assert_ras_transparent(&multi, &sub);
                }
            }
        }
        let mut pd = CtrlConfig::new(presets::ddr3_1333_x64());
        pd.powerdown_idle = 200_000;
        pd.selfrefresh_after = 400_000;
        assert_ras_transparent(&pd, &random_workload(0x9A5F, 120, 1));
    }

    /// Runs a faulty configuration to completion, returning every
    /// determinism-relevant artefact: responses, fault log, stats JSON and
    /// the Perfetto trace.
    fn faulty_run(channels: u32, wl: &[(Tick, MemRequest)]) -> (String, String, String) {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.channels = channels;
        cfg.ras =
            Some(dramctrl_ras::RasConfig::from_error_rate(2e11, 0xFA_15).with_ecc(EccMode::SecDed));
        let probe = (ChromeTracer::new(), EpochRecorder::new(1_000_000));
        let mut ctrl = DramCtrl::with_probe(cfg, probe).expect("valid config");
        let mut resp = Vec::new();
        for &(t, req) in wl {
            ctrl.advance_to(t, &mut resp);
            let _ = ctrl.try_send(req, t);
        }
        let end = ctrl.drain(&mut resp);
        let log = ctrl.fault_model().expect("RAS armed").log_text();
        let stats = ctrl.report("ctrl", end).to_json();
        let trace = ctrl.into_probe().0.to_json();
        (log, stats, trace)
    }

    /// Same seed + config ⇒ byte-identical fault logs, stats JSON and
    /// Perfetto traces, at one and four channels — and the runs actually
    /// inject faults.
    #[test]
    fn faulty_runs_are_deterministic() {
        let wl = random_workload(0xDE7, 200, 1);
        for channels in [1u32, 4] {
            let subs = if channels == 1 {
                vec![wl.clone()]
            } else {
                split_by_channel(&wl, u64::from(channels))
            };
            for sub in &subs {
                if sub.is_empty() {
                    continue;
                }
                let a = faulty_run(channels, sub);
                let b = faulty_run(channels, sub);
                assert_eq!(a.0, b.0, "fault logs diverged at {channels} channel(s)");
                assert_eq!(a.1, b.1, "stats JSON diverged at {channels} channel(s)");
                assert_eq!(a.2, b.2, "traces diverged at {channels} channel(s)");
            }
            let (log, stats, _) = faulty_run(channels, &subs[0]);
            assert!(
                !log.is_empty(),
                "no faults injected at {channels} channel(s)"
            );
            assert!(stats.contains("\"ras_corrected\""));
        }
    }

    /// Checkpoint/restore is byte-identical across the page-policy ×
    /// scheduler matrix, and the snapshot actually carries live state.
    #[test]
    fn checkpoint_restore_equivalent_across_policies() {
        for (i, cfg) in cfg_matrix().into_iter().enumerate() {
            let wl = random_workload(0xC4E0 + i as u64, 150, 1);
            let (summary, snap_len) = assert_checkpoint_equivalent(&cfg, &wl, 75);
            assert!(summary.responses > 0);
            assert!(snap_len > 64, "snapshot suspiciously empty");
        }
    }

    /// Checkpoint/restore equivalence holds with a live fault model: the
    /// restored run continues the per-site fault streams, retry state and
    /// the fault log exactly.
    #[test]
    fn checkpoint_restore_equivalent_with_ras() {
        for seed in [0xC4E1u64, 0xC4E2] {
            let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
            cfg.ras = Some(
                dramctrl_ras::RasConfig::from_error_rate(2e11, seed).with_ecc(EccMode::SecDed),
            );
            let wl = random_workload(seed, 200, 1);
            let (summary, _) = assert_checkpoint_equivalent(&cfg, &wl, 100);
            assert!(summary.responses > 0);
        }
    }

    /// Checkpoint/restore equivalence holds through the power-down /
    /// self-refresh machinery and with QoS classes in play.
    #[test]
    fn checkpoint_restore_equivalent_with_powerdown_and_qos() {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.powerdown_idle = 200_000;
        cfg.selfrefresh_after = 400_000;
        cfg.qos_priorities = vec![0, 1, 3, 7];
        let wl = random_workload(0xC4E3, 150, 4);
        for pause in [1, 40, 149] {
            let (summary, _) = assert_checkpoint_equivalent(&cfg, &wl, pause);
            assert!(summary.responses > 0);
        }
    }

    /// Link errors drive the in-queue retry path: retries are counted, the
    /// run still completes every request, and it stays deterministic.
    #[test]
    fn link_error_retries_complete_and_count() {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        let mut ras = dramctrl_ras::RasConfig::new(0x11E);
        ras.link_error_rate = 0.05;
        cfg.ras = Some(ras);
        let wl = random_workload(0x11E7, 200, 1);
        let run = |cfg: &CtrlConfig| {
            let mut ctrl = DramCtrl::new(cfg.clone()).expect("valid config");
            let mut resp = Vec::new();
            for &(t, req) in &wl {
                ctrl.advance_to(t, &mut resp);
                let _ = ctrl.try_send(req, t);
            }
            let end = ctrl.drain(&mut resp);
            (resp.len(), ctrl.report("ctrl", end))
        };
        let (n1, r1) = run(&cfg);
        let (n2, r2) = run(&cfg);
        assert_eq!(r1.to_json(), r2.to_json(), "retrying run not deterministic");
        // Every accepted request still gets exactly one response.
        let mut plain = cfg.clone();
        plain.ras = None;
        let (n_plain, _) = run(&plain);
        assert_eq!(n1, n_plain, "retries lost or duplicated responses");
        assert_eq!(n1, n2);
        let retries = r1.get("ras_retries").expect("ras_retries in report");
        assert!(retries > 0.0, "no retries exercised");
        let crc = r1.get("ras_crc_errors").unwrap() + r1.get("ras_parity_errors").unwrap();
        assert!(crc > 0.0, "no link errors injected");
    }
}
