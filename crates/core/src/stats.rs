//! Controller statistics (paper Section II-E/II-G).

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::{tick, Tick};
use dramctrl_stats::{Average, Report};

use crate::config::CtrlConfig;

/// Writes an [`Average`] bit-exactly (floats via `to_bits`).
pub(crate) fn save_average(w: &mut SnapWriter, a: &Average) {
    let (sum, count, min, max) = a.to_parts();
    w.f64(sum);
    w.u64(count);
    w.f64(min);
    w.f64(max);
}

/// Reads an [`Average`] written by [`save_average`].
pub(crate) fn read_average(r: &mut SnapReader<'_>) -> Result<Average, SnapError> {
    let sum = r.f64()?;
    let count = r.u64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    Ok(Average::from_parts(sum, count, min, max))
}

/// Time-weighted queue-occupancy accumulator.
#[derive(Debug, Clone, Default)]
pub(crate) struct QueueOcc {
    integral: u128,
    last_change: Tick,
    len: usize,
}

impl QueueOcc {
    /// Accounts for the queue holding `self.len` entries up to `now`, then
    /// records the new length.
    pub fn update(&mut self, new_len: usize, now: Tick) {
        if now >= self.last_change {
            self.integral += (self.len as u128) * u128::from(now - self.last_change);
            self.last_change = now;
        }
        self.len = new_len;
    }

    /// Average occupancy over `[0, max(now, last update)]`.
    ///
    /// The integral already covers time up to the last update, so a `now`
    /// that lags behind it (out-of-order queries) must not shrink the
    /// divisor — that would overstate the average.
    pub fn average(&self, now: Tick) -> f64 {
        let end = now.max(self.last_change);
        if end == 0 {
            return self.len as f64;
        }
        let integral =
            self.integral + (self.len as u128) * u128::from(now.saturating_sub(self.last_change));
        integral as f64 / end as f64
    }
}

impl SnapState for QueueOcc {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u128(self.integral);
        w.u64(self.last_change);
        w.usize(self.len);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.integral = r.u128()?;
        self.last_change = r.u64()?;
        self.len = r.usize()?;
        Ok(())
    }
}

/// Counters and distributions accumulated by a [`DramCtrl`](crate::DramCtrl).
///
/// Latency components are recorded per *read burst*:
/// `queue` (entry to scheduling decision), `bank` (decision to first data
/// beat, covering PRE/ACT/CAS and bus waiting), plus the constant bus
/// (`t_burst`) and static (front+backend) portions — the breakdown shown
/// in paper Figure 9.
#[derive(Debug, Clone, Default)]
pub struct CtrlStats {
    /// Read requests accepted (before chopping).
    pub reads_accepted: u64,
    /// Write requests accepted (before chopping).
    pub writes_accepted: u64,
    /// Read bursts serviced by the DRAM.
    pub rd_bursts: u64,
    /// Write bursts serviced by the DRAM.
    pub wr_bursts: u64,
    /// Bytes read from the DRAM.
    pub bytes_read: u64,
    /// Bytes written to the DRAM.
    pub bytes_written: u64,
    /// Read bursts that hit an open row.
    pub rd_row_hits: u64,
    /// Write bursts that hit an open row.
    pub wr_row_hits: u64,
    /// Row activations.
    pub activates: u64,
    /// Precharges (explicit and auto).
    pub precharges: u64,
    /// Refresh operations.
    pub refreshes: u64,
    /// Writes merged into an existing write-queue entry.
    pub merged_writes: u64,
    /// Read bursts serviced from the write queue.
    pub forwarded_reads: u64,
    /// Read-to-write or write-to-read bus turnarounds.
    pub bus_turnarounds: u64,
    /// Precharge power-down episodes entered.
    pub powerdowns: u64,
    /// Self-refresh descents.
    pub self_refreshes: u64,
    /// Internal events processed (the event-based model's unit of work —
    /// contrast with the cycle model's `cycles_simulated`).
    pub events_processed: u64,
    /// Accumulated data-bus busy time.
    pub bus_busy: Tick,
    /// Per-read-burst queueing latency (ticks).
    pub queue_lat: Average,
    /// Per-read-burst bank-access latency (ticks).
    pub bank_lat: Average,
    /// Per-read-burst total latency inside the controller (ticks).
    pub total_lat: Average,
    pub(crate) rdq_occ: QueueOcc,
    pub(crate) wrq_occ: QueueOcc,
}

impl CtrlStats {
    /// Row-hit rate over all serviced bursts (0.0 when nothing serviced).
    pub fn page_hit_rate(&self) -> f64 {
        let bursts = self.rd_bursts + self.wr_bursts;
        if bursts == 0 {
            0.0
        } else {
            (self.rd_row_hits + self.wr_row_hits) as f64 / bursts as f64
        }
    }

    /// Data-bus utilisation over `[0, now]`.
    pub fn bus_utilisation(&self, now: Tick) -> f64 {
        if now == 0 {
            0.0
        } else {
            self.bus_busy as f64 / now as f64
        }
    }

    /// Average achieved bandwidth in GB/s over `[0, now]`.
    pub fn bandwidth_gbps(&self, now: Tick) -> f64 {
        if now == 0 {
            0.0
        } else {
            (self.bytes_read + self.bytes_written) as f64 / tick::to_s(now) / 1e9
        }
    }

    /// Builds a gem5-style report of all statistics at time `now`.
    pub fn report(&self, prefix: &str, now: Tick, cfg: &CtrlConfig) -> Report {
        let mut r = Report::new(prefix);
        r.text("device", cfg.spec.name);
        r.counter("reads_accepted", self.reads_accepted);
        r.counter("writes_accepted", self.writes_accepted);
        r.counter("rd_bursts", self.rd_bursts);
        r.counter("wr_bursts", self.wr_bursts);
        r.counter("bytes_read", self.bytes_read);
        r.counter("bytes_written", self.bytes_written);
        r.counter("rd_row_hits", self.rd_row_hits);
        r.counter("wr_row_hits", self.wr_row_hits);
        r.counter("activates", self.activates);
        r.counter("precharges", self.precharges);
        r.counter("refreshes", self.refreshes);
        r.counter("merged_writes", self.merged_writes);
        r.counter("forwarded_reads", self.forwarded_reads);
        r.counter("bus_turnarounds", self.bus_turnarounds);
        r.counter("powerdowns", self.powerdowns);
        r.counter("self_refreshes", self.self_refreshes);
        r.counter("events_processed", self.events_processed);
        r.scalar("page_hit_rate", self.page_hit_rate());
        r.scalar("bus_util", self.bus_utilisation(now));
        r.scalar("bandwidth_gbps", self.bandwidth_gbps(now));
        r.scalar(
            "avg_queue_lat_ns",
            tick::to_ns(self.queue_lat.mean() as Tick),
        );
        r.scalar("avg_bank_lat_ns", tick::to_ns(self.bank_lat.mean() as Tick));
        r.scalar(
            "avg_read_lat_ns",
            tick::to_ns(self.total_lat.mean() as Tick),
        );
        r.scalar("avg_rdq_occupancy", self.rdq_occ.average(now));
        r.scalar("avg_wrq_occupancy", self.wrq_occ.average(now));
        r
    }
}

impl SnapState for CtrlStats {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.reads_accepted);
        w.u64(self.writes_accepted);
        w.u64(self.rd_bursts);
        w.u64(self.wr_bursts);
        w.u64(self.bytes_read);
        w.u64(self.bytes_written);
        w.u64(self.rd_row_hits);
        w.u64(self.wr_row_hits);
        w.u64(self.activates);
        w.u64(self.precharges);
        w.u64(self.refreshes);
        w.u64(self.merged_writes);
        w.u64(self.forwarded_reads);
        w.u64(self.bus_turnarounds);
        w.u64(self.powerdowns);
        w.u64(self.self_refreshes);
        w.u64(self.events_processed);
        w.u64(self.bus_busy);
        save_average(w, &self.queue_lat);
        save_average(w, &self.bank_lat);
        save_average(w, &self.total_lat);
        self.rdq_occ.save_state(w);
        self.wrq_occ.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reads_accepted = r.u64()?;
        self.writes_accepted = r.u64()?;
        self.rd_bursts = r.u64()?;
        self.wr_bursts = r.u64()?;
        self.bytes_read = r.u64()?;
        self.bytes_written = r.u64()?;
        self.rd_row_hits = r.u64()?;
        self.wr_row_hits = r.u64()?;
        self.activates = r.u64()?;
        self.precharges = r.u64()?;
        self.refreshes = r.u64()?;
        self.merged_writes = r.u64()?;
        self.forwarded_reads = r.u64()?;
        self.bus_turnarounds = r.u64()?;
        self.powerdowns = r.u64()?;
        self.self_refreshes = r.u64()?;
        self.events_processed = r.u64()?;
        self.bus_busy = r.u64()?;
        self.queue_lat = read_average(r)?;
        self.bank_lat = read_average(r)?;
        self.total_lat = read_average(r)?;
        self.rdq_occ.restore_state(r)?;
        self.wrq_occ.restore_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_time_weighting() {
        let mut occ = QueueOcc::default();
        occ.update(2, 0); // empty over [0,0), then 2 entries
        occ.update(4, 100); // 2 entries over [0,100)
        occ.update(0, 200); // 4 entries over [100,200)
                            // average over [0,200]: (2*100 + 4*100) / 200 = 3
        assert_eq!(occ.average(200), 3.0);
        // extending the window with an empty queue dilutes the average
        assert_eq!(occ.average(400), 1.5);
    }

    #[test]
    fn occupancy_at_time_zero() {
        let mut occ = QueueOcc::default();
        occ.update(5, 0);
        assert_eq!(occ.average(0), 5.0);
    }

    #[test]
    fn occupancy_same_tick_update_replaces_without_double_count() {
        let mut occ = QueueOcc::default();
        occ.update(3, 100); // 0 entries over [0,100)
        occ.update(7, 100); // same tick: zero-width span, len replaced
        occ.update(7, 200); // 7 entries over [100,200)
        assert_eq!(occ.average(200), 3.5);
    }

    #[test]
    fn occupancy_query_behind_last_update_does_not_overstate() {
        let mut occ = QueueOcc::default();
        occ.update(4, 0);
        occ.update(0, 1_000); // integral now covers [0,1000)
                              // Querying at an earlier tick must use the
                              // integrated window, not divide by the stale
                              // `now`: 4*1000 / 1000, not 4*1000 / 10.
        assert_eq!(occ.average(10), 4.0);
        assert_eq!(occ.average(1_000), 4.0);
    }

    #[test]
    fn occupancy_out_of_order_update_is_sane() {
        let mut occ = QueueOcc::default();
        occ.update(2, 1_000); // 0 entries over [0,1000)
        occ.update(6, 500); // earlier tick: no negative span, len applies
                            // from the last in-order change
        occ.update(6, 1_000); // zero-width; still 6 from tick 1000 on
        occ.update(0, 2_000); // 6 entries over [1000,2000)
        assert_eq!(occ.average(2_000), 3.0);
    }

    #[test]
    fn occupancy_zero_query_after_updates_uses_integrated_window() {
        let mut occ = QueueOcc::default();
        occ.update(8, 0);
        occ.update(0, 400); // 8 entries over [0,400)
        assert_eq!(occ.average(0), 8.0);
    }

    #[test]
    fn page_hit_rate_empty_is_zero() {
        let s = CtrlStats::default();
        assert_eq!(s.page_hit_rate(), 0.0);
        assert_eq!(s.bus_utilisation(0), 0.0);
        assert_eq!(s.bandwidth_gbps(0), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = CtrlStats {
            rd_bursts: 8,
            wr_bursts: 2,
            rd_row_hits: 4,
            wr_row_hits: 1,
            bytes_read: 640,
            bus_busy: 500,
            ..Default::default()
        };
        assert_eq!(s.page_hit_rate(), 0.5);
        assert_eq!(s.bus_utilisation(1_000), 0.5);
        // 640 bytes in 1000 ps = 640 GB/s.
        assert!((s.bandwidth_gbps(1_000) - 640.0).abs() < 1e-9);
    }
}
