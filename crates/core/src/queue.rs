//! DRAM packets and queue helpers: burst chopping, write merging and read
//! forwarding (paper Section II-A).
//!
//! A system-level [`MemRequest`](dramctrl_mem::MemRequest) may be smaller or
//! larger than a DRAM burst (e.g. a 64-byte cache line on a 32-byte-burst
//! LPDDR3 channel). The controller chops each request into per-burst
//! [`DramPacket`]s and merges/forwards at burst granularity, leaving the
//! rest of the memory system oblivious to the DRAM burst size.

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{snapio, DramAddr, MemRequest};

/// One DRAM burst's worth of a memory request, as held in the controller's
/// read or write queue.
#[derive(Debug, Clone)]
pub(crate) struct DramPacket {
    /// Whether this packet reads (true) or writes.
    pub is_read: bool,
    /// Burst-aligned base address.
    pub burst_addr: u64,
    /// Covered byte range within the burst, relative to `burst_addr`.
    pub lo: u32,
    /// Exclusive end of the covered range.
    pub hi: u32,
    /// Decoded rank/bank/row/column.
    pub da: DramAddr,
    /// Tick at which the packet entered the queue.
    pub entry_time: Tick,
    /// QoS priority inherited from the source port (higher = sooner).
    pub priority: u8,
    /// Index of the burst group this read belongs to (reads only).
    pub group: Option<usize>,
    /// Queue-local arrival sequence number, stamped on enqueue. Strictly
    /// increasing within a queue, so it encodes FCFS age independently of
    /// where the packet is stored.
    pub seq: u64,
    /// Link-error retry attempts already made for this burst (RAS; always
    /// 0 without a fault model).
    pub retries: u8,
}

/// Writes a queued packet's fields.
pub(crate) fn save_packet(w: &mut SnapWriter, pkt: &DramPacket) {
    w.bool(pkt.is_read);
    w.u64(pkt.burst_addr);
    w.u32(pkt.lo);
    w.u32(pkt.hi);
    snapio::save_addr(w, &pkt.da);
    w.u64(pkt.entry_time);
    w.u8(pkt.priority);
    w.opt_u64(pkt.group.map(|g| g as u64));
    w.u64(pkt.seq);
    w.u8(pkt.retries);
}

/// Reads a packet written by [`save_packet`].
pub(crate) fn read_packet(r: &mut SnapReader<'_>) -> Result<DramPacket, SnapError> {
    Ok(DramPacket {
        is_read: r.bool()?,
        burst_addr: r.u64()?,
        lo: r.u32()?,
        hi: r.u32()?,
        da: snapio::read_addr(r)?,
        entry_time: r.u64()?,
        priority: r.u8()?,
        group: r.opt_u64()?.map(|g| g as usize),
        seq: r.u64()?,
        retries: r.u8()?,
    })
}

/// Tracks the outstanding bursts of a chopped read so the response is only
/// sent once the last burst completes.
#[derive(Debug, Clone)]
pub(crate) struct BurstGroup {
    /// The request awaiting a response.
    pub req: MemRequest,
    /// Bursts not yet serviced.
    pub remaining: u32,
    /// Latest ready time over the serviced bursts.
    pub ready_at: Tick,
}

/// An arena of [`BurstGroup`]s with slot reuse.
#[derive(Debug, Default)]
pub(crate) struct GroupArena {
    slots: Vec<Option<BurstGroup>>,
    free: Vec<usize>,
}

impl GroupArena {
    /// Creates an arena pre-sized for `capacity` live groups.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    pub fn insert(&mut self, group: BurstGroup) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = Some(group);
            idx
        } else {
            self.slots.push(Some(group));
            self.slots.len() - 1
        }
    }

    pub fn get(&self, idx: usize) -> &BurstGroup {
        self.slots[idx].as_ref().expect("stale group index")
    }

    pub fn get_mut(&mut self, idx: usize) -> &mut BurstGroup {
        self.slots[idx].as_mut().expect("stale group index")
    }

    pub fn remove(&mut self, idx: usize) -> BurstGroup {
        let g = self.slots[idx].take().expect("stale group index");
        self.free.push(idx);
        g
    }

    /// Drops every group and the free list, keeping both allocations.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }

    #[cfg(test)]
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Writes the arena: slot contents *and* the free list, so restored
    /// slot indices (held by queued packets and in-flight events) and the
    /// slot-reuse order stay exactly as checkpointed.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(g) => {
                    w.bool(true);
                    snapio::save_request(w, &g.req);
                    w.u32(g.remaining);
                    w.u64(g.ready_at);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.free.len());
        for &f in &self.free {
            w.usize(f);
        }
    }

    /// Restores an arena written by [`save_state`](Self::save_state).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n_slots = r.usize()?;
        self.slots.clear();
        for _ in 0..n_slots {
            if r.bool()? {
                self.slots.push(Some(BurstGroup {
                    req: snapio::read_request(r)?,
                    remaining: r.u32()?,
                    ready_at: r.u64()?,
                }));
            } else {
                self.slots.push(None);
            }
        }
        let n_free = r.usize()?;
        self.free.clear();
        for _ in 0..n_free {
            let f = r.usize()?;
            if self.slots.get(f).map_or(true, Option::is_some) {
                return Err(SnapError::Corrupt(format!("free-list entry {f} not free")));
            }
            self.free.push(f);
        }
        let empty = self.slots.iter().filter(|s| s.is_none()).count();
        if empty != self.free.len() {
            return Err(SnapError::Corrupt(format!(
                "{empty} empty slots but {} free-list entries",
                self.free.len()
            )));
        }
        Ok(())
    }
}

/// Splits `[addr, addr + size)` into per-burst pieces.
///
/// Yields `(burst_addr, lo, hi)` where `burst_addr` is burst-aligned and
/// `[lo, hi)` is the covered byte range relative to `burst_addr`.
pub(crate) fn chop(
    addr: u64,
    size: u32,
    burst_bytes: u64,
) -> impl Iterator<Item = (u64, u32, u32)> {
    let end = addr + u64::from(size);
    let first = addr / burst_bytes * burst_bytes;
    (0..)
        .map(move |i| first + i * burst_bytes)
        .take_while(move |&b| b < end)
        .map(move |b| {
            let lo = addr.max(b) - b;
            let hi = end.min(b + burst_bytes) - b;
            (b, lo as u32, hi as u32)
        })
}

/// Number of bursts `[addr, addr + size)` spans.
pub(crate) fn burst_count(addr: u64, size: u32, burst_bytes: u64) -> usize {
    let end = addr + u64::from(size);
    let first = addr / burst_bytes;
    let last = end.div_ceil(burst_bytes);
    (last - first) as usize
}

/// Whether an existing write packet fully covers `[lo, hi)` of the same
/// burst — the condition for merging an incoming write (it is subsumed) or
/// forwarding a read from the write queue.
///
/// Only the reference model scans packets for coverage; the indexed
/// controller asks the [`WriteCoverage`](dramctrl_mem::WriteCoverage)
/// multiset instead.
#[cfg(any(test, feature = "ref-model"))]
pub(crate) fn covers(pkt: &DramPacket, burst_addr: u64, lo: u32, hi: u32) -> bool {
    !pkt.is_read && pkt.burst_addr == burst_addr && pkt.lo <= lo && pkt.hi >= hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_mem::{MemCmd, ReqId};

    fn wpkt(burst_addr: u64, lo: u32, hi: u32) -> DramPacket {
        DramPacket {
            is_read: false,
            burst_addr,
            lo,
            hi,
            da: DramAddr {
                rank: 0,
                bank: 0,
                row: 0,
                col: 0,
            },
            entry_time: 0,
            priority: 0,
            group: None,
            seq: 0,
            retries: 0,
        }
    }

    #[test]
    fn chop_aligned_single_burst() {
        let pieces: Vec<_> = chop(128, 64, 64).collect();
        assert_eq!(pieces, vec![(128, 0, 64)]);
        assert_eq!(burst_count(128, 64, 64), 1);
    }

    #[test]
    fn chop_cache_line_into_lpddr_bursts() {
        // 64-byte line on a 32-byte-burst channel: two full bursts.
        let pieces: Vec<_> = chop(256, 64, 32).collect();
        assert_eq!(pieces, vec![(256, 0, 32), (288, 0, 32)]);
        assert_eq!(burst_count(256, 64, 32), 2);
    }

    #[test]
    fn chop_unaligned_partial_bursts() {
        // 16 bytes starting 8 before a burst boundary.
        let pieces: Vec<_> = chop(56, 16, 64).collect();
        assert_eq!(pieces, vec![(0, 56, 64), (64, 0, 8)]);
        assert_eq!(burst_count(56, 16, 64), 2);
    }

    #[test]
    fn chop_small_write_within_burst() {
        let pieces: Vec<_> = chop(100, 4, 64).collect();
        assert_eq!(pieces, vec![(64, 36, 40)]);
    }

    #[test]
    fn chop_pieces_reassemble_request() {
        for (addr, size, burst) in [(0u64, 256u32, 64u64), (7, 100, 32), (63, 2, 64)] {
            let pieces: Vec<_> = chop(addr, size, burst).collect();
            let total: u32 = pieces.iter().map(|&(_, lo, hi)| hi - lo).sum();
            assert_eq!(total, size);
            // Pieces are contiguous and ordered.
            let mut expected = addr;
            for &(b, lo, hi) in &pieces {
                assert_eq!(b + u64::from(lo), expected);
                expected = b + u64::from(hi);
            }
        }
    }

    #[test]
    fn covers_requires_write_same_burst_and_subsumption() {
        let w = wpkt(64, 8, 40);
        assert!(covers(&w, 64, 8, 40));
        assert!(covers(&w, 64, 10, 20));
        assert!(!covers(&w, 64, 0, 40), "starts before the write");
        assert!(!covers(&w, 64, 8, 48), "ends after the write");
        assert!(!covers(&w, 128, 8, 40), "different burst");
        let mut r = wpkt(64, 0, 64);
        r.is_read = true;
        assert!(!covers(&r, 64, 8, 40), "reads never cover");
    }

    #[test]
    fn arena_reuses_slots() {
        let mut arena = GroupArena::default();
        let g = |n| BurstGroup {
            req: MemRequest::read(ReqId(n), 0, 64),
            remaining: 1,
            ready_at: 0,
        };
        let a = arena.insert(g(1));
        let b = arena.insert(g(2));
        assert_ne!(a, b);
        arena.remove(a);
        assert_eq!(arena.live(), 1);
        let c = arena.insert(g(3));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(arena.get_mut(c).req.id, ReqId(3));
        assert_eq!(arena.get_mut(b).req.cmd, MemCmd::Read);
    }

    #[test]
    #[should_panic(expected = "stale group index")]
    fn arena_rejects_stale_index() {
        let mut arena = GroupArena::default();
        let idx = arena.insert(BurstGroup {
            req: MemRequest::read(ReqId(0), 0, 64),
            remaining: 1,
            ready_at: 0,
        });
        arena.remove(idx);
        let _ = arena.get_mut(idx);
    }
}
