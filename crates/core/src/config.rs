//! Controller configuration (paper Table I).

use dramctrl_kernel::Tick;
use dramctrl_mem::{AddrMapping, MemSpec};
use dramctrl_ras::RasConfig;
use std::fmt;

/// Row-buffer management policy (paper Section II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagePolicy {
    /// Leave a row open until a bank conflict forces it closed.
    #[default]
    Open,
    /// Like [`PagePolicy::Open`], but close the row eagerly when queued
    /// accesses target a different row in the same bank and none target the
    /// open row.
    OpenAdaptive,
    /// Auto-precharge after every column access.
    Closed,
    /// Like [`PagePolicy::Closed`], but keep the row open when accesses to
    /// it are already queued.
    ClosedAdaptive,
}

impl PagePolicy {
    /// Whether this is one of the open-page variants.
    pub fn is_open(self) -> bool {
        matches!(self, PagePolicy::Open | PagePolicy::OpenAdaptive)
    }
}

impl fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PagePolicy::Open => "open",
            PagePolicy::OpenAdaptive => "open_adaptive",
            PagePolicy::Closed => "closed",
            PagePolicy::ClosedAdaptive => "closed_adaptive",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for PagePolicy {
    type Err = String;

    /// Parses a policy name; round-trips [`Display`](fmt::Display) and
    /// also accepts the CLI's dashed spellings.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "open" => Ok(PagePolicy::Open),
            "open_adaptive" | "open-adaptive" => Ok(PagePolicy::OpenAdaptive),
            "closed" => Ok(PagePolicy::Closed),
            "closed_adaptive" | "closed-adaptive" => Ok(PagePolicy::ClosedAdaptive),
            other => Err(format!(
                "unknown page policy '{other}' (open, open-adaptive, closed, closed-adaptive)"
            )),
        }
    }
}

/// Request scheduling policy (paper Section II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// First come, first served (included for comparison).
    Fcfs,
    /// First ready, first come first served: prioritise row hits, then the
    /// first request whose bank is available soonest.
    #[default]
    FrFcfs,
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::FrFcfs => "frfcfs",
        })
    }
}

impl std::str::FromStr for SchedPolicy {
    type Err = String;

    /// Parses a scheduler name; round-trips [`Display`](fmt::Display).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(SchedPolicy::Fcfs),
            "frfcfs" | "fr-fcfs" => Ok(SchedPolicy::FrFcfs),
            other => Err(format!("unknown scheduler '{other}' (fcfs, frfcfs)")),
        }
    }
}

/// Full configuration of one controller instance — the parameters of
/// paper Table I plus the device specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlConfig {
    /// The DRAM device behind this controller.
    pub spec: MemSpec,
    /// Read queue entries (in DRAM bursts).
    pub read_buffer_size: usize,
    /// Write queue entries (in DRAM bursts).
    pub write_buffer_size: usize,
    /// Write-queue fill fraction above which the controller forcefully
    /// switches to draining writes (paper: "high water mark").
    pub write_high_thresh: f64,
    /// Write-queue fill fraction at which draining starts when no reads are
    /// pending (paper: "low water mark").
    pub write_low_thresh: f64,
    /// Minimum number of writes issued per drain episode.
    pub min_writes_per_switch: usize,
    /// Request scheduling policy.
    pub scheduling: SchedPolicy,
    /// Address decoding scheme.
    pub mapping: AddrMapping,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Static pipeline latency of the controller frontend.
    pub frontend_latency: Tick,
    /// Static PHY/IO latency of the controller backend.
    pub backend_latency: Tick,
    /// Forced row close after this many accesses (0 = unlimited); a
    /// starvation guard for open-page policies.
    pub max_accesses_per_row: u32,
    /// Number of channels interleaved by the upstream crossbar (used to
    /// skip channel bits during address decode).
    pub channels: u32,
    /// Enter precharge power-down after the controller has been idle this
    /// long (0 disables power-down). An extension beyond the paper, which
    /// lists low-power states as future work; exit costs `t_xp`.
    pub powerdown_idle: Tick,
    /// Descend from power-down into self-refresh after this much
    /// additional time powered down (0 disables self-refresh). While in
    /// self-refresh the DRAM refreshes itself — external refreshes are
    /// suppressed — and exit costs `t_xs`.
    pub selfrefresh_after: Tick,
    /// Per-source QoS priorities, indexed by `MemRequest::source` (paper
    /// Section II-C: scheduling respects the requestors' QoS
    /// requirements). Higher is more important; sources beyond the end of
    /// the vector get priority 0. Empty disables QoS (all traffic equal).
    pub qos_priorities: Vec<u8>,
    /// Reliability model: fault injection, ECC and recovery
    /// (`dramctrl-ras`). `None` — the default — compiles and runs
    /// byte-identically to a build without any RAS support (asserted by the
    /// differential harness).
    pub ras: Option<RasConfig>,
}

impl CtrlConfig {
    /// A configuration with the paper's defaults for the given device:
    /// 32-entry read queue, 64-entry write queue, 70%/50% watermarks,
    /// 16 writes per switch, FR-FCFS, `RoRaBaCoCh`, open page, zero static
    /// latencies, single channel.
    pub fn new(spec: MemSpec) -> Self {
        Self {
            spec,
            read_buffer_size: 32,
            write_buffer_size: 64,
            write_high_thresh: 0.7,
            write_low_thresh: 0.5,
            min_writes_per_switch: 16,
            scheduling: SchedPolicy::FrFcfs,
            mapping: AddrMapping::RoRaBaCoCh,
            page_policy: PagePolicy::Open,
            frontend_latency: 0,
            backend_latency: 0,
            max_accesses_per_row: 0,
            channels: 1,
            powerdown_idle: 0,
            selfrefresh_after: 0,
            qos_priorities: Vec::new(),
            ras: None,
        }
    }

    /// The QoS priority of a source port.
    pub fn priority_of(&self, source: u16) -> u8 {
        self.qos_priorities
            .get(usize::from(source))
            .copied()
            .unwrap_or(0)
    }

    /// Write-queue entry count corresponding to the high watermark.
    pub fn write_high_entries(&self) -> usize {
        ((self.write_buffer_size as f64) * self.write_high_thresh).ceil() as usize
    }

    /// Write-queue entry count corresponding to the low watermark.
    pub fn write_low_entries(&self) -> usize {
        ((self.write_buffer_size as f64) * self.write_low_thresh).ceil() as usize
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] if the device spec is invalid, a queue is
    /// empty, the watermarks are outside `(0, 1]` or inverted, or the
    /// channel count is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.spec
            .validate()
            .map_err(|e| ConfigError(e.to_string()))?;
        if self.read_buffer_size == 0 || self.write_buffer_size == 0 {
            return Err(ConfigError("queues must have at least one entry".into()));
        }
        for (name, v) in [
            ("write_high_thresh", self.write_high_thresh),
            ("write_low_thresh", self.write_low_thresh),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(ConfigError(format!("{name} must be in (0, 1], got {v}")));
            }
        }
        if self.write_low_thresh > self.write_high_thresh {
            return Err(ConfigError(
                "write_low_thresh must not exceed write_high_thresh".into(),
            ));
        }
        if self.min_writes_per_switch == 0 {
            return Err(ConfigError("min_writes_per_switch must be positive".into()));
        }
        if self.channels == 0 {
            return Err(ConfigError("channels must be positive".into()));
        }
        if self.selfrefresh_after > 0 && self.powerdown_idle == 0 {
            return Err(ConfigError(
                "selfrefresh_after requires powerdown_idle".into(),
            ));
        }
        if let Some(ras) = &self.ras {
            ras.validate().map_err(|e| ConfigError(e.to_string()))?;
        }
        Ok(())
    }
}

/// Invalid controller configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub(crate) String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid controller config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_mem::presets;

    #[test]
    fn defaults_are_valid() {
        CtrlConfig::new(presets::ddr3_1333_x64())
            .validate()
            .unwrap();
        for spec in presets::all() {
            CtrlConfig::new(spec).validate().unwrap();
        }
    }

    #[test]
    fn watermark_entries() {
        let mut c = CtrlConfig::new(presets::ddr3_1333_x64());
        c.write_buffer_size = 20;
        c.write_high_thresh = 0.7;
        c.write_low_thresh = 0.5;
        assert_eq!(c.write_high_entries(), 14);
        assert_eq!(c.write_low_entries(), 10);
    }

    #[test]
    fn rejects_inverted_watermarks() {
        let mut c = CtrlConfig::new(presets::ddr3_1333_x64());
        c.write_high_thresh = 0.4;
        c.write_low_thresh = 0.6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_queue() {
        let mut c = CtrlConfig::new(presets::ddr3_1333_x64());
        c.read_buffer_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_out_of_range_thresholds() {
        let mut c = CtrlConfig::new(presets::ddr3_1333_x64());
        c.write_high_thresh = 1.5;
        assert!(c.validate().is_err());
        c.write_high_thresh = 0.7;
        c.write_low_thresh = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(PagePolicy::OpenAdaptive.to_string(), "open_adaptive");
        assert_eq!(SchedPolicy::FrFcfs.to_string(), "frfcfs");
        assert!(PagePolicy::Open.is_open());
        assert!(!PagePolicy::ClosedAdaptive.is_open());
    }
}
