//! The event-based DRAM controller (the paper's contribution, Section II).

use std::fmt;

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::{EventQueue, SimStall, Tick};
use dramctrl_mem::{snapio, ActivityStats, MemCmd, MemRequest, MemResponse};
use dramctrl_obs::{CmdEvent, DramCmd, NoProbe, PowerState, Probe, RasMark};
use dramctrl_ras::{BurstOutcome, FaultModel, RasGeometry};

use crate::bank::Rank;
use crate::config::{ConfigError, CtrlConfig, PagePolicy, SchedPolicy};
#[cfg(any(test, feature = "ref-model"))]
use crate::queue::covers;
use crate::queue::{burst_count, chop, BurstGroup, DramPacket, GroupArena};
use crate::sched::SchedQueue;
use crate::stats::CtrlStats;

/// Why a request was rejected by [`DramCtrl::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The read queue cannot hold all bursts of the request; retry once
    /// responses have drained.
    ReadQueueFull,
    /// The write queue cannot hold all bursts of the request; retry once
    /// writes have drained.
    WriteQueueFull,
    /// The request spans more bursts than the queue can ever hold.
    TooLarge {
        /// Bursts required by the request.
        bursts: usize,
        /// Queue capacity in bursts.
        capacity: usize,
    },
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::ReadQueueFull => write!(f, "read queue full"),
            SendError::WriteQueueFull => write!(f, "write queue full"),
            SendError::TooLarge { bursts, capacity } => {
                write!(f, "request needs {bursts} bursts, queue holds {capacity}")
            }
        }
    }
}

impl std::error::Error for SendError {}

/// Internal controller events: the model only executes at these points
/// (paper Section II-D).
#[derive(Debug)]
enum Ev {
    /// Consider issuing the next request from the read or write queue.
    NextReq,
    /// Deliver a response (read completion, early write ack, forwarded
    /// read) to the master.
    Ack(MemResponse),
    /// A rank's refresh interval elapsed.
    Refresh(u32),
    /// Idle long enough? Consider entering precharge power-down.
    PowerDownCheck,
    /// Powered down long enough? Consider descending into self-refresh.
    SelfRefreshCheck,
    /// Re-enqueue a burst whose transfer hit a link error (RAS retry,
    /// carrying the packet through its backoff delay).
    Retry(DramPacket),
}

impl Ev {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Ev::NextReq => w.u8(0),
            Ev::Ack(resp) => {
                w.u8(1);
                snapio::save_response(w, resp);
            }
            Ev::Refresh(rank) => {
                w.u8(2);
                w.u32(*rank);
            }
            Ev::PowerDownCheck => w.u8(3),
            Ev::SelfRefreshCheck => w.u8(4),
            Ev::Retry(pkt) => {
                w.u8(5);
                crate::queue::save_packet(w, pkt);
            }
        }
    }

    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Ev::NextReq,
            1 => Ev::Ack(snapio::read_response(r)?),
            2 => Ev::Refresh(r.u32()?),
            3 => Ev::PowerDownCheck,
            4 => Ev::SelfRefreshCheck,
            5 => Ev::Retry(crate::queue::read_packet(r)?),
            t => return Err(SnapError::Corrupt(format!("controller event tag {t}"))),
        })
    }
}

/// Data-bus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusState {
    Read,
    Write,
}

/// The event-based DRAM controller model.
///
/// The controller owns split read and write queues, per-bank timing state
/// and a private event queue; it is driven from the outside through a pull
/// interface:
///
/// 1. [`try_send`](Self::try_send) — offer a request (flow control via
///    [`SendError`]);
/// 2. [`next_event`](Self::next_event) — the tick of the controller's next
///    internal event, letting the harness skip ahead;
/// 3. [`advance_to`](Self::advance_to) — execute all events up to a tick,
///    collecting responses.
///
/// All calls must use non-decreasing `now` values.
///
/// The `P` type parameter is an instrumentation hook (see `dramctrl-obs`):
/// the default [`NoProbe`] compiles every probe call away, so an
/// uninstrumented controller is exactly the controller before
/// instrumentation existed. [`with_probe`](Self::with_probe) attaches a
/// live sink; probes observe and never influence, so a traced run is
/// byte-identical to an untraced one (asserted by
/// [`diff::assert_probe_transparent`](crate::diff)).
///
/// # Example
///
/// ```
/// use dramctrl::{CtrlConfig, DramCtrl};
/// use dramctrl_mem::{presets, MemRequest, ReqId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctrl = DramCtrl::new(CtrlConfig::new(presets::ddr3_1333_x64()))?;
/// ctrl.try_send(MemRequest::read(ReqId(0), 0x80, 64), 0)?;
/// let mut responses = Vec::new();
/// ctrl.drain(&mut responses);
/// assert_eq!(responses.len(), 1);
/// // Idle bank: tRCD + tCL + tBURST = 13.5 + 13.5 + 6 ns.
/// assert_eq!(responses[0].ready_at, 33_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DramCtrl<P: Probe = NoProbe> {
    cfg: CtrlConfig,
    probe: P,
    events: EventQueue<Ev>,
    read_q: SchedQueue,
    write_q: SchedQueue,
    groups: GroupArena,
    /// Answer scheduling questions with the original linear queue scans
    /// instead of the indices (see [`Self::new_reference`]).
    #[cfg(any(test, feature = "ref-model"))]
    use_reference: bool,
    ranks: Vec<Rank>,
    bus_state: BusState,
    /// Direction of the most recent data burst (for turnaround timing).
    last_burst_read: Option<bool>,
    bus_busy_until: Tick,
    writes_this_switch: usize,
    next_req_scheduled: bool,
    draining: bool,
    /// Write drain forced by an imminent power-down entry.
    pd_drain: bool,
    pd_check_scheduled: bool,
    last_activity: Tick,
    stats: CtrlStats,
    /// Fault injection / ECC / recovery state (`None` without RAS — the
    /// hot paths then short-circuit to exactly the fault-free code).
    fault: Option<FaultModel>,
}

/// The fault model a configuration's RAS section implies (`None` without
/// RAS). Shared by construction and [`DramCtrl::reset`], which must seed
/// identically.
fn fault_for(cfg: &CtrlConfig) -> Option<FaultModel> {
    let org = &cfg.spec.org;
    cfg.ras.clone().map(|ras| {
        FaultModel::new(
            ras,
            RasGeometry {
                ranks: org.ranks,
                banks: org.banks,
                row_bytes: org.row_buffer_bytes(),
                rank_bytes: org.capacity_bytes() / u64::from(org.ranks),
            },
        )
    })
}

impl DramCtrl {
    /// Creates an uninstrumented controller for the given configuration.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] if the configuration is inconsistent (see
    /// [`CtrlConfig::validate`]).
    pub fn new(cfg: CtrlConfig) -> Result<Self, ConfigError> {
        Self::with_probe(cfg, NoProbe)
    }

    /// Returns the controller to its just-constructed state while keeping
    /// its allocations (event heap, queue arenas, group arena) — the
    /// per-worker reuse path for campaigns of short jobs, where rebuilding
    /// these structures would otherwise dominate sub-millisecond runs.
    ///
    /// Behaviour after `reset` is byte-identical to a fresh
    /// [`new`](Self::new) with the same configuration: every piece of
    /// mutable state is returned to its constructed value, the refresh
    /// events are re-scheduled, and the fault model (if any) is re-seeded
    /// from the configuration. The watchdog is disarmed — re-arm it with
    /// [`set_tick_budget`](Self::set_tick_budget) if needed. Only offered
    /// on uninstrumented controllers; a probe's recordings are not
    /// rewindable.
    pub fn reset(&mut self) {
        for r in &mut self.ranks {
            *r = Rank::new(self.cfg.spec.org.banks, self.cfg.spec.timing.t_refi);
        }
        self.events.reset();
        for (i, r) in self.ranks.iter().enumerate() {
            if r.refresh_due != Tick::MAX {
                self.events.schedule(r.refresh_due, Ev::Refresh(i as u32));
            }
        }
        self.read_q.reset();
        self.write_q.reset();
        self.groups.clear();
        self.bus_state = BusState::Read;
        self.last_burst_read = None;
        self.bus_busy_until = 0;
        self.writes_this_switch = 0;
        self.next_req_scheduled = false;
        self.draining = false;
        self.pd_drain = false;
        self.pd_check_scheduled = false;
        self.last_activity = 0;
        self.stats = CtrlStats::default();
        self.fault = fault_for(&self.cfg);
    }

    /// Creates a controller that schedules with the original linear queue
    /// scans instead of the incremental indices.
    ///
    /// Behaviourally identical to [`new`](Self::new) — the differential
    /// harness in [`diff`](crate::diff) asserts byte-identical responses
    /// and reports — but O(queue depth) per decision. Kept as the
    /// reference model for equivalence tests and before/after
    /// benchmarking; only available with the `ref-model` feature.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    #[cfg(any(test, feature = "ref-model"))]
    pub fn new_reference(cfg: CtrlConfig) -> Result<Self, ConfigError> {
        let mut ctrl = Self::new(cfg)?;
        ctrl.use_reference = true;
        Ok(ctrl)
    }
}

impl<P: Probe> DramCtrl<P> {
    /// Creates a controller with an attached instrumentation probe (see
    /// the type-level docs for the zero-perturbation contract).
    ///
    /// # Errors
    /// Returns a [`ConfigError`] if the configuration is inconsistent (see
    /// [`CtrlConfig::validate`]).
    pub fn with_probe(cfg: CtrlConfig, probe: P) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let ranks = (0..cfg.spec.org.ranks)
            .map(|_| Rank::new(cfg.spec.org.banks, cfg.spec.timing.t_refi))
            .collect::<Vec<_>>();
        // Pending events are bounded by one ack per queued request, one
        // refresh per rank and a few singletons (NextReq, the power-down
        // checks) — pre-size so the hot path never grows the heap.
        let mut events = EventQueue::with_capacity(
            cfg.read_buffer_size + cfg.write_buffer_size + ranks.len() + 4,
        );
        for (i, r) in ranks.iter().enumerate() {
            if r.refresh_due != Tick::MAX {
                events.schedule(r.refresh_due, Ev::Refresh(i as u32));
            }
        }
        let org = &cfg.spec.org;
        let read_q = SchedQueue::new(org.ranks, org.banks, cfg.read_buffer_size);
        let write_q = SchedQueue::new(org.ranks, org.banks, cfg.write_buffer_size);
        let groups = GroupArena::with_capacity(cfg.read_buffer_size);
        let fault = fault_for(&cfg);
        Ok(Self {
            cfg,
            probe,
            events,
            read_q,
            write_q,
            groups,
            #[cfg(any(test, feature = "ref-model"))]
            use_reference: false,
            ranks,
            bus_state: BusState::Read,
            last_burst_read: None,
            bus_busy_until: 0,
            writes_this_switch: 0,
            next_req_scheduled: false,
            draining: false,
            pd_drain: false,
            pd_check_scheduled: false,
            last_activity: 0,
            stats: CtrlStats::default(),
            fault,
        })
    }

    /// The controller's configuration.
    pub fn config(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// The attached instrumentation probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the probe (e.g. to close an epoch recorder).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the controller, returning the probe and its recordings.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// The fault model, when the configuration enables RAS.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// Arms (or disarms) the kernel watchdog's tick budget: once simulated
    /// time passes `budget`, [`check_stall`](Self::check_stall) reports a
    /// [`SimStall`].
    pub fn set_tick_budget(&mut self, budget: Option<Tick>) {
        self.events.set_tick_budget(budget);
    }

    /// Runs the kernel no-progress watchdog: queued bursts with no pending
    /// event, or an exceeded tick budget, yield a [`SimStall`] carrying a
    /// controller state summary. Cheap enough to call every drain
    /// iteration.
    ///
    /// # Errors
    /// Returns the diagnosed [`SimStall`] so drivers can fail loudly
    /// instead of hanging.
    pub fn check_stall(&self) -> Result<(), SimStall> {
        let outstanding = self.read_q.len() + self.write_q.len();
        self.events.check_progress(outstanding, || {
            format!(
                "read_q={} write_q={} bus_state={:?} bus_busy_until={} draining={} \
                 last_activity={}",
                self.read_q.len(),
                self.write_q.len(),
                self.bus_state,
                self.bus_busy_until,
                self.draining,
                self.last_activity,
            )
        })
    }

    /// Whether a request of `cmd`/`addr`/`size` would currently be
    /// accepted.
    pub fn can_accept(&self, cmd: MemCmd, addr: u64, size: u32) -> bool {
        self.admission_check(cmd, addr, size).is_ok()
    }

    /// Flow-control decision for a request: `Ok` if the target queue can
    /// hold every burst the request chops into. Shared by
    /// [`can_accept`](Self::can_accept) and [`try_send`](Self::try_send)
    /// so the two can never disagree.
    fn admission_check(&self, cmd: MemCmd, addr: u64, size: u32) -> Result<(), SendError> {
        let n = burst_count(addr, size, self.cfg.spec.org.burst_bytes());
        let (len, capacity, full) = match cmd {
            MemCmd::Read => (
                self.read_q.len(),
                self.cfg.read_buffer_size,
                SendError::ReadQueueFull,
            ),
            MemCmd::Write => (
                self.write_q.len(),
                self.cfg.write_buffer_size,
                SendError::WriteQueueFull,
            ),
        };
        if n > capacity {
            Err(SendError::TooLarge {
                bursts: n,
                capacity,
            })
        } else if len + n > capacity {
            Err(full)
        } else {
            Ok(())
        }
    }

    /// Whether all queues (and in-flight state) are empty.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty()
    }

    /// Current read-queue depth in bursts.
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Current write-queue depth in bursts.
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// The row currently open in the given bank, for tests and debugging.
    ///
    /// # Panics
    /// Panics if `rank` or `bank` is out of range.
    #[doc(hidden)]
    pub fn open_row(&self, rank: u32, bank: u32) -> Option<u64> {
        self.ranks[rank as usize].banks[bank as usize].open_row
    }

    /// Offers a request to the controller at time `now`.
    ///
    /// Reads snoop the write queue and may be serviced without touching
    /// DRAM; writes receive an early acknowledgement and sub-burst writes
    /// merge into covering queue entries (paper Section II-A). Responses
    /// (including write acks) are delivered through
    /// [`advance_to`](Self::advance_to).
    ///
    /// # Errors
    /// [`SendError::ReadQueueFull`]/[`SendError::WriteQueueFull`] when the
    /// queue lacks space (retry later), [`SendError::TooLarge`] when the
    /// request can never fit.
    ///
    /// # Panics
    /// Panics if `size` is zero or `now` precedes an already-processed
    /// event.
    pub fn try_send(&mut self, req: MemRequest, now: Tick) -> Result<(), SendError> {
        assert!(req.size > 0, "zero-sized request");
        // Arrival side effects happen even for rejected requests: the
        // controller saw activity and must leave power-down to be able to
        // accept the retry.
        self.last_activity = self.last_activity.max(now);
        self.pd_drain = false;
        self.wake_ranks(now);
        self.admission_check(req.cmd, req.addr, req.size)?;
        if P::ENABLED {
            self.probe
                .req_accepted(req.id.0, req.cmd == MemCmd::Read, req.addr, req.size, now);
        }
        match req.cmd {
            MemCmd::Read => {
                self.stats.reads_accepted += 1;
                self.enqueue_read(req, now);
            }
            MemCmd::Write => {
                self.stats.writes_accepted += 1;
                self.enqueue_write(req, now);
            }
        }
        Ok(())
    }

    /// Whether a queued write fully covers `[lo, hi)` of the burst at
    /// `burst_addr` — the write-merging / read-forwarding test (paper
    /// Section II-A). Answered in O(1) from the coverage index; the
    /// reference model keeps the original O(queue depth) scan.
    fn write_queue_covers(&self, burst_addr: u64, lo: u32, hi: u32) -> bool {
        #[cfg(any(test, feature = "ref-model"))]
        if self.use_reference {
            return self
                .write_q
                .iter_packets()
                .any(|w| covers(w, burst_addr, lo, hi));
        }
        self.write_q.write_covers(burst_addr, lo, hi)
    }

    fn enqueue_read(&mut self, req: MemRequest, now: Tick) {
        let org = &self.cfg.spec.org;
        let burst_bytes = org.burst_bytes();
        let gidx = self.groups.insert(BurstGroup {
            req,
            remaining: 0,
            ready_at: 0,
        });
        let mut pending = 0u32;
        for (burst_addr, lo, hi) in chop(req.addr, req.size, burst_bytes) {
            if self.write_queue_covers(burst_addr, lo, hi) {
                self.stats.forwarded_reads += 1;
                continue;
            }
            let mut da = self.cfg.mapping.decode(burst_addr, org, self.cfg.channels);
            if let Some(fm) = &self.fault {
                if fm.offline_mask() != 0 {
                    da.rank = dramctrl_mem::remap_rank(da.rank, fm.offline_mask(), org.ranks);
                }
            }
            self.read_q.push(DramPacket {
                is_read: true,
                burst_addr,
                lo,
                hi,
                da,
                entry_time: now,
                priority: self.cfg.priority_of(req.source),
                group: Some(gidx),
                seq: 0, // stamped by push
                retries: 0,
            });
            pending += 1;
        }
        self.stats.rdq_occ.update(self.read_q.len(), now);
        if P::ENABLED {
            self.probe
                .queue_depth(self.read_q.len(), self.write_q.len(), now);
        }
        if pending == 0 {
            // Entirely serviced from the write queue.
            self.groups.remove(gidx);
            let ready = now + self.cfg.frontend_latency;
            self.events.schedule(
                ready.max(self.events.now()),
                Ev::Ack(MemResponse::to(&req, ready)),
            );
            if P::ENABLED {
                self.probe.req_completed(req.id.0, true, ready);
            }
        } else {
            self.groups.get_mut(gidx).remaining = pending;
            self.schedule_next_req(now);
        }
    }

    fn enqueue_write(&mut self, req: MemRequest, now: Tick) {
        let org = &self.cfg.spec.org;
        let burst_bytes = org.burst_bytes();
        for (burst_addr, lo, hi) in chop(req.addr, req.size, burst_bytes) {
            if self.write_queue_covers(burst_addr, lo, hi) {
                self.stats.merged_writes += 1;
                continue;
            }
            let mut da = self.cfg.mapping.decode(burst_addr, org, self.cfg.channels);
            if let Some(fm) = &self.fault {
                if fm.offline_mask() != 0 {
                    da.rank = dramctrl_mem::remap_rank(da.rank, fm.offline_mask(), org.ranks);
                }
            }
            self.write_q.push(DramPacket {
                is_read: false,
                burst_addr,
                lo,
                hi,
                da,
                entry_time: now,
                priority: self.cfg.priority_of(req.source),
                group: None,
                seq: 0, // stamped by push
                retries: 0,
            });
        }
        self.stats.wrq_occ.update(self.write_q.len(), now);
        if P::ENABLED {
            self.probe
                .queue_depth(self.read_q.len(), self.write_q.len(), now);
        }
        // Early write response (paper Section II-A).
        let ready = now + self.cfg.frontend_latency;
        self.events.schedule(
            ready.max(self.events.now()),
            Ev::Ack(MemResponse::to(&req, ready)),
        );
        if P::ENABLED {
            self.probe.req_completed(req.id.0, false, ready);
        }
        self.schedule_next_req(now);
    }

    /// Schedules the next scheduling decision, paced by the data bus: the
    /// decision fires no earlier than one bank-preparation time
    /// (tRP + tRCD + tCL) before the bus frees. This keeps the controller
    /// from racing arbitrarily far ahead of simulated time when masters
    /// inject faster than the DRAM can serve — decisions, refreshes and
    /// arrivals stay causally interleaved, while bank preparation still
    /// overlaps the in-flight data transfer.
    fn schedule_next_req(&mut self, at: Tick) {
        if !self.next_req_scheduled {
            let t = &self.cfg.spec.timing;
            let prep = t.t_rp + t.t_rcd + t.t_cl;
            let at = at
                .max(self.bus_busy_until.saturating_sub(prep))
                .max(self.events.now());
            self.events.schedule(at, Ev::NextReq);
            self.next_req_scheduled = true;
        }
    }

    /// The tick of the controller's next internal event, if any.
    pub fn next_event(&self) -> Option<Tick> {
        self.events.peek_tick()
    }

    /// Executes all internal events up to and including `limit`, appending
    /// any responses that become ready to `out`.
    pub fn advance_to(&mut self, limit: Tick, out: &mut Vec<MemResponse>) {
        while let Some((t, ev)) = self.events.pop_until(limit) {
            self.stats.events_processed += 1;
            match ev {
                Ev::NextReq => {
                    self.next_req_scheduled = false;
                    self.process_next_req(t);
                }
                Ev::Ack(resp) => out.push(resp),
                Ev::Refresh(rank) => self.process_refresh(rank as usize, t),
                Ev::PowerDownCheck => {
                    self.pd_check_scheduled = false;
                    self.process_pd_check(t);
                }
                Ev::SelfRefreshCheck => self.process_sr_check(t),
                Ev::Retry(pkt) => self.process_retry(pkt, t),
            }
        }
    }

    /// Drains all queued requests (ignoring the write low watermark),
    /// returning the tick at which the controller went idle. Responses are
    /// appended to `out`.
    ///
    /// Refresh events recur forever, so draining stops once the queues are
    /// empty and only the per-rank refresh events remain pending.
    pub fn drain(&mut self, out: &mut Vec<MemResponse>) -> Tick {
        self.draining = true;
        self.schedule_next_req(self.events.now());
        // Each rank perpetually reschedules its own refresh, so the number
        // of pending refresh events is invariant after construction —
        // hoist it out of the drain loop.
        let refresh_events = self.refresh_event_count();
        loop {
            if self.is_idle() && self.events.len() == refresh_events {
                break;
            }
            let Some(t) = self.next_event() else { break };
            self.advance_to(t, out);
        }
        self.draining = false;
        self.events.now()
    }

    fn refresh_event_count(&self) -> usize {
        self.ranks
            .iter()
            .filter(|r| r.refresh_due != Tick::MAX)
            .count()
    }

    // ------------------------------------------------------------------
    // Event processing
    // ------------------------------------------------------------------

    fn process_next_req(&mut self, now: Tick) {
        // First level of scheduling: bus direction (paper Section II-C).
        match self.bus_state {
            BusState::Read => {
                if self.read_q.is_empty() {
                    let threshold = if self.draining || self.pd_drain {
                        1
                    } else {
                        self.cfg.write_low_entries().max(1)
                    };
                    if self.write_q.len() >= threshold {
                        self.bus_state = BusState::Write;
                        self.writes_this_switch = 0;
                    } else {
                        // Idle: keep writes on chip; maybe power down.
                        self.maybe_schedule_pd_check(now);
                        return;
                    }
                } else if self.write_q.len() >= self.cfg.write_high_entries() {
                    // Forced switch at the high watermark.
                    self.bus_state = BusState::Write;
                    self.writes_this_switch = 0;
                }
            }
            BusState::Write => {
                if self.write_q.is_empty() {
                    self.bus_state = BusState::Read;
                    if self.read_q.is_empty() {
                        self.maybe_schedule_pd_check(now);
                        return;
                    }
                }
            }
        }

        // Second level: pick a request from the active queue. The chosen
        // slot is recycled by `take` in O(1) — no queue compaction.
        let is_read = self.bus_state == BusState::Read;
        let slot = self.choose_next(is_read, now);
        let pkt = if is_read {
            self.read_q.take(slot)
        } else {
            self.write_q.take(slot)
        };
        if is_read {
            self.stats.rdq_occ.update(self.read_q.len(), now);
        } else {
            self.stats.wrq_occ.update(self.write_q.len(), now);
        }
        if P::ENABLED {
            self.probe
                .queue_depth(self.read_q.len(), self.write_q.len(), now);
        }

        let (data_start, data_end) = self.do_access(&pkt, now);

        // RAS: classify the burst against the fault model; a link error
        // (write CRC / CA parity) re-enqueues the packet after a bounded
        // exponential backoff instead of completing it.
        if self.fault.is_some() && self.ras_check(&pkt, data_end) {
            let mut pkt = pkt;
            let attempt = pkt.retries;
            pkt.retries += 1;
            pkt.priority = u8::MAX; // retried bursts are served first
            let fm = self.fault.as_mut().expect("checked above");
            fm.note_retry();
            let delay = fm.retry_delay(u32::from(attempt));
            if P::ENABLED {
                self.probe.ras_event(
                    pkt.da.rank,
                    pkt.da.bank,
                    pkt.da.row,
                    RasMark::Retry,
                    data_end,
                );
            }
            // The bus was consumed even though the data is discarded, so
            // the write-switch accounting below must still run for writes;
            // read completion is what the retry defers.
            if !pkt.is_read {
                self.writes_this_switch += 1;
                let switch_back = self.write_q.is_empty()
                    || (!self.read_q.is_empty()
                        && self.writes_this_switch >= self.cfg.min_writes_per_switch)
                    || (self.read_q.is_empty()
                        && !self.draining
                        && !self.pd_drain
                        && self.write_q.len() < self.cfg.write_low_entries());
                if switch_back {
                    self.bus_state = BusState::Read;
                }
            }
            self.events
                .schedule((data_end + delay).max(self.events.now()), Ev::Retry(pkt));
            if !self.read_q.is_empty() || !self.write_q.is_empty() {
                self.schedule_next_req(now);
            }
            return;
        }

        if pkt.is_read {
            let ready = data_end + self.cfg.frontend_latency + self.cfg.backend_latency;
            self.stats.queue_lat.record((now - pkt.entry_time) as f64);
            self.stats.bank_lat.record((data_start - now) as f64);
            self.stats.total_lat.record((ready - pkt.entry_time) as f64);
            let gidx = pkt.group.expect("read packets carry a group");
            let group = self.groups.get_mut(gidx);
            group.remaining -= 1;
            group.ready_at = group.ready_at.max(ready);
            if group.remaining == 0 {
                let group = self.groups.remove(gidx);
                self.events.schedule(
                    group.ready_at,
                    Ev::Ack(MemResponse::to(&group.req, group.ready_at)),
                );
                if P::ENABLED {
                    self.probe
                        .req_completed(group.req.id.0, true, group.ready_at);
                }
            }
        } else {
            self.writes_this_switch += 1;
            // Switch back to reads? (paper: minimum writes per switch,
            // unless the queue empties or, absent reads, the low watermark
            // is reached.)
            let switch_back = self.write_q.is_empty()
                || (!self.read_q.is_empty()
                    && self.writes_this_switch >= self.cfg.min_writes_per_switch)
                || (self.read_q.is_empty()
                    && !self.draining
                    && !self.pd_drain
                    && self.write_q.len() < self.cfg.write_low_entries());
            if switch_back {
                self.bus_state = BusState::Read;
            }
        }

        // Schedule the next scheduling decision (paced by the bus inside
        // `schedule_next_req`).
        if !self.read_q.is_empty() || !self.write_q.is_empty() {
            self.schedule_next_req(now);
        } else {
            self.maybe_schedule_pd_check(now);
        }
    }

    // ------------------------------------------------------------------
    // RAS (fault injection, ECC, retry and degradation; `dramctrl-ras`)
    // ------------------------------------------------------------------

    /// Runs the fault model on a just-transferred burst. Counts and marks
    /// every outcome; returns `true` when the burst hit a link error with
    /// retry budget left, telling the caller to re-enqueue it.
    fn ras_check(&mut self, pkt: &DramPacket, data_end: Tick) -> bool {
        let fm = self.fault.as_mut().expect("caller checked fault.is_some()");
        let rep = fm.check(pkt.da.rank, pkt.da.bank, pkt.da.row, pkt.is_read, data_end);
        let max_retries = fm.max_retries();
        let mut retry = false;
        let mark = match rep.outcome {
            BurstOutcome::Clean => None,
            BurstOutcome::Corrected => Some(RasMark::Corrected),
            BurstOutcome::Uncorrected => Some(RasMark::Uncorrected),
            BurstOutcome::Silent => Some(RasMark::Silent),
            BurstOutcome::LinkError => {
                if u32::from(pkt.retries) < max_retries {
                    retry = true;
                    None // the caller emits the Retry mark
                } else {
                    fm.note_retry_exhausted();
                    Some(RasMark::Uncorrected)
                }
            }
        };
        if P::ENABLED {
            if let Some(mark) = mark {
                self.probe
                    .ras_event(pkt.da.rank, pkt.da.bank, pkt.da.row, mark, data_end);
            }
            if rep.remapped {
                self.probe.ras_event(
                    pkt.da.rank,
                    pkt.da.bank,
                    pkt.da.row,
                    RasMark::Remap,
                    data_end,
                );
            }
            if let Some(r) = rep.offlined_rank {
                self.probe
                    .ras_event(r, 0, 0, RasMark::RankOffline, data_end);
            }
        }
        retry
    }

    /// Returns a retried packet to its queue at elevated priority once the
    /// backoff delay has elapsed.
    fn process_retry(&mut self, pkt: DramPacket, now: Tick) {
        self.last_activity = self.last_activity.max(now);
        self.pd_drain = false;
        self.wake_ranks(now);
        if pkt.is_read {
            self.read_q.push(pkt);
            self.stats.rdq_occ.update(self.read_q.len(), now);
        } else {
            self.write_q.push(pkt);
            self.stats.wrq_occ.update(self.write_q.len(), now);
        }
        if P::ENABLED {
            self.probe
                .queue_depth(self.read_q.len(), self.write_q.len(), now);
        }
        self.schedule_next_req(now);
    }

    // ------------------------------------------------------------------
    // Power-down (extension beyond the paper; see CtrlConfig::powerdown_idle)
    // ------------------------------------------------------------------

    /// Arms a power-down check for one idle period from now (or from the
    /// end of the in-flight data transfer, whichever is later).
    fn maybe_schedule_pd_check(&mut self, now: Tick) {
        // Armed when no reads are pending; parked writes are drained by the
        // check itself before entering power-down.
        if self.cfg.powerdown_idle == 0
            || self.pd_check_scheduled
            || self.ranks.iter().all(|r| r.powered_down)
            || !self.read_q.is_empty()
        {
            return;
        }
        let at = now.max(self.bus_busy_until).max(self.last_activity) + self.cfg.powerdown_idle;
        self.events
            .schedule(at.max(self.events.now()), Ev::PowerDownCheck);
        self.pd_check_scheduled = true;
    }

    /// Enters precharge power-down on every rank if the controller has
    /// stayed idle for the configured period.
    fn process_pd_check(&mut self, now: Tick) {
        if self.cfg.powerdown_idle == 0 || !self.read_q.is_empty() {
            return;
        }
        let idle_since = self.last_activity.max(self.bus_busy_until);
        if now < idle_since + self.cfg.powerdown_idle {
            // Activity happened since the check was armed; re-arm.
            self.maybe_schedule_pd_check(now);
            return;
        }
        if !self.write_q.is_empty() {
            // Flush parked writes first; once the queue empties the idle
            // path re-arms this check and power-down follows.
            self.pd_drain = true;
            self.schedule_next_req(now);
            return;
        }
        self.pd_drain = false;
        let t = self.cfg.spec.timing;
        for ri in 0..self.ranks.len() {
            if self.ranks[ri].powered_down {
                continue;
            }
            // All banks must be precharged before entering power-down.
            let mut entry = now;
            let banks = self.ranks[ri].banks.len();
            for bi in 0..banks {
                let bank = &mut self.ranks[ri].banks[bi];
                if bank.open_row.is_some() {
                    let pre_at = bank.pre_allowed_at.max(now);
                    bank.open_row = None;
                    bank.act_allowed_at = bank.act_allowed_at.max(pre_at + t.t_rp);
                    entry = entry.max(pre_at + t.t_rp);
                    self.ranks[ri].timeline.close_at(pre_at);
                    self.stats.precharges += 1;
                    if P::ENABLED {
                        self.probe
                            .dram_cmd(CmdEvent::pre(ri as u32, bi as u32, pre_at, t.t_rp));
                    }
                    let fb = self.read_q.flat_bank(ri as u32, bi as u32);
                    self.read_q.set_open_row(fb, None);
                    self.write_q.set_open_row(fb, None);
                }
            }
            let rank = &mut self.ranks[ri];
            rank.powered_down = true;
            rank.self_refreshing = false;
            rank.pd_since = entry;
            self.stats.powerdowns += 1;
            if P::ENABLED {
                self.probe
                    .power_state(ri as u32, PowerState::PoweredDown, entry);
            }
        }
        if self.cfg.selfrefresh_after > 0 {
            let latest_entry = self
                .ranks
                .iter()
                .filter(|r| r.powered_down)
                .map(|r| r.pd_since)
                .max()
                .unwrap_or(now);
            self.events.schedule(
                (latest_entry + self.cfg.selfrefresh_after).max(self.events.now()),
                Ev::SelfRefreshCheck,
            );
        }
    }

    /// Descends still-powered-down ranks into self-refresh once they have
    /// been powered down for `selfrefresh_after`.
    fn process_sr_check(&mut self, now: Tick) {
        for (i, rank) in self.ranks.iter_mut().enumerate() {
            if rank.powered_down
                && !rank.self_refreshing
                && now >= rank.pd_since + self.cfg.selfrefresh_after
            {
                // Close the power-down chapter, open the self-refresh one.
                rank.pd_time += now - rank.pd_since;
                rank.self_refreshing = true;
                rank.pd_since = now;
                self.stats.self_refreshes += 1;
                if P::ENABLED {
                    self.probe
                        .power_state(i as u32, PowerState::SelfRefresh, now);
                }
            }
        }
    }

    /// Exits power-down on all ranks (new work arrived); the first command
    /// to each rank pays the `t_xp` exit latency.
    fn wake_ranks(&mut self, now: Tick) {
        let t = self.cfg.spec.timing;
        for (i, rank) in self.ranks.iter_mut().enumerate() {
            if !rank.powered_down {
                continue;
            }
            if P::ENABLED {
                self.probe.power_state(i as u32, PowerState::Active, now);
            }
            let exit = if rank.self_refreshing {
                rank.sr_time += now.saturating_sub(rank.pd_since);
                t.t_xs
            } else {
                rank.pd_time += now.saturating_sub(rank.pd_since);
                t.t_xp
            };
            rank.powered_down = false;
            rank.self_refreshing = false;
            rank.next_act_at = rank.next_act_at.max(now + exit);
            for bank in &mut rank.banks {
                bank.act_allowed_at = bank.act_allowed_at.max(now + exit);
            }
        }
    }

    /// FR-FCFS / FCFS selection (paper Section II-C): slot of the packet
    /// in the active queue to serve next.
    ///
    /// Answered from the queue indices instead of scanning packets:
    ///
    /// * the QoS top class and the FCFS pick come from the per-class
    ///   intrusive lists (O(1));
    /// * the FR-FCFS first pass reads the oldest entry of the top class
    ///   from the queue's open-row hit index — maintained incrementally on
    ///   enqueue/dequeue and on every activate/precharge the controller
    ///   announces via `set_open_row` — which is exactly the first hit a
    ///   FIFO scan would find, in O(log hits) with no bank iteration;
    /// * with no eligible hit, `estimate_col_at` is row-independent for
    ///   every remaining packet of a bank (they all miss), so pass two
    ///   evaluates one candidate per *non-empty* bank (bitmask-guided) and
    ///   minimises by (estimate, age) — reproducing the scan's first-wins
    ///   minimum.
    ///
    /// Selection cost is O(log hits + occupied banks), independent of
    /// queue depth and of the device's total bank count.
    fn choose_next(&self, is_read: bool, now: Tick) -> u32 {
        #[cfg(any(test, feature = "ref-model"))]
        if self.use_reference {
            return self.choose_next_reference(is_read, now);
        }
        let queue = if is_read { &self.read_q } else { &self.write_q };
        debug_assert!(!queue.is_empty());
        // QoS first level: only the highest priority class present in the
        // queue competes for the slot (paper Section II-C).
        let top = queue.top_priority().expect("non-empty");
        match self.cfg.scheduling {
            SchedPolicy::Fcfs => queue.first_in_order().expect("non-empty"),
            SchedPolicy::FrFcfs => {
                // First ready: the oldest row hit in the class, answered by
                // the queue's incrementally maintained hit index — no bank
                // iteration, independent of depth and geometry.
                if let Some((_, slot)) = queue.best_row_hit(top) {
                    return slot;
                }
                // No row hits: the packet whose bank can deliver data
                // soonest (first available bank), FCFS on ties. Only banks
                // with queued packets are probed, in ascending flat-bank
                // order (the order the full scan visited them).
                let mut best = None;
                let mut best_at = Tick::MAX;
                let mut best_seq = u64::MAX;
                queue.for_each_nonempty_bank(|b| {
                    let Some((seq, slot)) = queue.bank_candidate(b, top) else {
                        return;
                    };
                    let at = self.estimate_col_at(queue.get(slot), now);
                    if at < best_at || (at == best_at && seq < best_seq) {
                        best_at = at;
                        best_seq = seq;
                        best = Some(slot);
                    }
                });
                best.expect("some candidate in a non-empty queue")
            }
        }
    }

    /// The original linear-scan scheduler, preserved verbatim over a FIFO
    /// view of the queue. The differential harness ([`diff`](crate::diff))
    /// asserts it agrees with [`choose_next`](Self::choose_next) down to
    /// byte-identical simulation outputs.
    #[cfg(any(test, feature = "ref-model"))]
    fn choose_next_reference(&self, is_read: bool, now: Tick) -> u32 {
        let queue = if is_read { &self.read_q } else { &self.write_q };
        let fifo = queue.fifo_packets();
        debug_assert!(!fifo.is_empty());
        let top = fifo
            .iter()
            .map(|(_, p)| p.priority)
            .max()
            .expect("non-empty");
        let eligible = |p: &DramPacket| p.priority == top;
        match self.cfg.scheduling {
            SchedPolicy::Fcfs => {
                fifo.iter()
                    .find(|&&(_, p)| eligible(p))
                    .expect("some packet has the top priority")
                    .0
            }
            SchedPolicy::FrFcfs => {
                // First ready: prefer the oldest row hit in the class.
                for &(slot, pkt) in &fifo {
                    if !eligible(pkt) {
                        continue;
                    }
                    let bank = &self.ranks[pkt.da.rank as usize].banks[pkt.da.bank as usize];
                    if bank.open_row == Some(pkt.da.row) {
                        return slot;
                    }
                }
                // No row hits: the packet whose bank can deliver data
                // soonest (first available bank), FCFS on ties.
                let mut best = 0;
                let mut best_at = Tick::MAX;
                for &(slot, pkt) in &fifo {
                    if !eligible(pkt) {
                        continue;
                    }
                    let at = self.estimate_col_at(pkt, now);
                    if at < best_at {
                        best_at = at;
                        best = slot;
                    }
                }
                best
            }
        }
    }

    /// Earliest tick the column command for `pkt` could issue, used by the
    /// FR-FCFS "first available bank" rule.
    fn estimate_col_at(&self, pkt: &DramPacket, now: Tick) -> Tick {
        let t = &self.cfg.spec.timing;
        let rank = &self.ranks[pkt.da.rank as usize];
        let bank = &rank.banks[pkt.da.bank as usize];
        match bank.open_row {
            Some(row) if row == pkt.da.row => bank.col_allowed_at.max(now),
            Some(_) => {
                // Precharge, activate, then the column command.
                let pre_at = bank.pre_allowed_at.max(now);
                let act_at = rank.act_constrained(
                    (pre_at + t.t_rp).max(rank.next_act_at),
                    t.t_xaw,
                    t.activation_limit,
                );
                act_at + t.t_rcd
            }
            None => {
                let act_at = rank.act_constrained(
                    bank.act_allowed_at.max(rank.next_act_at).max(now),
                    t.t_xaw,
                    t.activation_limit,
                );
                act_at + t.t_rcd
            }
        }
    }

    /// Whether any queued packet (either queue) targets `pkt`'s bank with
    /// (`same_row == true`) or without (`same_row == false`) matching its
    /// row — the question the adaptive page policies ask after every
    /// access. Answered in O(1) from the per-bank and per-row occupancy
    /// counters: a matching-row packet exists iff the row count is
    /// non-zero, and an other-row packet exists iff the bank count exceeds
    /// the row count.
    fn queued_to_row(&self, pkt: &DramPacket, same_row: bool) -> bool {
        #[cfg(any(test, feature = "ref-model"))]
        if self.use_reference {
            return self.queued_to_row_reference(pkt, same_row);
        }
        let b = self.read_q.flat_bank(pkt.da.rank, pkt.da.bank);
        let row = self.read_q.row_len(b, pkt.da.row) + self.write_q.row_len(b, pkt.da.row);
        if same_row {
            row > 0
        } else {
            self.read_q.bank_len(b) + self.write_q.bank_len(b) > row
        }
    }

    /// The original both-queue scan for [`queued_to_row`](Self::queued_to_row)
    /// (an existence test, so iteration order is irrelevant).
    #[cfg(any(test, feature = "ref-model"))]
    fn queued_to_row_reference(&self, pkt: &DramPacket, same_row: bool) -> bool {
        self.read_q
            .iter_packets()
            .chain(self.write_q.iter_packets())
            .filter(|p| p.da.rank == pkt.da.rank && p.da.bank == pkt.da.bank)
            .any(|p| (p.da.row == pkt.da.row) == same_row)
    }

    /// Performs the DRAM access for `pkt`: updates bank, rank and bus
    /// timing state and returns the data transfer window.
    fn do_access(&mut self, pkt: &DramPacket, now: Tick) -> (Tick, Tick) {
        let t = self.cfg.spec.timing;
        let (ri, bi) = (pkt.da.rank as usize, pkt.da.bank as usize);

        // Row management: precharge on conflict, activate on miss.
        let open_row = self.ranks[ri].banks[bi].open_row;
        let row_hit = open_row == Some(pkt.da.row);
        if open_row != Some(pkt.da.row) {
            if open_row.is_some() {
                let bank = &mut self.ranks[ri].banks[bi];
                let pre_at = bank.pre_allowed_at.max(now);
                bank.act_allowed_at = bank.act_allowed_at.max(pre_at + t.t_rp);
                bank.open_row = None;
                self.ranks[ri].timeline.close_at(pre_at);
                self.stats.precharges += 1;
                if P::ENABLED {
                    self.probe
                        .dram_cmd(CmdEvent::pre(pkt.da.rank, pkt.da.bank, pre_at, t.t_rp));
                }
            }
            let rank = &self.ranks[ri];
            let earliest = rank.banks[bi].act_allowed_at.max(rank.next_act_at).max(now);
            let act_at = rank.act_constrained(earliest, t.t_xaw, t.activation_limit);
            let rank = &mut self.ranks[ri];
            rank.record_act(act_at, t.t_rrd, t.activation_limit);
            rank.timeline.open_at(act_at);
            let bank = &mut rank.banks[bi];
            bank.open_row = Some(pkt.da.row);
            bank.row_accesses = 0;
            bank.col_allowed_at = bank.col_allowed_at.max(act_at + t.t_rcd);
            bank.pre_allowed_at = bank.pre_allowed_at.max(act_at + t.t_ras);
            self.stats.activates += 1;
            if P::ENABLED {
                self.probe.dram_cmd(CmdEvent::act(
                    pkt.da.rank,
                    pkt.da.bank,
                    pkt.da.row,
                    act_at,
                    t.t_rcd,
                ));
            }
            // One transition covers the conflict precharge + activate:
            // the queues' hit indices track the row now open.
            let fb = self.read_q.flat_bank(pkt.da.rank, pkt.da.bank);
            self.read_q.set_open_row(fb, Some(pkt.da.row));
            self.write_q.set_open_row(fb, Some(pkt.da.row));
        } else if pkt.is_read {
            self.stats.rd_row_hits += 1;
        } else {
            self.stats.wr_row_hits += 1;
        }

        // Column command and data bus (including read/write turnaround).
        let cmd_at = self.ranks[ri].banks[bi].col_allowed_at.max(now);
        let mut data_start = (cmd_at + t.t_cl).max(self.bus_busy_until);
        if let Some(last_read) = self.last_burst_read {
            if last_read != pkt.is_read {
                let gap = if pkt.is_read {
                    t.t_wtr + t.t_cl // end of write data to read data
                } else {
                    t.t_rtw // read-to-write bus bubble
                };
                data_start = data_start.max(self.bus_busy_until + gap);
                self.stats.bus_turnarounds += 1;
            }
        }
        let cmd_at = data_start - t.t_cl;
        let data_end = data_start + t.t_burst;
        self.bus_busy_until = data_end;
        self.last_burst_read = Some(pkt.is_read);
        self.stats.bus_busy += t.t_burst;
        if P::ENABLED {
            let cmd = if pkt.is_read {
                DramCmd::Rd
            } else {
                DramCmd::Wr
            };
            self.probe.dram_cmd(CmdEvent {
                req: pkt.group.map(|g| self.groups.get(g).req.id.0),
                ..CmdEvent::data(
                    cmd,
                    pkt.da.rank,
                    pkt.da.bank,
                    pkt.da.row,
                    data_start,
                    t.t_burst,
                    pkt.hi - pkt.lo,
                    row_hit,
                )
            });
        }

        // Post-access bank bookkeeping.
        let row_accesses = {
            let bank = &mut self.ranks[ri].banks[bi];
            bank.col_allowed_at = bank.col_allowed_at.max(cmd_at + t.t_burst);
            if pkt.is_read {
                bank.pre_allowed_at = bank.pre_allowed_at.max(cmd_at + t.t_rtp);
            } else {
                bank.pre_allowed_at = bank.pre_allowed_at.max(data_end + t.t_wr);
            }
            bank.row_accesses += 1;
            bank.row_accesses
        };
        if pkt.is_read {
            self.stats.rd_bursts += 1;
            self.stats.bytes_read += u64::from(pkt.hi - pkt.lo);
        } else {
            self.stats.wr_bursts += 1;
            self.stats.bytes_written += u64::from(pkt.hi - pkt.lo);
        }

        // Page policy (paper Section II-C).
        let force_close =
            self.cfg.max_accesses_per_row > 0 && row_accesses >= self.cfg.max_accesses_per_row;
        let close = force_close
            || match self.cfg.page_policy {
                PagePolicy::Closed => true,
                PagePolicy::ClosedAdaptive => !self.queued_to_row(pkt, true),
                PagePolicy::Open => false,
                PagePolicy::OpenAdaptive => {
                    self.queued_to_row(pkt, false) && !self.queued_to_row(pkt, true)
                }
            };
        if close {
            let bank = &mut self.ranks[ri].banks[bi];
            let pre_at = bank.pre_allowed_at;
            bank.open_row = None;
            bank.act_allowed_at = bank.act_allowed_at.max(pre_at + t.t_rp);
            self.ranks[ri].timeline.close_at(pre_at);
            self.stats.precharges += 1;
            if P::ENABLED {
                self.probe
                    .dram_cmd(CmdEvent::pre(pkt.da.rank, pkt.da.bank, pre_at, t.t_rp));
            }
            let fb = self.read_q.flat_bank(pkt.da.rank, pkt.da.bank);
            self.read_q.set_open_row(fb, None);
            self.write_q.set_open_row(fb, None);
        }

        // Fold bank open/close deltas that are now in the past.
        self.ranks[ri].timeline.sync(now);

        (data_start, data_end)
    }

    fn process_refresh(&mut self, rank_idx: usize, now: Tick) {
        let t = self.cfg.spec.timing;
        // A rank in self-refresh refreshes itself: the external refresh is
        // suppressed (rescheduled) and costs nothing.
        if self.ranks[rank_idx].self_refreshing {
            let rank = &mut self.ranks[rank_idx];
            rank.refresh_due += t.t_refi;
            let due = rank.refresh_due;
            self.events.schedule(due, Ev::Refresh(rank_idx as u32));
            return;
        }
        // A powered-down rank wakes up (paying t_xp) to refresh.
        let mut start = now;
        if self.ranks[rank_idx].powered_down {
            let rank = &mut self.ranks[rank_idx];
            rank.powered_down = false;
            rank.pd_time += now.saturating_sub(rank.pd_since);
            start = now + t.t_xp;
            if P::ENABLED {
                self.probe
                    .power_state(rank_idx as u32, PowerState::Active, now);
            }
        }
        // All banks must be precharged before REF may issue.
        let banks = self.ranks[rank_idx].banks.len();
        for bi in 0..banks {
            let bank = &mut self.ranks[rank_idx].banks[bi];
            if bank.open_row.is_some() {
                let pre_at = bank.pre_allowed_at.max(now);
                bank.open_row = None;
                start = start.max(pre_at + t.t_rp);
                self.ranks[rank_idx].timeline.close_at(pre_at);
                self.stats.precharges += 1;
                if P::ENABLED {
                    self.probe
                        .dram_cmd(CmdEvent::pre(rank_idx as u32, bi as u32, pre_at, t.t_rp));
                }
                let fb = self.read_q.flat_bank(rank_idx as u32, bi as u32);
                self.read_q.set_open_row(fb, None);
                self.write_q.set_open_row(fb, None);
            } else {
                start = start.max(bank.act_allowed_at);
            }
        }
        let done = start + t.t_rfc;
        let rank = &mut self.ranks[rank_idx];
        rank.refresh_done = done;
        rank.next_act_at = rank.next_act_at.max(done);
        for bank in &mut rank.banks {
            bank.act_allowed_at = bank.act_allowed_at.max(done);
        }
        self.stats.refreshes += 1;
        if P::ENABLED {
            self.probe
                .dram_cmd(CmdEvent::refresh(rank_idx as u32, start, t.t_rfc));
        }
        rank.refresh_due += t.t_refi;
        self.events
            .schedule(rank.refresh_due, Ev::Refresh(rank_idx as u32));
        // An idle controller may re-enter power-down after the refresh.
        self.maybe_schedule_pd_check(done);
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Activity summary for the power model, over `[0, now]`.
    pub fn activity(&mut self, now: Tick) -> ActivityStats {
        let mut time_all_closed = 0;
        let mut time_pd = 0;
        let mut time_sr = 0;
        for rank in &mut self.ranks {
            rank.timeline.sync(now);
            time_all_closed += rank.timeline.time_all_closed();
            let live = now.saturating_sub(rank.pd_since);
            time_pd += rank.pd_time
                + if rank.powered_down && !rank.self_refreshing {
                    live
                } else {
                    0
                };
            time_sr += rank.sr_time + if rank.self_refreshing { live } else { 0 };
        }
        ActivityStats {
            sim_time: now,
            activates: self.stats.activates,
            precharges: self.stats.precharges,
            rd_bursts: self.stats.rd_bursts,
            wr_bursts: self.stats.wr_bursts,
            refreshes: self.stats.refreshes,
            time_all_banks_precharged: time_all_closed,
            time_powered_down: time_pd,
            time_self_refresh: time_sr,
            ranks: self.cfg.spec.org.ranks,
        }
    }

    /// Full statistics report at time `now`. With RAS configured the
    /// report gains the `ras_*` error/retry/degradation counters and the
    /// usable capacity left after rank offlining; without RAS the report
    /// is byte-identical to a build that never heard of faults.
    pub fn report(&self, prefix: &str, now: Tick) -> dramctrl_stats::Report {
        let mut r = self.stats.report(prefix, now, &self.cfg);
        if let Some(fm) = &self.fault {
            for (name, v) in fm.stats().entries() {
                r.counter(name, v);
            }
            r.counter(
                "ras_usable_capacity_bytes",
                dramctrl_mem::degraded_capacity_bytes(&self.cfg.spec.org, fm.offline_mask()),
            );
        }
        r
    }
}

impl<P: Probe> SnapState for DramCtrl<P> {
    // Everything configuration-derived (cfg, probe wiring, queue geometry,
    // the reference-model flag) is rebuilt by constructing the restore
    // target with the same `CtrlConfig`; only dynamic state is captured.
    // The caller guards against config drift with the snapshot fingerprint.
    fn save_state(&self, w: &mut SnapWriter) {
        self.events.save_state(w, |w, ev| ev.save(w));
        self.read_q.save_state(w);
        self.write_q.save_state(w);
        self.groups.save_state(w);
        w.usize(self.ranks.len());
        for rank in &self.ranks {
            rank.save_state(w);
        }
        w.u8(match self.bus_state {
            BusState::Read => 0,
            BusState::Write => 1,
        });
        w.u8(match self.last_burst_read {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        w.u64(self.bus_busy_until);
        w.usize(self.writes_this_switch);
        w.bool(self.next_req_scheduled);
        w.bool(self.draining);
        w.bool(self.pd_drain);
        w.bool(self.pd_check_scheduled);
        w.u64(self.last_activity);
        self.stats.save_state(w);
        match &self.fault {
            Some(fm) => {
                w.bool(true);
                fm.save_state(w);
            }
            None => w.bool(false),
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.events.restore_state(r, Ev::read)?;
        self.read_q.restore_state(r)?;
        self.write_q.restore_state(r)?;
        self.groups.restore_state(r)?;
        let n_ranks = r.usize()?;
        if n_ranks != self.ranks.len() {
            return Err(SnapError::Corrupt(format!(
                "rank count {n_ranks} != device organisation {}",
                self.ranks.len()
            )));
        }
        for rank in &mut self.ranks {
            rank.restore_state(r)?;
        }
        // The queues restore with an all-closed open-row mirror; re-announce
        // the restored banks' open rows so the FR-FCFS hit index is exact.
        for ri in 0..self.ranks.len() {
            for bi in 0..self.ranks[ri].banks.len() {
                let row = self.ranks[ri].banks[bi].open_row;
                let fb = self.read_q.flat_bank(ri as u32, bi as u32);
                self.read_q.set_open_row(fb, row);
                self.write_q.set_open_row(fb, row);
            }
        }
        self.bus_state = match r.u8()? {
            0 => BusState::Read,
            1 => BusState::Write,
            t => return Err(SnapError::Corrupt(format!("bus state tag {t}"))),
        };
        self.last_burst_read = match r.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            t => return Err(SnapError::Corrupt(format!("bus direction tag {t}"))),
        };
        self.bus_busy_until = r.u64()?;
        self.writes_this_switch = r.usize()?;
        self.next_req_scheduled = r.bool()?;
        self.draining = r.bool()?;
        self.pd_drain = r.bool()?;
        self.pd_check_scheduled = r.bool()?;
        self.last_activity = r.u64()?;
        self.stats.restore_state(r)?;
        let has_fault = r.bool()?;
        match (&mut self.fault, has_fault) {
            (Some(fm), true) => fm.restore_state(r)?,
            (None, false) => {}
            _ => {
                return Err(SnapError::Corrupt(
                    "RAS presence differs between snapshot and config".into(),
                ))
            }
        }
        Ok(())
    }
}

impl<P: Probe> dramctrl_mem::Controller for DramCtrl<P> {
    fn try_send(&mut self, req: MemRequest, now: Tick) -> Result<(), dramctrl_mem::Rejected> {
        DramCtrl::try_send(self, req, now).map_err(|e| match e {
            SendError::TooLarge { .. } => dramctrl_mem::Rejected::TooLarge,
            _ => dramctrl_mem::Rejected::Full,
        })
    }

    fn can_accept(&self, cmd: MemCmd, addr: u64, size: u32) -> bool {
        DramCtrl::can_accept(self, cmd, addr, size)
    }

    fn next_event(&self) -> Option<Tick> {
        DramCtrl::next_event(self)
    }

    fn advance_to(&mut self, limit: Tick, out: &mut Vec<MemResponse>) {
        DramCtrl::advance_to(self, limit, out);
    }

    fn drain(&mut self, out: &mut Vec<MemResponse>) -> Tick {
        DramCtrl::drain(self, out)
    }

    fn is_idle(&self) -> bool {
        DramCtrl::is_idle(self)
    }

    fn spec(&self) -> &dramctrl_mem::MemSpec {
        &self.cfg.spec
    }

    fn common_stats(&self) -> dramctrl_mem::CommonStats {
        let s = &self.stats;
        dramctrl_mem::CommonStats {
            reads_accepted: s.reads_accepted,
            writes_accepted: s.writes_accepted,
            rd_bursts: s.rd_bursts,
            wr_bursts: s.wr_bursts,
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            row_hits: s.rd_row_hits + s.wr_row_hits,
            activates: s.activates,
            bus_busy: s.bus_busy,
            read_lat_sum: s.total_lat.sum(),
        }
    }

    fn activity(&mut self, now: Tick) -> ActivityStats {
        DramCtrl::activity(self, now)
    }

    fn report(&self, prefix: &str, now: Tick) -> dramctrl_stats::Report {
        DramCtrl::report(self, prefix, now)
    }
}
