//! Indexed controller queues: incremental data structures that answer the
//! scheduler's hot-path questions without scanning the queue.
//!
//! The original implementation held each queue as a `VecDeque<DramPacket>`
//! and answered every question with a linear scan:
//!
//! * write snooping (merge/forward) scanned the write queue per incoming
//!   burst;
//! * the adaptive page policies scanned *both* queues per serviced burst
//!   (`queued_to_row`);
//! * FR-FCFS scanned the active queue twice per scheduling decision and
//!   removed the winner with an O(n) `VecDeque::remove`.
//!
//! At the deep queues the ROADMAP targets this is O(depth) work per burst
//! — quadratic per simulation. [`SchedQueue`] replaces the scans with
//! indices maintained incrementally on enqueue/dequeue:
//!
//! * a slot arena with free-list reuse (packets never move; removal is
//!   O(1) slot recycling instead of `VecDeque::remove`'s memmove);
//! * a monotonically increasing per-queue *sequence number* stamped on
//!   every packet, so FCFS age survives arbitrary removal order;
//! * per-priority-class intrusive FIFO lists threaded through the slot
//!   arena — sequence numbers are stamped monotonically, so enqueue is a
//!   tail append and dequeue an O(1) unlink, making the FCFS pick and the
//!   QoS top class O(1) with no allocation (this replaced an earlier
//!   `BTreeMap` order index whose node churn dominated deep queues);
//! * `by_bank` — per-(rank, bank) sorted candidate lists plus a bank
//!   occupancy bitmask, so FR-FCFS probes only *non-empty* banks instead
//!   of packets (O(occupied banks) per decision);
//! * `by_row` — per-(rank, bank, row) sorted candidate lists (backed by a
//!   recycled-`Vec` pool so row churn never hits the allocator), so
//!   row-hit detection and the adaptive page policies' `queued_to_row`
//!   are point lookups;
//! * `hits` — an incrementally maintained set of the queued packets whose
//!   target row is *currently open* in their bank, updated on
//!   enqueue/dequeue and on every activate/precharge the controller
//!   reports via [`set_open_row`](SchedQueue::set_open_row). The oldest
//!   row hit of the top QoS class — the FR-FCFS first pass — is one
//!   ordered-set lookup, independent of queue depth and bank count;
//! * a [`WriteCoverage`] multiset for O(1) write snooping.
//!
//! Determinism: the intrusive lists and sorted vectors order by
//! `(priority, seq)`; the hash maps use the fixed-seed hasher from
//! [`dramctrl_kernel::hash`] and are only probed point-wise. No iteration
//! order can differ between runs or leak into scheduling. The scan
//! implementations survive behind `#[cfg(any(test, feature =
//! "ref-model"))]` in `ctrl.rs`, and the differential harness (`diff.rs`)
//! proves both produce byte-identical results.

use std::collections::BTreeSet;

use dramctrl_kernel::hash::DetMap;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapWriter};
use dramctrl_mem::WriteCoverage;

use crate::queue::{read_packet, save_packet, DramPacket};

/// Sort key of a queued packet: QoS-descending, then age-ascending.
///
/// `255 - priority` makes the natural ascending order of sorted vectors
/// and ordered sets yield the highest-priority, oldest packet first.
#[inline]
fn order_key(pkt: &DramPacket) -> (u8, u64) {
    (255 - pkt.priority, pkt.seq)
}

/// Sentinel for "no slot" in the intrusive per-class lists.
const NIL: u32 = u32::MAX;

/// Intrusive FIFO links of one queued packet within its priority class.
#[derive(Debug, Clone, Copy)]
struct Link {
    prev: u32,
    next: u32,
}

/// A sorted candidate list for one bank (or one row of one bank):
/// `(255 - priority, seq, slot)` triples in ascending order.
///
/// Per-bucket population is small (queue depth spread over banks × rows),
/// so a sorted `Vec` beats a tree: inserts are a short memmove, lookups a
/// binary search, and iteration is cache-friendly.
#[derive(Debug, Default, Clone)]
struct Bucket {
    entries: Vec<(u8, u64, u32)>,
}

impl Bucket {
    fn insert(&mut self, key: (u8, u64), slot: u32) {
        let probe = (key.0, key.1, slot);
        let at = self.entries.partition_point(|&e| e < probe);
        self.entries.insert(at, probe);
    }

    fn remove(&mut self, key: (u8, u64), slot: u32) {
        let probe = (key.0, key.1, slot);
        let at = self.entries.partition_point(|&e| e < probe);
        debug_assert_eq!(self.entries.get(at), Some(&probe), "bucket out of sync");
        self.entries.remove(at);
    }

    /// Oldest entry of exactly the given inverted-priority class.
    fn first_of(&self, inv_prio: u8) -> Option<(u64, u32)> {
        let at = self.entries.partition_point(|&e| e.0 < inv_prio);
        match self.entries.get(at) {
            Some(&(ip, seq, slot)) if ip == inv_prio => Some((seq, slot)),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One controller queue (read or write) with incremental scheduling
/// indices. See the module docs for the structure inventory.
#[derive(Debug)]
pub(crate) struct SchedQueue {
    slots: Vec<Option<DramPacket>>,
    /// Intrusive per-class FIFO links, parallel to `slots`.
    links: Vec<Link>,
    free: Vec<u32>,
    next_seq: u64,
    len: usize,
    banks_per_rank: u32,
    /// Head/tail slot of each priority class's FIFO list (`NIL` if empty).
    class_head: Box<[u32; 256]>,
    class_tail: Box<[u32; 256]>,
    /// Bit `p` set iff priority class `p` has queued packets.
    class_mask: [u64; 4],
    /// Flat bank id → candidates in that bank.
    by_bank: Vec<Bucket>,
    /// Bit `b` set iff flat bank `b` has queued packets.
    bank_mask: Vec<u64>,
    /// (flat bank id, row) → candidates for that row.
    by_row: DetMap<(u32, u64), Bucket>,
    /// Emptied row buckets kept for reuse, so steady-state row churn does
    /// not allocate.
    spare_buckets: Vec<Bucket>,
    /// Mirror of each flat bank's open row, driven by
    /// [`set_open_row`](Self::set_open_row).
    open_rows: Vec<Option<u64>>,
    /// `(255 - priority, seq, slot)` of every queued packet whose target
    /// row is currently open in its bank — the FR-FCFS first-pass
    /// candidates, kept consistent on enqueue/dequeue/activate/precharge.
    hits: BTreeSet<(u8, u64, u32)>,
    /// Byte-span coverage of queued writes (empty for the read queue).
    coverage: WriteCoverage,
}

impl SchedQueue {
    /// Creates a queue for a device with `ranks` × `banks_per_rank` banks,
    /// pre-sized for `capacity` packets.
    pub fn new(ranks: u32, banks_per_rank: u32, capacity: usize) -> Self {
        let flat = (ranks * banks_per_rank) as usize;
        Self {
            slots: Vec::with_capacity(capacity),
            links: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            next_seq: 0,
            len: 0,
            banks_per_rank,
            class_head: Box::new([NIL; 256]),
            class_tail: Box::new([NIL; 256]),
            class_mask: [0; 4],
            by_bank: vec![Bucket::default(); flat],
            bank_mask: vec![0; flat.div_ceil(64)],
            by_row: DetMap::default(),
            spare_buckets: Vec::new(),
            open_rows: vec![None; flat],
            hits: BTreeSet::new(),
            coverage: WriteCoverage::default(),
        }
    }

    /// Clears every slot and derived index while keeping the allocations
    /// (slot arena, links, bank buckets, masks). Shared by
    /// [`reset`](Self::reset) and [`restore_state`](Self::restore_state),
    /// which must agree on what "empty" means.
    fn clear_to_empty(&mut self) {
        self.slots.clear();
        self.links.clear();
        self.free.clear();
        self.len = 0;
        *self.class_head = [NIL; 256];
        *self.class_tail = [NIL; 256];
        self.class_mask = [0; 4];
        for bucket in &mut self.by_bank {
            bucket.entries.clear();
        }
        for word in &mut self.bank_mask {
            *word = 0;
        }
        self.by_row.clear();
        self.open_rows.fill(None);
        self.hits.clear();
        self.coverage = WriteCoverage::default();
    }

    /// Returns the queue to its just-constructed state — byte-identical
    /// behaviour to a fresh [`new`](Self::new) with the same geometry —
    /// while keeping its allocations, so a worker thread can run many
    /// short jobs without rebuilding the arena each time.
    pub fn reset(&mut self) {
        self.clear_to_empty();
        self.next_seq = 0;
    }

    /// Flat bank id of a packet's (rank, bank).
    #[inline]
    pub fn flat_bank(&self, rank: u32, bank: u32) -> u32 {
        rank * self.banks_per_rank + bank
    }

    /// Number of queued packets (the queue depth in bursts).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `slot` to its priority class's FIFO list. Sequence numbers
    /// are stamped monotonically, so a tail append keeps the list
    /// age-sorted.
    #[inline]
    fn list_push_back(&mut self, prio: u8, slot: u32) {
        let p = prio as usize;
        let tail = self.class_tail[p];
        self.links[slot as usize] = Link {
            prev: tail,
            next: NIL,
        };
        if tail == NIL {
            self.class_head[p] = slot;
            self.class_mask[p >> 6] |= 1 << (p & 63);
        } else {
            self.links[tail as usize].next = slot;
        }
        self.class_tail[p] = slot;
    }

    /// Unlinks `slot` from its priority class's FIFO list in O(1).
    #[inline]
    fn list_unlink(&mut self, prio: u8, slot: u32) {
        let p = prio as usize;
        let Link { prev, next } = self.links[slot as usize];
        if prev == NIL {
            self.class_head[p] = next;
        } else {
            self.links[prev as usize].next = next;
        }
        if next == NIL {
            self.class_tail[p] = prev;
        } else {
            self.links[next as usize].prev = prev;
        }
        if self.class_head[p] == NIL {
            self.class_mask[p >> 6] &= !(1 << (p & 63));
        }
    }

    /// Enqueues `pkt`, stamping its sequence number; returns its slot.
    pub fn push(&mut self, mut pkt: DramPacket) -> u32 {
        pkt.seq = self.next_seq;
        self.next_seq += 1;
        let key = order_key(&pkt);
        let b = self.flat_bank(pkt.da.rank, pkt.da.bank);
        let row = pkt.da.row;
        let prio = pkt.priority;
        if !pkt.is_read {
            self.coverage.insert(pkt.burst_addr, pkt.lo, pkt.hi);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(pkt);
                s
            }
            None => {
                self.slots.push(Some(pkt));
                self.links.push(Link {
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.list_push_back(prio, slot);
        let bank_bucket = &mut self.by_bank[b as usize];
        if bank_bucket.entries.is_empty() {
            self.bank_mask[(b >> 6) as usize] |= 1 << (b & 63);
        }
        bank_bucket.insert(key, slot);
        match self.by_row.entry((b, row)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.spare_buckets.pop().unwrap_or_default())
            }
        }
        .insert(key, slot);
        if self.open_rows[b as usize] == Some(row) {
            self.hits.insert((key.0, key.1, slot));
        }
        self.len += 1;
        slot
    }

    /// The packet in `slot`.
    ///
    /// # Panics
    /// Panics on a stale slot.
    pub fn get(&self, slot: u32) -> &DramPacket {
        self.slots[slot as usize].as_ref().expect("stale slot")
    }

    /// Removes and returns the packet in `slot`, updating every index.
    pub fn take(&mut self, slot: u32) -> DramPacket {
        let pkt = self.slots[slot as usize].take().expect("stale slot");
        self.free.push(slot);
        let key = order_key(&pkt);
        let b = self.flat_bank(pkt.da.rank, pkt.da.bank);
        self.list_unlink(pkt.priority, slot);
        let bank_bucket = &mut self.by_bank[b as usize];
        bank_bucket.remove(key, slot);
        if bank_bucket.entries.is_empty() {
            self.bank_mask[(b >> 6) as usize] &= !(1 << (b & 63));
        }
        let bucket = self
            .by_row
            .get_mut(&(b, pkt.da.row))
            .expect("row bucket for queued packet");
        bucket.remove(key, slot);
        if bucket.len() == 0 {
            let bucket = self
                .by_row
                .remove(&(b, pkt.da.row))
                .expect("bucket looked up above");
            self.spare_buckets.push(bucket);
        }
        if self.open_rows[b as usize] == Some(pkt.da.row) {
            self.hits.remove(&(key.0, key.1, slot));
        }
        if !pkt.is_read {
            self.coverage.remove(pkt.burst_addr, pkt.lo, pkt.hi);
        }
        self.len -= 1;
        pkt
    }

    /// Highest QoS priority present in the queue.
    pub fn top_priority(&self) -> Option<u8> {
        for (w, &word) in self.class_mask.iter().enumerate().rev() {
            if word != 0 {
                return Some((w as u8) * 64 + (63 - word.leading_zeros() as u8));
            }
        }
        None
    }

    /// Slot of the oldest packet of the highest priority class (the FCFS
    /// pick).
    pub fn first_in_order(&self) -> Option<u32> {
        self.top_priority()
            .map(|p| self.class_head[p as usize])
            .filter(|&s| s != NIL)
    }

    /// Records that flat bank `b`'s open row changed (activate, precharge
    /// or refresh/power-down closure): packets queued to the previously
    /// open row leave the hit set, packets queued to the newly open row
    /// join it. The controller calls this on every row transition, which
    /// is what keeps [`best_row_hit`](Self::best_row_hit) depth- and
    /// bank-count-independent.
    pub fn set_open_row(&mut self, b: u32, row: Option<u64>) {
        let old = self.open_rows[b as usize];
        if old == row {
            return;
        }
        if let Some(r) = old {
            if let Some(bucket) = self.by_row.get(&(b, r)) {
                for e in &bucket.entries {
                    self.hits.remove(e);
                }
            }
        }
        self.open_rows[b as usize] = row;
        if let Some(r) = row {
            if let Some(bucket) = self.by_row.get(&(b, r)) {
                for e in &bucket.entries {
                    self.hits.insert(*e);
                }
            }
        }
    }

    /// Oldest `(seq, slot)` of priority `prio` whose target row is open in
    /// its bank — the FR-FCFS first pass, answered in O(log hits) without
    /// touching the banks.
    pub fn best_row_hit(&self, prio: u8) -> Option<(u64, u32)> {
        let ip = 255 - prio;
        match self.hits.range((ip, 0, 0)..).next() {
            Some(&(p, seq, slot)) if p == ip => Some((seq, slot)),
            _ => None,
        }
    }

    /// Calls `f` for every flat bank with queued packets, in ascending
    /// bank order (the order the miss-pass scan used).
    pub fn for_each_nonempty_bank(&self, mut f: impl FnMut(u32)) {
        for (w, &word) in self.bank_mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                f((w as u32) * 64 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
    }

    /// Oldest `(seq, slot)` of priority `prio` queued to `row` of the flat
    /// bank `b`, if any. Superseded in the scheduler by the incremental
    /// hit index ([`best_row_hit`](Self::best_row_hit)); kept for tests.
    #[cfg(test)]
    pub fn row_candidate(&self, b: u32, row: u64, prio: u8) -> Option<(u64, u32)> {
        self.by_row.get(&(b, row))?.first_of(255 - prio)
    }

    /// Oldest `(seq, slot)` of priority `prio` queued to the flat bank
    /// `b`, if any — the FR-FCFS first-available-bank probe.
    pub fn bank_candidate(&self, b: u32, prio: u8) -> Option<(u64, u32)> {
        self.by_bank[b as usize].first_of(255 - prio)
    }

    /// Packets queued to the flat bank `b` (any row, any priority).
    pub fn bank_len(&self, b: u32) -> usize {
        self.by_bank[b as usize].len()
    }

    /// Packets queued to `row` of the flat bank `b`.
    pub fn row_len(&self, b: u32, row: u64) -> usize {
        self.by_row.get(&(b, row)).map_or(0, Bucket::len)
    }

    /// Whether a queued write fully covers `[lo, hi)` of `burst_addr`
    /// (O(1) write snooping).
    pub fn write_covers(&self, burst_addr: u64, lo: u32, hi: u32) -> bool {
        self.coverage.covers(burst_addr, lo, hi)
    }

    /// Writes the queue: slot contents, the free list and the sequence
    /// counter. The derived indices (class lists, `by_bank`, `by_row`,
    /// `hits`, `coverage`) are pure functions of the live packets and the
    /// controller's bank state and are rebuilt on restore rather than
    /// serialised.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.next_seq);
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(pkt) => {
                    w.bool(true);
                    save_packet(w, pkt);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
    }

    /// Restores a queue written by [`save_state`](Self::save_state),
    /// rebuilding every index. The bank geometry is configuration and must
    /// match the snapshot's packets. The open-row mirror resets to
    /// all-closed; the controller re-announces open rows via
    /// [`set_open_row`](Self::set_open_row) after restoring its banks.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_seq = r.u64()?;
        let n_slots = r.usize()?;
        self.clear_to_empty();
        let mut order: Vec<(u64, u8, u32)> = Vec::new();
        for slot in 0..n_slots {
            if !r.bool()? {
                self.slots.push(None);
                self.links.push(Link {
                    prev: NIL,
                    next: NIL,
                });
                continue;
            }
            let pkt = read_packet(r)?;
            if pkt.seq >= self.next_seq {
                return Err(SnapError::Corrupt(format!(
                    "packet seq {} >= queue counter {}",
                    pkt.seq, self.next_seq
                )));
            }
            let key = order_key(&pkt);
            let b = self.flat_bank(pkt.da.rank, pkt.da.bank);
            if b as usize >= self.by_bank.len() {
                return Err(SnapError::Corrupt(format!(
                    "packet bank {b} outside device geometry"
                )));
            }
            order.push((pkt.seq, pkt.priority, slot as u32));
            let bank_bucket = &mut self.by_bank[b as usize];
            if bank_bucket.entries.is_empty() {
                self.bank_mask[(b >> 6) as usize] |= 1 << (b & 63);
            }
            bank_bucket.insert(key, slot as u32);
            self.by_row
                .entry((b, pkt.da.row))
                .or_default()
                .insert(key, slot as u32);
            if !pkt.is_read {
                self.coverage.insert(pkt.burst_addr, pkt.lo, pkt.hi);
            }
            self.slots.push(Some(pkt));
            self.links.push(Link {
                prev: NIL,
                next: NIL,
            });
            self.len += 1;
        }
        // Rebuild the per-class FIFO lists in age order; duplicate
        // sequence numbers cannot come from a saved queue.
        order.sort_unstable();
        for pair in order.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(SnapError::Corrupt(format!(
                    "duplicate packet seq {}",
                    pair[0].0
                )));
            }
        }
        for &(_, prio, slot) in &order {
            self.list_push_back(prio, slot);
        }
        let n_free = r.usize()?;
        for _ in 0..n_free {
            let f = r.u32()?;
            if self.slots.get(f as usize).map_or(true, Option::is_some) {
                return Err(SnapError::Corrupt(format!("free-list entry {f} not free")));
            }
            self.free.push(f);
        }
        let empty = self.slots.iter().filter(|s| s.is_none()).count();
        if empty != self.free.len() {
            return Err(SnapError::Corrupt(format!(
                "{empty} empty slots but {} free-list entries",
                self.free.len()
            )));
        }
        Ok(())
    }

    /// Live packets in unspecified order (for order-independent scans).
    #[cfg(any(test, feature = "ref-model"))]
    pub fn iter_packets(&self) -> impl Iterator<Item = &DramPacket> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Live `(slot, packet)` pairs in FIFO (sequence) order — the queue
    /// order the reference scheduler scans. O(n log n); reference only.
    #[cfg(any(test, feature = "ref-model"))]
    pub fn fifo_packets(&self) -> Vec<(u32, &DramPacket)> {
        let mut v: Vec<(u32, &DramPacket)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (i as u32, p)))
            .collect();
        v.sort_by_key(|(_, p)| p.seq);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_mem::DramAddr;

    fn pkt(is_read: bool, rank: u32, bank: u32, row: u64, priority: u8) -> DramPacket {
        DramPacket {
            is_read,
            burst_addr: row * 0x1000 + u64::from(bank) * 64,
            lo: 0,
            hi: 64,
            da: DramAddr {
                rank,
                bank,
                row,
                col: 0,
            },
            entry_time: 0,
            priority,
            group: None,
            seq: 0, // stamped by push
            retries: 0,
        }
    }

    fn q() -> SchedQueue {
        SchedQueue::new(2, 8, 32)
    }

    #[test]
    fn fcfs_order_survives_slot_reuse() {
        let mut q = q();
        let a = q.push(pkt(true, 0, 0, 1, 0));
        let _b = q.push(pkt(true, 0, 1, 2, 0));
        q.take(a); // free slot 0
        let c = q.push(pkt(true, 0, 2, 3, 0)); // reuses slot 0
        assert_eq!(c, a, "slot reused");
        // FCFS pick is still the older packet despite the newer one
        // occupying a lower slot.
        let first = q.first_in_order().unwrap();
        assert_eq!(q.get(first).da.bank, 1);
    }

    #[test]
    fn priority_classes_order_before_age() {
        let mut q = q();
        q.push(pkt(true, 0, 0, 1, 0));
        let hi = q.push(pkt(true, 0, 1, 2, 3));
        assert_eq!(q.top_priority(), Some(3));
        assert_eq!(q.first_in_order(), Some(hi));
    }

    #[test]
    fn row_and_bank_candidates() {
        let mut q = q();
        q.push(pkt(true, 1, 2, 7, 0));
        let second = q.push(pkt(true, 1, 2, 7, 0));
        q.push(pkt(true, 1, 2, 9, 0));
        let b = q.flat_bank(1, 2);
        // Oldest packet for row 7 is the first push.
        let (seq, slot) = q.row_candidate(b, 7, 0).unwrap();
        assert_eq!(q.get(slot).da.row, 7);
        assert!(seq < q.get(second).seq);
        assert_eq!(q.row_len(b, 7), 2);
        assert_eq!(q.row_len(b, 9), 1);
        assert_eq!(q.bank_len(b), 3);
        assert!(q.row_candidate(b, 8, 0).is_none());
        assert!(q.bank_candidate(b, 1).is_none(), "no priority-1 packets");
    }

    #[test]
    fn hit_index_tracks_enqueue_dequeue_and_row_transitions() {
        let mut q = q();
        let b = q.flat_bank(0, 3);
        // No open rows: nothing hits.
        let a = q.push(pkt(true, 0, 3, 7, 0));
        assert_eq!(q.best_row_hit(0), None);
        // Activate row 7: the queued packet becomes the hit.
        q.set_open_row(b, Some(7));
        let (seq_a, slot_a) = q.best_row_hit(0).expect("hit after activate");
        assert_eq!(slot_a, a);
        // A younger packet to the same open row does not displace it.
        let _a2 = q.push(pkt(true, 0, 3, 7, 0));
        assert_eq!(q.best_row_hit(0).unwrap(), (seq_a, slot_a));
        // Enqueue to a different (closed) row: not a hit.
        q.push(pkt(true, 0, 3, 9, 0));
        assert_eq!(q.best_row_hit(0).unwrap(), (seq_a, slot_a));
        // Precharge removes both row-7 packets from the hit set.
        q.set_open_row(b, None);
        assert_eq!(q.best_row_hit(0), None);
        // Re-activate row 9: the row-9 packet hits now.
        q.set_open_row(b, Some(9));
        let (_, slot9) = q.best_row_hit(0).expect("row 9 open");
        assert_eq!(q.get(slot9).da.row, 9);
        // Taking the hit empties the set again.
        q.take(slot9);
        assert_eq!(q.best_row_hit(0), None);
        // Redundant transitions are no-ops.
        q.set_open_row(b, Some(9));
        assert_eq!(q.best_row_hit(0), None);
    }

    #[test]
    fn hit_index_respects_priority_classes() {
        let mut q = q();
        let b = q.flat_bank(0, 0);
        q.set_open_row(b, Some(5));
        let lo = q.push(pkt(true, 0, 0, 5, 0));
        let hi = q.push(pkt(true, 0, 0, 5, 3));
        // Per class: the class-3 hit is the younger packet, the class-0
        // hit the older one; a class with no hits reports none.
        assert_eq!(q.best_row_hit(3).unwrap().1, hi);
        assert_eq!(q.best_row_hit(0).unwrap().1, lo);
        assert_eq!(q.best_row_hit(1), None);
    }

    #[test]
    fn nonempty_bank_iteration_matches_occupancy() {
        let mut q = q();
        let collect = |q: &SchedQueue| {
            let mut v = Vec::new();
            q.for_each_nonempty_bank(|b| v.push(b));
            v
        };
        assert!(collect(&q).is_empty());
        let a = q.push(pkt(true, 0, 2, 1, 0));
        q.push(pkt(true, 1, 7, 2, 0));
        q.push(pkt(false, 1, 7, 3, 0));
        let b07 = q.flat_bank(0, 2);
        let b17 = q.flat_bank(1, 7);
        assert_eq!(collect(&q), vec![b07, b17], "ascending flat bank order");
        q.take(a);
        assert_eq!(collect(&q), vec![b17], "emptied bank drops out");
    }

    #[test]
    fn coverage_tracks_writes_only() {
        let mut q = q();
        let w = q.push(pkt(false, 0, 0, 1, 0));
        let r = q.push(pkt(true, 0, 0, 1, 0));
        let wa = q.get(w).burst_addr;
        let ra = q.get(r).burst_addr;
        assert!(q.write_covers(wa, 0, 64));
        assert!(q.write_covers(wa, 8, 16));
        assert_eq!(wa, ra);
        q.take(w);
        assert!(!q.write_covers(wa, 0, 64), "removed with the write");
    }

    #[test]
    fn fifo_packets_sorted_by_seq() {
        let mut q = q();
        let a = q.push(pkt(true, 0, 0, 1, 2));
        q.push(pkt(true, 0, 1, 2, 0));
        q.take(a);
        q.push(pkt(true, 0, 3, 4, 1));
        let seqs: Vec<u64> = q.fifo_packets().iter().map(|(_, p)| p.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(q.iter_packets().count(), 2);
    }

    #[test]
    fn len_tracks_push_take() {
        let mut q = q();
        assert!(q.is_empty());
        let a = q.push(pkt(true, 0, 0, 1, 0));
        let b = q.push(pkt(false, 0, 0, 2, 0));
        assert_eq!(q.len(), 2);
        q.take(b);
        q.take(a);
        assert!(q.is_empty());
        assert_eq!(q.bank_len(0), 0);
    }

    #[test]
    #[should_panic(expected = "stale slot")]
    fn take_twice_panics() {
        let mut q = q();
        let a = q.push(pkt(true, 0, 0, 1, 0));
        q.take(a);
        q.take(a);
    }
}
