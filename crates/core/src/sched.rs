//! Indexed controller queues: incremental data structures that answer the
//! scheduler's hot-path questions without scanning the queue.
//!
//! The original implementation held each queue as a `VecDeque<DramPacket>`
//! and answered every question with a linear scan:
//!
//! * write snooping (merge/forward) scanned the write queue per incoming
//!   burst;
//! * the adaptive page policies scanned *both* queues per serviced burst
//!   (`queued_to_row`);
//! * FR-FCFS scanned the active queue twice per scheduling decision and
//!   removed the winner with an O(n) `VecDeque::remove`.
//!
//! At the deep queues the ROADMAP targets this is O(depth) work per burst
//! — quadratic per simulation. [`SchedQueue`] replaces the scans with
//! indices maintained incrementally on enqueue/dequeue:
//!
//! * a slot arena with free-list reuse (packets never move; removal is
//!   O(1) slot recycling instead of `VecDeque::remove`'s memmove);
//! * a monotonically increasing per-queue *sequence number* stamped on
//!   every packet, so FCFS age survives arbitrary removal order;
//! * `by_order` — a `BTreeMap` keyed `(255 - priority, seq)`, whose first
//!   entry is the oldest packet of the highest QoS class (the FCFS pick and
//!   the QoS first level, O(log n));
//! * `by_bank` — per-(rank, bank) sorted candidate lists, so FR-FCFS
//!   probes only banks instead of packets (O(banks · log n) per decision);
//! * `by_row` — per-(rank, bank, row) sorted candidate lists, so row-hit
//!   detection and the adaptive page policies' `queued_to_row` are point
//!   lookups;
//! * a [`WriteCoverage`] multiset for O(1) write snooping.
//!
//! Determinism: `BTreeMap` orders by key; the hash maps use the fixed-seed
//! hasher from [`dramctrl_kernel::hash`] and are only probed point-wise.
//! No iteration order can differ between runs or leak into scheduling.
//! The scan implementations survive behind
//! `#[cfg(any(test, feature = "ref-model"))]` in `ctrl.rs`, and the
//! differential harness (`diff.rs`) proves both produce byte-identical
//! results.

use std::collections::BTreeMap;

use dramctrl_kernel::hash::DetMap;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapWriter};
use dramctrl_mem::WriteCoverage;

use crate::queue::{read_packet, save_packet, DramPacket};

/// Sort key of a queued packet: QoS-descending, then age-ascending.
///
/// `255 - priority` makes the natural ascending order of `BTreeMap` and
/// sorted vectors yield the highest-priority, oldest packet first.
#[inline]
fn order_key(pkt: &DramPacket) -> (u8, u64) {
    (255 - pkt.priority, pkt.seq)
}

/// A sorted candidate list for one bank (or one row of one bank):
/// `(255 - priority, seq, slot)` triples in ascending order.
///
/// Per-bucket population is small (queue depth spread over banks × rows),
/// so a sorted `Vec` beats a tree: inserts are a short memmove, lookups a
/// binary search, and iteration is cache-friendly.
#[derive(Debug, Default, Clone)]
struct Bucket {
    entries: Vec<(u8, u64, u32)>,
}

impl Bucket {
    fn insert(&mut self, key: (u8, u64), slot: u32) {
        let probe = (key.0, key.1, slot);
        let at = self.entries.partition_point(|&e| e < probe);
        self.entries.insert(at, probe);
    }

    fn remove(&mut self, key: (u8, u64), slot: u32) {
        let probe = (key.0, key.1, slot);
        let at = self.entries.partition_point(|&e| e < probe);
        debug_assert_eq!(self.entries.get(at), Some(&probe), "bucket out of sync");
        self.entries.remove(at);
    }

    /// Oldest entry of exactly the given inverted-priority class.
    fn first_of(&self, inv_prio: u8) -> Option<(u64, u32)> {
        let at = self.entries.partition_point(|&e| e.0 < inv_prio);
        match self.entries.get(at) {
            Some(&(ip, seq, slot)) if ip == inv_prio => Some((seq, slot)),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One controller queue (read or write) with incremental scheduling
/// indices. See the module docs for the structure inventory.
#[derive(Debug)]
pub(crate) struct SchedQueue {
    slots: Vec<Option<DramPacket>>,
    free: Vec<u32>,
    next_seq: u64,
    banks_per_rank: u32,
    /// (255 - priority, seq) → slot, over all queued packets.
    by_order: BTreeMap<(u8, u64), u32>,
    /// Flat bank id → candidates in that bank.
    by_bank: Vec<Bucket>,
    /// (flat bank id, row) → candidates for that row.
    by_row: DetMap<(u32, u64), Bucket>,
    /// Byte-span coverage of queued writes (empty for the read queue).
    coverage: WriteCoverage,
}

impl SchedQueue {
    /// Creates a queue for a device with `ranks` × `banks_per_rank` banks,
    /// pre-sized for `capacity` packets.
    pub fn new(ranks: u32, banks_per_rank: u32, capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            next_seq: 0,
            banks_per_rank,
            by_order: BTreeMap::new(),
            by_bank: vec![Bucket::default(); (ranks * banks_per_rank) as usize],
            by_row: DetMap::default(),
            coverage: WriteCoverage::default(),
        }
    }

    /// Flat bank id of a packet's (rank, bank).
    #[inline]
    pub fn flat_bank(&self, rank: u32, bank: u32) -> u32 {
        rank * self.banks_per_rank + bank
    }

    /// Number of queued packets (the queue depth in bursts).
    pub fn len(&self) -> usize {
        self.by_order.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.by_order.is_empty()
    }

    /// Enqueues `pkt`, stamping its sequence number; returns its slot.
    pub fn push(&mut self, mut pkt: DramPacket) -> u32 {
        pkt.seq = self.next_seq;
        self.next_seq += 1;
        let key = order_key(&pkt);
        let b = self.flat_bank(pkt.da.rank, pkt.da.bank);
        let row = pkt.da.row;
        if !pkt.is_read {
            self.coverage.insert(pkt.burst_addr, pkt.lo, pkt.hi);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(pkt);
                s
            }
            None => {
                self.slots.push(Some(pkt));
                (self.slots.len() - 1) as u32
            }
        };
        self.by_order.insert(key, slot);
        self.by_bank[b as usize].insert(key, slot);
        self.by_row.entry((b, row)).or_default().insert(key, slot);
        slot
    }

    /// The packet in `slot`.
    ///
    /// # Panics
    /// Panics on a stale slot.
    pub fn get(&self, slot: u32) -> &DramPacket {
        self.slots[slot as usize].as_ref().expect("stale slot")
    }

    /// Removes and returns the packet in `slot`, updating every index.
    pub fn take(&mut self, slot: u32) -> DramPacket {
        let pkt = self.slots[slot as usize].take().expect("stale slot");
        self.free.push(slot);
        let key = order_key(&pkt);
        let b = self.flat_bank(pkt.da.rank, pkt.da.bank);
        self.by_order.remove(&key);
        self.by_bank[b as usize].remove(key, slot);
        let bucket = self
            .by_row
            .get_mut(&(b, pkt.da.row))
            .expect("row bucket for queued packet");
        bucket.remove(key, slot);
        if bucket.len() == 0 {
            self.by_row.remove(&(b, pkt.da.row));
        }
        if !pkt.is_read {
            self.coverage.remove(pkt.burst_addr, pkt.lo, pkt.hi);
        }
        pkt
    }

    /// Highest QoS priority present in the queue.
    pub fn top_priority(&self) -> Option<u8> {
        self.by_order.first_key_value().map(|((ip, _), _)| 255 - ip)
    }

    /// Slot of the oldest packet of the highest priority class (the FCFS
    /// pick).
    pub fn first_in_order(&self) -> Option<u32> {
        self.by_order.first_key_value().map(|(_, &slot)| slot)
    }

    /// Oldest `(seq, slot)` of priority `prio` queued to `row` of the flat
    /// bank `b`, if any — the FR-FCFS row-hit probe.
    pub fn row_candidate(&self, b: u32, row: u64, prio: u8) -> Option<(u64, u32)> {
        self.by_row.get(&(b, row))?.first_of(255 - prio)
    }

    /// Oldest `(seq, slot)` of priority `prio` queued to the flat bank
    /// `b`, if any — the FR-FCFS first-available-bank probe.
    pub fn bank_candidate(&self, b: u32, prio: u8) -> Option<(u64, u32)> {
        self.by_bank[b as usize].first_of(255 - prio)
    }

    /// Packets queued to the flat bank `b` (any row, any priority).
    pub fn bank_len(&self, b: u32) -> usize {
        self.by_bank[b as usize].len()
    }

    /// Packets queued to `row` of the flat bank `b`.
    pub fn row_len(&self, b: u32, row: u64) -> usize {
        self.by_row.get(&(b, row)).map_or(0, Bucket::len)
    }

    /// Whether a queued write fully covers `[lo, hi)` of `burst_addr`
    /// (O(1) write snooping).
    pub fn write_covers(&self, burst_addr: u64, lo: u32, hi: u32) -> bool {
        self.coverage.covers(burst_addr, lo, hi)
    }

    /// Writes the queue: slot contents, the free list and the sequence
    /// counter. The derived indices (`by_order`, `by_bank`, `by_row`,
    /// `coverage`) are pure functions of the live packets and are rebuilt
    /// on restore rather than serialised.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.next_seq);
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(pkt) => {
                    w.bool(true);
                    save_packet(w, pkt);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
    }

    /// Restores a queue written by [`save_state`](Self::save_state),
    /// rebuilding every index. The bank geometry is configuration and must
    /// match the snapshot's packets.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_seq = r.u64()?;
        let n_slots = r.usize()?;
        self.slots.clear();
        self.by_order.clear();
        for bucket in &mut self.by_bank {
            bucket.entries.clear();
        }
        self.by_row.clear();
        self.coverage = WriteCoverage::default();
        for slot in 0..n_slots {
            if !r.bool()? {
                self.slots.push(None);
                continue;
            }
            let pkt = read_packet(r)?;
            if pkt.seq >= self.next_seq {
                return Err(SnapError::Corrupt(format!(
                    "packet seq {} >= queue counter {}",
                    pkt.seq, self.next_seq
                )));
            }
            let key = order_key(&pkt);
            let b = self.flat_bank(pkt.da.rank, pkt.da.bank);
            if b as usize >= self.by_bank.len() {
                return Err(SnapError::Corrupt(format!(
                    "packet bank {b} outside device geometry"
                )));
            }
            if self.by_order.insert(key, slot as u32).is_some() {
                return Err(SnapError::Corrupt(format!(
                    "duplicate (priority, seq) key {key:?}"
                )));
            }
            self.by_bank[b as usize].insert(key, slot as u32);
            self.by_row
                .entry((b, pkt.da.row))
                .or_default()
                .insert(key, slot as u32);
            if !pkt.is_read {
                self.coverage.insert(pkt.burst_addr, pkt.lo, pkt.hi);
            }
            self.slots.push(Some(pkt));
        }
        let n_free = r.usize()?;
        self.free.clear();
        for _ in 0..n_free {
            let f = r.u32()?;
            if self.slots.get(f as usize).map_or(true, Option::is_some) {
                return Err(SnapError::Corrupt(format!("free-list entry {f} not free")));
            }
            self.free.push(f);
        }
        let empty = self.slots.iter().filter(|s| s.is_none()).count();
        if empty != self.free.len() {
            return Err(SnapError::Corrupt(format!(
                "{empty} empty slots but {} free-list entries",
                self.free.len()
            )));
        }
        Ok(())
    }

    /// Live packets in unspecified order (for order-independent scans).
    #[cfg(any(test, feature = "ref-model"))]
    pub fn iter_packets(&self) -> impl Iterator<Item = &DramPacket> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Live `(slot, packet)` pairs in FIFO (sequence) order — the queue
    /// order the reference scheduler scans. O(n log n); reference only.
    #[cfg(any(test, feature = "ref-model"))]
    pub fn fifo_packets(&self) -> Vec<(u32, &DramPacket)> {
        let mut v: Vec<(u32, &DramPacket)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (i as u32, p)))
            .collect();
        v.sort_by_key(|(_, p)| p.seq);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_mem::DramAddr;

    fn pkt(is_read: bool, rank: u32, bank: u32, row: u64, priority: u8) -> DramPacket {
        DramPacket {
            is_read,
            burst_addr: row * 0x1000 + u64::from(bank) * 64,
            lo: 0,
            hi: 64,
            da: DramAddr {
                rank,
                bank,
                row,
                col: 0,
            },
            entry_time: 0,
            priority,
            group: None,
            seq: 0, // stamped by push
            retries: 0,
        }
    }

    fn q() -> SchedQueue {
        SchedQueue::new(2, 8, 32)
    }

    #[test]
    fn fcfs_order_survives_slot_reuse() {
        let mut q = q();
        let a = q.push(pkt(true, 0, 0, 1, 0));
        let _b = q.push(pkt(true, 0, 1, 2, 0));
        q.take(a); // free slot 0
        let c = q.push(pkt(true, 0, 2, 3, 0)); // reuses slot 0
        assert_eq!(c, a, "slot reused");
        // FCFS pick is still the older packet despite the newer one
        // occupying a lower slot.
        let first = q.first_in_order().unwrap();
        assert_eq!(q.get(first).da.bank, 1);
    }

    #[test]
    fn priority_classes_order_before_age() {
        let mut q = q();
        q.push(pkt(true, 0, 0, 1, 0));
        let hi = q.push(pkt(true, 0, 1, 2, 3));
        assert_eq!(q.top_priority(), Some(3));
        assert_eq!(q.first_in_order(), Some(hi));
    }

    #[test]
    fn row_and_bank_candidates() {
        let mut q = q();
        q.push(pkt(true, 1, 2, 7, 0));
        let second = q.push(pkt(true, 1, 2, 7, 0));
        q.push(pkt(true, 1, 2, 9, 0));
        let b = q.flat_bank(1, 2);
        // Oldest packet for row 7 is the first push.
        let (seq, slot) = q.row_candidate(b, 7, 0).unwrap();
        assert_eq!(q.get(slot).da.row, 7);
        assert!(seq < q.get(second).seq);
        assert_eq!(q.row_len(b, 7), 2);
        assert_eq!(q.row_len(b, 9), 1);
        assert_eq!(q.bank_len(b), 3);
        assert!(q.row_candidate(b, 8, 0).is_none());
        assert!(q.bank_candidate(b, 1).is_none(), "no priority-1 packets");
    }

    #[test]
    fn coverage_tracks_writes_only() {
        let mut q = q();
        let w = q.push(pkt(false, 0, 0, 1, 0));
        let r = q.push(pkt(true, 0, 0, 1, 0));
        let wa = q.get(w).burst_addr;
        let ra = q.get(r).burst_addr;
        assert!(q.write_covers(wa, 0, 64));
        assert!(q.write_covers(wa, 8, 16));
        assert_eq!(wa, ra);
        q.take(w);
        assert!(!q.write_covers(wa, 0, 64), "removed with the write");
    }

    #[test]
    fn fifo_packets_sorted_by_seq() {
        let mut q = q();
        let a = q.push(pkt(true, 0, 0, 1, 2));
        q.push(pkt(true, 0, 1, 2, 0));
        q.take(a);
        q.push(pkt(true, 0, 3, 4, 1));
        let seqs: Vec<u64> = q.fifo_packets().iter().map(|(_, p)| p.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(q.iter_packets().count(), 2);
    }

    #[test]
    fn len_tracks_push_take() {
        let mut q = q();
        assert!(q.is_empty());
        let a = q.push(pkt(true, 0, 0, 1, 0));
        let b = q.push(pkt(false, 0, 0, 2, 0));
        assert_eq!(q.len(), 2);
        q.take(b);
        q.take(a);
        assert!(q.is_empty());
        assert_eq!(q.bank_len(0), 0);
    }

    #[test]
    #[should_panic(expected = "stale slot")]
    fn take_twice_panics() {
        let mut q = q();
        let a = q.push(pkt(true, 0, 0, 1, 0));
        q.take(a);
        q.take(a);
    }
}
