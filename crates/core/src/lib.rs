//! # dramctrl — an event-based DRAM controller model
//!
//! A Rust reproduction of the DRAM controller presented in *"Simulating
//! DRAM controllers for future system architecture exploration"* (ISPASS
//! 2014) — the model that became gem5's standard DRAM controller.
//!
//! Instead of stepping the DRAM cycle by cycle, the controller:
//!
//! * tracks only the *state transitions* of banks and busses as
//!   earliest-allowed timestamps (Section II-B);
//! * executes only on *events* — next-request scheduling decisions,
//!   response deliveries and refreshes (Section II-D);
//! * models the controller architecture, not the DRAM: split read/write
//!   queues, early write responses, write merging, read forwarding, a
//!   write-drain state machine with watermarks, FR-FCFS scheduling and
//!   four page policies (Sections II-A and II-C).
//!
//! This makes it roughly an order of magnitude faster than cycle-based
//! models while matching their system-level behaviour — the claim this
//! repository reproduces experimentally (see the `dramctrl-bench` crate).
//!
//! # Quick start
//!
//! ```
//! use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
//! use dramctrl_mem::{presets, MemRequest, ReqId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
//! cfg.page_policy = PagePolicy::OpenAdaptive;
//! let mut ctrl = DramCtrl::new(cfg)?;
//!
//! // Issue a few sequential reads.
//! for i in 0..4 {
//!     ctrl.try_send(MemRequest::read(ReqId(i), i * 64, 64), 0)?;
//! }
//!
//! // Run the controller to completion, collecting responses. (Refresh
//! // events recur forever, so use `drain` rather than looping on
//! // `next_event`.)
//! let mut responses = Vec::new();
//! ctrl.drain(&mut responses);
//! assert_eq!(responses.len(), 4);
//! assert_eq!(ctrl.stats().rd_row_hits, 3); // bursts 2..4 hit the open row
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod config;
mod ctrl;
#[cfg(any(test, feature = "ref-model"))]
pub mod diff;
mod queue;
mod sched;
mod stats;

pub use config::{ConfigError, CtrlConfig, PagePolicy, SchedPolicy};
pub use ctrl::{DramCtrl, SendError};
pub use stats::CtrlStats;

// Re-exported so front ends configure RAS without a direct `dramctrl-ras`
// dependency.
pub use dramctrl_ras::{EccMode, FaultModel, RasConfig};
