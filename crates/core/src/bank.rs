//! Bank and rank state.
//!
//! The paper's key modelling insight (Section II-B): DRAM behaviour is
//! captured by tracking, per bank, the *earliest tick* at which each command
//! class may issue, rather than stepping a DRAM state machine every cycle.
//! A simplified DRAM state machine is thus implicitly encoded in these
//! timestamps.

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use std::collections::{BTreeMap, VecDeque};

/// Per-bank state: the open row and the earliest-allowed times for
/// activate, precharge and column commands.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Earliest tick an ACT to this bank may issue.
    pub act_allowed_at: Tick,
    /// Earliest tick a PRE to this bank may issue.
    pub pre_allowed_at: Tick,
    /// Earliest tick a RD/WR to this bank may issue.
    pub col_allowed_at: Tick,
    /// Column accesses since the row was opened (for the starvation guard).
    pub row_accesses: u32,
}

/// Per-rank state: the banks plus the rolling activation window that
/// enforces `t_rrd` and the generalised `t_xaw` constraint, and the refresh
/// schedule.
#[derive(Debug, Clone)]
pub struct Rank {
    /// The banks of this rank.
    pub banks: Vec<Bank>,
    /// Ticks of the most recent activates, newest at the back; bounded by
    /// the activation limit.
    act_window: VecDeque<Tick>,
    /// Earliest tick the *next* ACT to any bank of this rank may issue
    /// (enforces `t_rrd`).
    pub next_act_at: Tick,
    /// Tick at which the next refresh becomes due.
    pub refresh_due: Tick,
    /// End of the most recent (or in-progress) refresh.
    pub refresh_done: Tick,
    /// Tracks how many banks are open over time, for the power model's
    /// "time with all banks precharged" statistic.
    pub timeline: OpenTimeline,
    /// Whether the rank is in precharge power-down.
    pub powered_down: bool,
    /// Whether the rank has descended into self-refresh.
    pub self_refreshing: bool,
    /// Tick at which the current low-power episode (or its self-refresh
    /// phase) began.
    pub pd_since: Tick,
    /// Accumulated power-down time from completed episodes.
    pub pd_time: Tick,
    /// Accumulated self-refresh time from completed episodes.
    pub sr_time: Tick,
}

impl Rank {
    /// Creates a rank with `banks` closed banks; the first refresh is due
    /// at `t_refi`.
    pub fn new(banks: u32, t_refi: Tick) -> Self {
        Self {
            banks: vec![Bank::default(); banks as usize],
            act_window: VecDeque::new(),
            next_act_at: 0,
            refresh_due: if t_refi == 0 { Tick::MAX } else { t_refi },
            refresh_done: 0,
            timeline: OpenTimeline::new(),
            powered_down: false,
            self_refreshing: false,
            pd_since: 0,
            pd_time: 0,
            sr_time: 0,
        }
    }

    /// Computes the earliest tick an ACT may issue given the rolling
    /// activation window, without recording it. `earliest` already reflects
    /// the bank's own `act_allowed_at` and the rank's `t_rrd` constraint.
    pub fn act_constrained(&self, earliest: Tick, t_xaw: Tick, limit: u32) -> Tick {
        if limit == 0 || (self.act_window.len() as u32) < limit {
            earliest
        } else {
            // The oldest of the last `limit` activates pins the window.
            let oldest = self.act_window[self.act_window.len() - limit as usize];
            earliest.max(oldest + t_xaw)
        }
    }

    /// Records an ACT at `at` and updates the rank-wide constraints.
    pub fn record_act(&mut self, at: Tick, t_rrd: Tick, limit: u32) {
        debug_assert!(
            !self.act_window.back().is_some_and(|&last| at < last),
            "activates must be recorded in order"
        );
        self.next_act_at = self.next_act_at.max(at + t_rrd);
        if limit > 0 {
            self.act_window.push_back(at);
            while self.act_window.len() > limit as usize {
                self.act_window.pop_front();
            }
        }
    }

    /// Number of banks with an open row.
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub fn open_banks(&self) -> usize {
        self.banks.iter().filter(|b| b.open_row.is_some()).count()
    }
}

impl SnapState for Bank {
    fn save_state(&self, w: &mut SnapWriter) {
        w.opt_u64(self.open_row);
        w.u64(self.act_allowed_at);
        w.u64(self.pre_allowed_at);
        w.u64(self.col_allowed_at);
        w.u32(self.row_accesses);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.open_row = r.opt_u64()?;
        self.act_allowed_at = r.u64()?;
        self.pre_allowed_at = r.u64()?;
        self.col_allowed_at = r.u64()?;
        self.row_accesses = r.u32()?;
        Ok(())
    }
}

impl SnapState for Rank {
    // The bank count is configuration, not state: restore targets a rank
    // freshly built for the same device and fails loudly on a mismatch.
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.banks.len());
        for b in &self.banks {
            b.save_state(w);
        }
        w.usize(self.act_window.len());
        for &t in &self.act_window {
            w.u64(t);
        }
        w.u64(self.next_act_at);
        w.u64(self.refresh_due);
        w.u64(self.refresh_done);
        self.timeline.save_state(w);
        w.bool(self.powered_down);
        w.bool(self.self_refreshing);
        w.u64(self.pd_since);
        w.u64(self.pd_time);
        w.u64(self.sr_time);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n_banks = r.usize()?;
        if n_banks != self.banks.len() {
            return Err(SnapError::Corrupt(format!(
                "bank count {n_banks} != device organisation {}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.restore_state(r)?;
        }
        let n_acts = r.usize()?;
        self.act_window.clear();
        for _ in 0..n_acts {
            let t = r.u64()?;
            if self.act_window.back().is_some_and(|&last| t < last) {
                return Err(SnapError::Corrupt("activation window out of order".into()));
            }
            self.act_window.push_back(t);
        }
        self.next_act_at = r.u64()?;
        self.refresh_due = r.u64()?;
        self.refresh_done = r.u64()?;
        self.timeline.restore_state(r)?;
        self.powered_down = r.bool()?;
        self.self_refreshing = r.bool()?;
        self.pd_since = r.u64()?;
        self.pd_time = r.u64()?;
        self.sr_time = r.u64()?;
        Ok(())
    }
}

/// Integrates the number-of-open-banks signal over time to produce the
/// "time with all banks precharged" statistic required by the Micron power
/// model (paper Section II-G).
///
/// Opens and closes are decided with *future* timestamps (the controller
/// skips ahead); deltas are buffered in a small ordered map and folded into
/// the running integral once simulated time passes them.
#[derive(Debug, Clone, Default)]
pub struct OpenTimeline {
    pending: BTreeMap<Tick, i64>,
    open: i64,
    frontier: Tick,
    time_all_closed: Tick,
    time_some_open: Tick,
}

impl OpenTimeline {
    /// Creates an empty timeline at tick 0 with all banks closed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a bank opens at `at`.
    pub fn open_at(&mut self, at: Tick) {
        *self.pending.entry(at.max(self.frontier)).or_insert(0) += 1;
    }

    /// Records that a bank closes at `at`.
    pub fn close_at(&mut self, at: Tick) {
        *self.pending.entry(at.max(self.frontier)).or_insert(0) -= 1;
    }

    /// Folds all deltas at or before `now` into the running integral.
    pub fn sync(&mut self, now: Tick) {
        if now < self.frontier {
            return;
        }
        while let Some((&t, _)) = self.pending.first_key_value() {
            if t > now {
                break;
            }
            let (t, delta) = self.pending.pop_first().expect("checked non-empty");
            self.account(t);
            self.open += delta;
            debug_assert!(self.open >= 0, "more closes than opens");
        }
        self.account(now);
    }

    fn account(&mut self, until: Tick) {
        let span = until - self.frontier;
        if self.open == 0 {
            self.time_all_closed += span;
        } else {
            self.time_some_open += span;
        }
        self.frontier = until;
    }

    /// Time spent with zero banks open, up to the last `sync`.
    pub fn time_all_closed(&self) -> Tick {
        self.time_all_closed
    }

    /// Time spent with at least one bank open, up to the last `sync`.
    #[allow(dead_code)] // exercised by tests; kept for diagnostics
    pub fn time_some_open(&self) -> Tick {
        self.time_some_open
    }
}

impl SnapState for OpenTimeline {
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.pending.len());
        for (&t, &delta) in &self.pending {
            w.u64(t);
            w.u64(delta as u64);
        }
        w.u64(self.open as u64);
        w.u64(self.frontier);
        w.u64(self.time_all_closed);
        w.u64(self.time_some_open);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.pending.clear();
        for _ in 0..n {
            let t = r.u64()?;
            let delta = r.u64()? as i64;
            if self.pending.insert(t, delta).is_some() {
                return Err(SnapError::Corrupt(format!("duplicate timeline tick {t}")));
            }
        }
        self.open = r.u64()? as i64;
        if self.open < 0 {
            return Err(SnapError::Corrupt("negative open-bank count".into()));
        }
        self.frontier = r.u64()?;
        self.time_all_closed = r.u64()?;
        self.time_some_open = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xaw_window_gates_fifth_act() {
        // activation_limit = 4, t_xaw = 40 ns.
        let mut rank = Rank::new(8, 0);
        let (t_rrd, t_xaw, limit) = (6_000, 40_000, 4);
        let mut at = 0;
        let mut acts = Vec::new();
        for _ in 0..5 {
            at = rank.act_constrained(at.max(rank.next_act_at), t_xaw, limit);
            rank.record_act(at, t_rrd, limit);
            acts.push(at);
        }
        // First four pace at tRRD: 0, 6, 12, 18 ns.
        assert_eq!(&acts[..4], &[0, 6_000, 12_000, 18_000]);
        // The fifth must wait for the window: 0 + 40 ns, not 24 ns.
        assert_eq!(acts[4], 40_000);
    }

    #[test]
    fn no_limit_means_only_rrd() {
        let mut rank = Rank::new(4, 0);
        let mut at = 0;
        for i in 0..10 {
            at = rank.act_constrained(at.max(rank.next_act_at), 40_000, 0);
            rank.record_act(at, 6_000, 0);
            assert_eq!(at, i * 6_000);
        }
    }

    #[test]
    fn wideio_limit_two() {
        // WideIO: activation limit 2, t_xaw = 50 ns, t_rrd = 10 ns.
        let mut rank = Rank::new(4, 0);
        let mut acts = Vec::new();
        let mut at = 0;
        for _ in 0..4 {
            at = rank.act_constrained(at.max(rank.next_act_at), 50_000, 2);
            rank.record_act(at, 10_000, 2);
            acts.push(at);
        }
        // 0, 10 (tRRD), then window: 0+50, 10+50.
        assert_eq!(acts, vec![0, 10_000, 50_000, 60_000]);
    }

    #[test]
    fn refresh_due_initialised_from_refi() {
        let r = Rank::new(8, 7_800_000);
        assert_eq!(r.refresh_due, 7_800_000);
        let never = Rank::new(8, 0);
        assert_eq!(never.refresh_due, Tick::MAX);
    }

    #[test]
    fn open_banks_counts() {
        let mut r = Rank::new(4, 0);
        assert_eq!(r.open_banks(), 0);
        r.banks[1].open_row = Some(7);
        r.banks[3].open_row = Some(9);
        assert_eq!(r.open_banks(), 2);
    }

    #[test]
    fn timeline_integrates_intervals() {
        let mut tl = OpenTimeline::new();
        tl.open_at(100);
        tl.close_at(300);
        tl.sync(1_000);
        assert_eq!(tl.time_some_open(), 200);
        assert_eq!(tl.time_all_closed(), 800);
    }

    #[test]
    fn timeline_overlapping_banks() {
        let mut tl = OpenTimeline::new();
        tl.open_at(0); // bank A
        tl.open_at(50); // bank B
        tl.close_at(100); // A closes
        tl.close_at(200); // B closes
        tl.sync(400);
        assert_eq!(tl.time_some_open(), 200);
        assert_eq!(tl.time_all_closed(), 200);
    }

    #[test]
    fn timeline_partial_sync_then_more() {
        let mut tl = OpenTimeline::new();
        tl.open_at(100);
        tl.sync(50); // nothing folded yet
        assert_eq!(tl.time_all_closed(), 50);
        tl.close_at(150);
        tl.sync(200);
        assert_eq!(tl.time_some_open(), 50);
        assert_eq!(tl.time_all_closed(), 150);
    }

    #[test]
    fn timeline_sync_is_idempotent() {
        let mut tl = OpenTimeline::new();
        tl.open_at(10);
        tl.close_at(20);
        tl.sync(100);
        let (a, b) = (tl.time_all_closed(), tl.time_some_open());
        tl.sync(100);
        assert_eq!((a, b), (tl.time_all_closed(), tl.time_some_open()));
    }
}
