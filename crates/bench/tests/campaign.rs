//! Integration tests for the campaign engine driving the real simulation
//! runner: bit-for-bit determinism across worker counts, fault isolation
//! with bounded retry, and executor scaling on latency-bound jobs.

use dramctrl::{PagePolicy, SchedPolicy};
use dramctrl_bench::run_job;
use dramctrl_campaign::{
    run_campaign, Campaign, ExecutorConfig, JobOutcome, Model, TrafficPattern,
};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// A 64-job campaign over real controller simulations: models ×
/// policies × schedulers × traffic × read mixes.
fn campaign_64() -> Campaign {
    let c = Campaign::new("determinism-64", 0xD15C_0BA1)
        .models([Model::Event, Model::Cycle])
        .policies([PagePolicy::Open, PagePolicy::Closed])
        .scheds([SchedPolicy::Fcfs, SchedPolicy::FrFcfs])
        .traffic([
            TrafficPattern::Random {
                range: 64 << 20,
                block: 64,
            },
            TrafficPattern::DramAware {
                stride: 4,
                banks: 8,
            },
        ])
        .read_pcts([50, 100])
        .requests([150, 300]);
    assert_eq!(c.len(), 64);
    c
}

/// The tentpole guarantee: the same campaign seed produces byte-identical
/// JSONL reports at any worker count, with the real simulation runner.
#[test]
fn report_identical_for_1_2_and_8_workers() {
    let c = campaign_64();
    let baseline = run_campaign(&c, &ExecutorConfig::serial(), run_job);
    assert_eq!(baseline.failed(), 0, "real runner must not fail");
    let jsonl = baseline.to_jsonl();
    assert_eq!(jsonl.lines().count(), 64);
    for workers in [2usize, 8] {
        let r = run_campaign(
            &c,
            &ExecutorConfig::default().with_workers(workers),
            run_job,
        );
        assert_eq!(
            jsonl,
            r.to_jsonl(),
            "JSONL must be byte-identical at {workers} workers"
        );
    }
}

/// Fault isolation: a job that panics on every attempt is retried up to
/// the bound, recorded as failed with its panic message, and the other
/// 63 jobs still complete.
#[test]
fn panicking_job_is_isolated_retried_and_reported() {
    // These panics are intentional; keep the test output clean.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let c = campaign_64();
    let attempts_seen = AtomicU32::new(0);
    let cfg = ExecutorConfig::default()
        .with_workers(4)
        .with_max_attempts(2);
    let r = run_campaign(&c, &cfg, |job| {
        if job.index == 13 {
            attempts_seen.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault in {}", job.label());
        }
        run_job(job)
    });
    std::panic::set_hook(prev);

    assert_eq!(attempts_seen.load(Ordering::Relaxed), 2, "bounded retry");
    assert_eq!(r.failed(), 1);
    assert_eq!(r.completed(), 63, "campaign must not abort");
    match &r.records[13].outcome {
        JobOutcome::Failed {
            panic_msg,
            attempts,
        } => {
            assert_eq!(*attempts, 2);
            assert!(panic_msg.contains("injected fault"));
        }
        other => panic!("job 13 should have failed, got {other:?}"),
    }
    // The failure is visible in the serialized report too.
    let jsonl = r.to_jsonl();
    let line13 = jsonl.lines().nth(13).unwrap();
    assert!(line13.contains("\"outcome\":\"failed\""));
    assert!(line13.contains("injected fault"));
}

/// Executor scaling: on latency-bound jobs (each parked for a fixed
/// wait, the shape of trace-fetch or I/O-heavy campaigns) 8 workers
/// complete a 64-job campaign at least 3x faster than 1 worker. Uses
/// sleeps rather than simulation so the result holds on single-core CI
/// hosts, where CPU-bound work cannot parallelise.
#[test]
fn eight_workers_beat_serial_by_3x_on_latency_bound_jobs() {
    let c = Campaign::new("throughput", 1).read_pcts(0..64);
    let runner = |_job: &dramctrl_campaign::JobSpec| {
        std::thread::sleep(Duration::from_millis(5));
        dramctrl_campaign::JobMetrics::new()
    };
    let t0 = Instant::now();
    let serial = run_campaign(&c, &ExecutorConfig::serial(), runner);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = run_campaign(&c, &ExecutorConfig::default().with_workers(8), runner);
    let parallel_secs = t1.elapsed().as_secs_f64();

    assert_eq!(serial.completed(), 64);
    assert_eq!(parallel.completed(), 64);
    let speedup = serial_secs / parallel_secs;
    assert!(
        speedup >= 3.0,
        "expected >=3x speedup, got {speedup:.2}x ({serial_secs:.3}s vs {parallel_secs:.3}s)"
    );
}
