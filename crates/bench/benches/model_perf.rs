//! Measurement of the paper's headline claim (Section III-D): the
//! event-based controller is several times faster to simulate than a
//! cycle-based model on identical workloads.
//!
//! Hand-rolled harness (`harness = false`): each model × workload cell is
//! run `ITERS` times and the minimum and mean wall-clock seconds are
//! reported, plus the cycle/event speedup per workload.

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, timed, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{DramAwareGen, LinearGen, RandomGen, Tester, TrafficGen};

const N: u64 = 20_000;
const ITERS: usize = 5;

fn gen_for(name: &str) -> Box<dyn TrafficGen> {
    match name {
        "linear" => Box::new(LinearGen::new(0, 256 << 20, 64, 100, 0, N, 1)),
        "random" => Box::new(RandomGen::new(0, 256 << 20, 64, 67, 0, N, 2)),
        "dram_aware" => Box::new(DramAwareGen::new(
            presets::ddr3_1333_x64().org,
            AddrMapping::RoCoRaBaCh,
            1,
            0,
            4,
            8,
            50,
            0,
            N,
            3,
        )),
        other => panic!("unknown workload {other}"),
    }
}

fn policy_for(name: &str) -> (PagePolicy, AddrMapping) {
    if name == "dram_aware" {
        (PagePolicy::Closed, AddrMapping::RoCoRaBaCh)
    } else {
        (PagePolicy::Open, AddrMapping::RoRaBaCoCh)
    }
}

/// Runs `f` `ITERS` times, returning (min, mean) seconds.
fn measure(mut f: impl FnMut()) -> (f64, f64) {
    let mut times = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let ((), secs) = timed(&mut f);
        times.push(secs);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

fn main() {
    let tester = Tester::new(100_000, 1_000);
    let mut t = Table::new([
        "workload",
        "event min (ms)",
        "event mean (ms)",
        "cycle min (ms)",
        "cycle mean (ms)",
        "speedup",
    ]);
    for wl in ["linear", "random", "dram_aware"] {
        let (policy, mapping) = policy_for(wl);
        let (ev_min, ev_mean) = measure(|| {
            let mut gen = gen_for(wl);
            tester.run(
                &mut gen,
                &mut ev_ctrl(presets::ddr3_1333_x64(), policy, mapping, 1),
            );
        });
        let (cy_min, cy_mean) = measure(|| {
            let mut gen = gen_for(wl);
            tester.run(
                &mut gen,
                &mut cy_ctrl(presets::ddr3_1333_x64(), policy, mapping, 1),
            );
        });
        t.row([
            wl.to_string(),
            f1(ev_min * 1e3),
            f1(ev_mean * 1e3),
            f1(cy_min * 1e3),
            f1(cy_mean * 1e3),
            format!("{:.1}x", cy_min / ev_min),
        ]);
    }
    println!("model_perf: {N} requests per run, {ITERS} iterations per cell\n");
    t.print();
}
