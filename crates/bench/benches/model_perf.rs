//! Criterion measurement of the paper's headline claim (Section III-D):
//! the event-based controller is several times faster to simulate than a
//! cycle-based model on identical workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{DramAwareGen, LinearGen, RandomGen, Tester, TrafficGen};

const N: u64 = 20_000;

fn gen_for(name: &str) -> Box<dyn TrafficGen> {
    match name {
        "linear" => Box::new(LinearGen::new(0, 256 << 20, 64, 100, 0, N, 1)),
        "random" => Box::new(RandomGen::new(0, 256 << 20, 64, 67, 0, N, 2)),
        "dram_aware" => Box::new(DramAwareGen::new(
            presets::ddr3_1333_x64().org,
            AddrMapping::RoCoRaBaCh,
            1,
            0,
            4,
            8,
            50,
            0,
            N,
            3,
        )),
        other => panic!("unknown workload {other}"),
    }
}

fn policy_for(name: &str) -> (PagePolicy, AddrMapping) {
    if name == "dram_aware" {
        (PagePolicy::Closed, AddrMapping::RoCoRaBaCh)
    } else {
        (PagePolicy::Open, AddrMapping::RoRaBaCoCh)
    }
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_perf");
    group.sample_size(10);
    let tester = Tester::new(100_000, 1_000);
    for wl in ["linear", "random", "dram_aware"] {
        let (policy, mapping) = policy_for(wl);
        group.bench_with_input(BenchmarkId::new("event", wl), &wl, |b, wl| {
            b.iter(|| {
                let mut gen = gen_for(wl);
                tester.run(&mut gen, &mut ev_ctrl(presets::ddr3_1333_x64(), policy, mapping, 1))
            })
        });
        group.bench_with_input(BenchmarkId::new("cycle", wl), &wl, |b, wl| {
            b.iter(|| {
                let mut gen = gen_for(wl);
                tester.run(&mut gen, &mut cy_ctrl(presets::ddr3_1333_x64(), policy, mapping, 1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
