//! Measurement of event-model scalability with channel count
//! (Section II-F: "even a 16-channel memory system has limited impact on
//! simulation performance").
//!
//! Hand-rolled harness (`harness = false`), driven through the
//! `dramctrl-campaign` engine: each channel count is a single-job
//! campaign run `ITERS` times on a serial executor; the minimum and mean
//! wall-clock seconds are reported, normalised against the
//! single-channel case.

use dramctrl_bench::{f1, run_job, Table};
use dramctrl_campaign::{run_campaign, Campaign, ExecutorConfig, TrafficPattern};

const N: u64 = 20_000;
const ITERS: usize = 5;

fn campaign_for(channels: u32) -> Campaign {
    Campaign::new("channel-scaling", 4)
        .devices(["HBM-1000-x128"])
        .channels([channels])
        .traffic([TrafficPattern::Linear {
            range: 1 << 30,
            block: 64,
        }])
        .read_pcts([67])
        .requests([N])
}

fn main() {
    let mut t = Table::new(["channels", "min (ms)", "mean (ms)", "vs 1ch"]);
    let mut base_min = 0.0f64;
    for n in [1u32, 4, 16] {
        let c = campaign_for(n);
        let mut times = Vec::with_capacity(ITERS);
        for _ in 0..ITERS {
            let report = run_campaign(&c, &ExecutorConfig::serial(), run_job);
            assert_eq!(report.failed(), 0);
            times.push(report.wall_secs);
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if n == 1 {
            base_min = min;
        }
        t.row([
            n.to_string(),
            f1(min * 1e3),
            f1(mean * 1e3),
            format!("{:.2}x", min / base_min),
        ]);
    }
    println!("channel_scaling: HBM event model, {N} requests, {ITERS} iterations\n");
    t.print();
}
