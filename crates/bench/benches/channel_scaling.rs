//! Criterion measurement of event-model scalability with channel count
//! (Section II-F: "even a 16-channel memory system has limited impact on
//! simulation performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dramctrl::PagePolicy;
use dramctrl_bench::ev_ctrl;
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_system::MultiChannel;
use dramctrl_traffic::{LinearGen, Tester};

fn bench_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_scaling");
    group.sample_size(10);
    let tester = Tester::new(100_000, 1_000);
    for n in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::new("event_hmc", n), &n, |b, &n| {
            b.iter(|| {
                let xbar = MultiChannel::new(
                    (0..n)
                        .map(|_| {
                            ev_ctrl(
                                presets::hbm_1000_x128(),
                                PagePolicy::Open,
                                AddrMapping::RoRaBaCoCh,
                                n,
                            )
                        })
                        .collect(),
                    0,
                )
                .unwrap();
                let mut gen = LinearGen::new(0, 1 << 30, 64, 67, 0, 20_000, 4);
                let mut xbar = xbar;
                tester.run(&mut gen, &mut xbar)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_channels);
criterion_main!(benches);
