//! sched_scaling — scheduler cost vs queue depth: the indexed controller
//! against the linear-scan reference model (`DramCtrl::new_reference`).
//!
//! The controller is driven saturated: requests are offered back-to-back
//! and the simulation only advances when a queue refuses one, so every
//! scheduling decision runs against full queues. That makes the measured
//! requests/second track exactly the cost the indices remove — the
//! per-decision O(depth) scans, the O(depth) `VecDeque` removal and the
//! per-burst O(depth) occupancy and snoop scans.
//!
//! Results land in `BENCH_sched_scaling.json` at the repository root (the
//! tracked perf-trajectory file; override with `--json <path>`), together
//! with abbreviated model-speed (`speed`) and campaign-throughput
//! measurements so one file captures the performance state of the tree.
//!
//! Flags:
//! * `--short` — CI-sized run (fewer depths, fewer requests);
//! * `--check` — also assert indexed/reference equivalence on random
//!   workloads before timing anything;
//! * `--json <path>` — write the JSON somewhere else.
//!
//! Exits non-zero if the indexed controller is not faster than the
//! reference at depth 256 — the regression gate CI enforces.

use std::io::Write as _;

use dramctrl::diff;
use dramctrl::{CtrlConfig, DramCtrl, PagePolicy, SchedPolicy};
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, run_job, timed, Table};
use dramctrl_campaign::{run_campaign, Campaign, ExecutorConfig, Model, TrafficPattern};
use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::Tick;
use dramctrl_mem::{presets, AddrMapping, MemRequest, ReqId};
use dramctrl_traffic::{RandomGen, Tester};

const READ_PCT: u64 = 67;

fn build(depth: usize, reference: bool) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.page_policy = PagePolicy::OpenAdaptive;
    cfg.scheduling = SchedPolicy::FrFcfs;
    cfg.read_buffer_size = depth;
    cfg.write_buffer_size = depth;
    if reference {
        DramCtrl::new_reference(cfg).expect("valid config")
    } else {
        DramCtrl::new(cfg).expect("valid config")
    }
}

/// Offers `requests` 64-byte requests as fast as flow control allows,
/// advancing simulated time only when a queue is full — the queues sit at
/// capacity for essentially the whole run.
fn drive(ctrl: &mut DramCtrl, requests: u64) {
    let mut rng = Rng::seed_from_u64(0x5CA1E);
    let mut out = Vec::with_capacity(256);
    let mut now: Tick = 0;
    for i in 0..requests {
        let addr = rng.gen_range(0..(512 << 20) / 64) * 64;
        let req = if rng.gen_range(0..100) < READ_PCT {
            MemRequest::read(ReqId(i), addr, 64)
        } else {
            MemRequest::write(ReqId(i), addr, 64)
        };
        loop {
            match ctrl.try_send(req, now) {
                Ok(()) => break,
                Err(_) => {
                    let t = ctrl.next_event().expect("full queues imply pending work");
                    ctrl.advance_to(t, &mut out);
                    out.clear();
                    now = now.max(t);
                }
            }
        }
    }
    ctrl.drain(&mut out);
}

/// Best requests/second over `iters` runs.
fn measure_rps(depth: usize, reference: bool, requests: u64, iters: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..iters {
        let mut ctrl = build(depth, reference);
        let ((), secs) = timed(|| drive(&mut ctrl, requests));
        best = best.max(requests as f64 / secs);
    }
    best
}

struct DepthResult {
    depth: usize,
    indexed_rps: f64,
    reference_rps: f64,
}

fn main() {
    let mut short = false;
    let mut check = false;
    let mut json_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sched_scaling.json"
    )
    .to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--short" => short = true,
            "--check" => check = true,
            "--json" => json_path = args.next().expect("--json needs a path"),
            // `cargo bench` passes --bench through to the binary.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }

    let depths: &[usize] = if short {
        &[16, 256]
    } else {
        &[16, 64, 256, 1024]
    };
    let requests: u64 = if short { 6_000 } else { 30_000 };
    let iters = if short { 1 } else { 3 };

    if check {
        // Equivalence first: a fast wrong scheduler is not an optimisation.
        for seed in 0..8u64 {
            let wl = diff::random_workload(0xC0DE + seed, 120, 4);
            let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
            cfg.page_policy = PagePolicy::OpenAdaptive;
            cfg.scheduling = SchedPolicy::FrFcfs;
            cfg.read_buffer_size = 256;
            cfg.write_buffer_size = 256;
            cfg.qos_priorities = vec![0, 1, 3, 7];
            diff::assert_equivalent(&cfg, &wl);
        }
        println!("check: indexed == reference on 8 random workloads at depth 256\n");
    }

    println!(
        "sched_scaling: saturated Open-Adaptive + FR-FCFS, {requests} requests, \
         {READ_PCT}% reads, best of {iters}\n"
    );
    let mut table = Table::new(["depth", "indexed req/s", "reference req/s", "speedup"]);
    let mut results = Vec::new();
    for &depth in depths {
        let indexed_rps = measure_rps(depth, false, requests, iters);
        let reference_rps = measure_rps(depth, true, requests, iters);
        table.row([
            depth.to_string(),
            f1(indexed_rps),
            f1(reference_rps),
            format!("{:.2}x", indexed_rps / reference_rps),
        ]);
        results.push(DepthResult {
            depth,
            indexed_rps,
            reference_rps,
        });
    }
    table.print();

    // Abbreviated model-speed number (the `speed` binary's headline).
    let n_speed: u64 = if short { 10_000 } else { 50_000 };
    let t = Tester::new(100_000, 1_000);
    let (_, ev_s) = timed(|| {
        let mut g = RandomGen::new(0, 256 << 20, 64, 67, 0, n_speed, 2);
        t.run(
            &mut g,
            &mut ev_ctrl(
                presets::ddr3_1333_x64(),
                PagePolicy::Open,
                AddrMapping::RoRaBaCoCh,
                1,
            ),
        )
    });
    let (_, cy_s) = timed(|| {
        let mut g = RandomGen::new(0, 256 << 20, 64, 67, 0, n_speed, 2);
        t.run(
            &mut g,
            &mut cy_ctrl(
                presets::ddr3_1333_x64(),
                PagePolicy::Open,
                AddrMapping::RoRaBaCoCh,
                1,
            ),
        )
    });
    println!(
        "\nspeed: event {:.3}s, cycle {:.3}s ({:.1}x) on {n_speed} random mixed requests",
        ev_s,
        cy_s,
        cy_s / ev_s
    );

    // Abbreviated campaign throughput: 64 simulation jobs, 1 vs 8 workers.
    let campaign = Campaign::new("sched-scaling-smoke", 2)
        .models([Model::Event, Model::Cycle])
        .policies([PagePolicy::Open, PagePolicy::Closed])
        .scheds([SchedPolicy::Fcfs, SchedPolicy::FrFcfs])
        .traffic([
            TrafficPattern::Random {
                range: 64 << 20,
                block: 64,
            },
            TrafficPattern::DramAware {
                stride: 4,
                banks: 8,
            },
        ])
        .read_pcts([50, 100])
        .requests(if short { [200, 400] } else { [1_000, 2_000] });
    assert_eq!(campaign.len(), 64);
    let r1 = run_campaign(
        &campaign,
        &ExecutorConfig::default().with_workers(1),
        run_job,
    );
    let r8 = run_campaign(
        &campaign,
        &ExecutorConfig::default().with_workers(8),
        run_job,
    );
    assert_eq!(r1.failed() + r8.failed(), 0);
    println!(
        "campaign: 64 jobs — {:.1} jobs/s at 1 worker, {:.1} jobs/s at 8 ({:.2}x)",
        r1.jobs_per_sec(),
        r8.jobs_per_sec(),
        r8.jobs_per_sec() / r1.jobs_per_sec()
    );

    // The tracked perf-trajectory file (hand-rolled JSON; no deps).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sched_scaling\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"config\": {{\"device\": \"DDR3-1333-x64\", \"policy\": \"open-adaptive\", \
         \"sched\": \"fr-fcfs\", \"read_pct\": {READ_PCT}, \"requests\": {requests}, \
         \"short\": {short}}},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"depth\": {}, \"reference_rps\": {:.0}, \"indexed_rps\": {:.0}, \
             \"speedup\": {:.2}}}{}\n",
            r.depth,
            r.reference_rps,
            r.indexed_rps,
            r.indexed_rps / r.reference_rps,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speed\": {{\"requests\": {n_speed}, \"event_s\": {ev_s:.3}, \
         \"cycle_s\": {cy_s:.3}, \"speedup\": {:.2}}},\n",
        cy_s / ev_s
    ));
    json.push_str(&format!(
        "  \"campaign\": {{\"jobs\": 64, \"jobs_per_sec_1w\": {:.2}, \
         \"jobs_per_sec_8w\": {:.2}, \"scaling\": {:.2}}}\n",
        r1.jobs_per_sec(),
        r8.jobs_per_sec(),
        r8.jobs_per_sec() / r1.jobs_per_sec()
    ));
    json.push_str("}\n");
    let mut f = std::fs::File::create(&json_path)
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {json_path}");

    // Regression gate: the indices must beat the scans at depth 256.
    let gate = results
        .iter()
        .find(|r| r.depth == 256)
        .expect("depth 256 is always measured");
    if gate.indexed_rps <= gate.reference_rps {
        eprintln!(
            "REGRESSION: indexed ({:.0} req/s) not faster than reference ({:.0} req/s) at depth 256",
            gate.indexed_rps, gate.reference_rps
        );
        std::process::exit(1);
    }
}
