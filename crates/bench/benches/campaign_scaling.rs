//! campaign_scaling — executor throughput on a large campaign of short
//! jobs: worker-count scaling with the journal off and on, plus the cost
//! of the journal's commit strategies.
//!
//! This is the workload the batched commit pipeline exists for: at ten
//! thousand sub-millisecond jobs, a per-record `fdatasync` (~1 ms on
//! ordinary disks) caps the whole campaign at ~1 000 jobs/s regardless of
//! worker count. Batched commits amortise one fsync over everything the
//! workers finished since the last drain, so journaling costs a few
//! percent instead of dominating.
//!
//! Results land in `BENCH_campaign_scaling.json` at the repository root
//! (the tracked perf-trajectory file; override with `--json <path>`). The
//! file records `available_parallelism` because worker scaling is bounded
//! by physical cores: on a 1-core host the 8-worker/1-worker ratio is ~1x
//! no matter how good the executor is, so the regression gate scales its
//! expectation with the host (see `scaling_floor`).
//!
//! Flags:
//! * `--short` — CI-sized run (fewer jobs);
//! * `--check` — assert journaled reports are byte-identical at 1/2/8
//!   workers before timing anything;
//! * `--json <path>` — write the JSON somewhere else.
//!
//! Exits non-zero on either regression gate:
//! * journaling overhead: journaled 1-worker throughput must stay within
//!   30% of unjournaled (fails under per-record fsync on any ordinary
//!   disk — this is the batched-commit gate, meaningful even on 1 core);
//! * worker scaling: the 8-worker/1-worker journaled ratio must reach the
//!   host-aware floor.

use std::io::Write as _;
use std::time::Instant;

use dramctrl_bench::{f1, run_job, Table};
use dramctrl_campaign::{
    run_campaign, run_campaign_journaled, Campaign, CampaignJournal, ExecutorConfig, JobOutcome,
    JobRecord, TrafficPattern,
};

/// The short-job campaign: `read_pcts × requests` axes expand to `jobs`
/// sub-millisecond event-model simulations.
fn campaign(jobs: usize) -> Campaign {
    let pcts = 100usize;
    assert_eq!(jobs % pcts, 0, "job count must be a multiple of 100");
    let per = (jobs / pcts) as u64;
    let c = Campaign::new("campaign-scaling", 7)
        .traffic([TrafficPattern::Random {
            range: 64 << 20,
            block: 64,
        }])
        .read_pcts((0..pcts as u8).map(|p| p.saturating_add(1)))
        .requests((0..per).map(|i| 100 + i * 4));
    assert_eq!(c.len(), jobs);
    c
}

/// Jobs/second of one full campaign run at `workers`, journal optional.
fn measure(c: &Campaign, workers: usize, journal_dir: Option<&std::path::Path>) -> f64 {
    let cfg = ExecutorConfig::default().with_workers(workers);
    let start = Instant::now();
    let r = match journal_dir {
        None => run_campaign(c, &cfg, run_job),
        Some(dir) => {
            let path = dir.join(format!("journal-{workers}w.jsonl"));
            let _ = std::fs::remove_file(&path);
            let mut j = CampaignJournal::create(&path, c).expect("create journal");
            run_campaign_journaled(c, &cfg, &mut j, run_job)
        }
    };
    assert_eq!(r.failed(), 0, "campaign jobs must not fail");
    c.len() as f64 / start.elapsed().as_secs_f64()
}

/// Records/second of the journal's two commit strategies, isolated from
/// simulation: `per_record` fsyncs every [`CampaignJournal::commit`],
/// `batched` commits the same records through
/// [`CampaignJournal::commit_batch`] in drain-sized groups.
fn measure_commit_strategies(dir: &std::path::Path, n: usize) -> (f64, f64) {
    let c = campaign(10_000);
    let jobs = c.expand();
    let outcome = |i: usize| JobOutcome::Completed {
        metrics: dramctrl_campaign::JobMetrics::new().with("bus_util", i as f64 / 1e4),
        attempts: 1,
    };

    let per_path = dir.join("commit-per-record.jsonl");
    let mut j = CampaignJournal::create(&per_path, &c).expect("create journal");
    let start = Instant::now();
    for (i, job) in jobs.iter().take(n).enumerate() {
        let rec = JobRecord {
            job: job.clone(),
            outcome: outcome(i),
        };
        j.commit(&rec).expect("commit");
    }
    let per_record_rps = n as f64 / start.elapsed().as_secs_f64();
    drop(j);

    let batch_path = dir.join("commit-batched.jsonl");
    let mut j = CampaignJournal::create(&batch_path, &c).expect("create journal");
    let outcomes: Vec<JobOutcome> = (0..n).map(outcome).collect();
    const BATCH: usize = 32; // a typical collector drain under load
    let start = Instant::now();
    for chunk in (0..n).collect::<Vec<_>>().chunks(BATCH) {
        j.commit_batch(chunk.iter().map(|&i| (&jobs[i], &outcomes[i])))
            .expect("commit batch");
    }
    let batched_rps = n as f64 / start.elapsed().as_secs_f64();
    (per_record_rps, batched_rps)
}

fn main() {
    let mut short = false;
    let mut check = false;
    let mut json_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_campaign_scaling.json"
    )
    .to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--short" => short = true,
            "--check" => check = true,
            "--json" => json_path = args.next().expect("--json needs a path"),
            // `cargo bench` passes --bench through to the binary.
            "--bench" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }

    let jobs = if short { 2_000 } else { 10_000 };
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
    let c = campaign(jobs);
    let dir =
        std::env::temp_dir().join(format!("dramctrl-campaign-scaling-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    if check {
        // Byte-identity first: a fast executor that reorders or loses
        // records is not an optimisation. Journaled reports must be
        // byte-identical at every worker count.
        let cc = campaign(2_000);
        let mut base = None;
        for workers in [1usize, 2, 8] {
            let path = dir.join(format!("check-{workers}w.jsonl"));
            let mut j = CampaignJournal::create(&path, &cc).expect("create journal");
            let r = run_campaign_journaled(
                &cc,
                &ExecutorConfig::default().with_workers(workers),
                &mut j,
                run_job,
            );
            let jsonl = r.to_jsonl();
            match &base {
                None => base = Some(jsonl),
                Some(b) => assert_eq!(b, &jsonl, "report bytes differ at {workers} workers"),
            }
        }
        println!("check: journaled reports byte-identical at 1/2/8 workers\n");
    }

    println!(
        "campaign_scaling: {jobs} event-model jobs (100-{} random requests each), \
         host has {ncpu} core(s)\n",
        100 + (jobs / 100 - 1) * 4
    );

    let worker_counts = [1usize, 2, 4, 8];
    let mut plain = Vec::new();
    let mut journaled = Vec::new();
    let mut table = Table::new(["workers", "plain jobs/s", "journaled jobs/s", "overhead"]);
    for &w in &worker_counts {
        let p = measure(&c, w, None);
        let j = measure(&c, w, Some(&dir));
        table.row([
            w.to_string(),
            f1(p),
            f1(j),
            format!("{:.1}%", (1.0 - j / p) * 100.0),
        ]);
        plain.push(p);
        journaled.push(j);
    }
    table.print();

    let commit_n = if short { 2_000 } else { 10_000 };
    let (per_record_rps, batched_rps) = measure_commit_strategies(&dir, commit_n);
    println!(
        "\ncommit strategies ({commit_n} records, no simulation): \
         per-record fsync {:.0} rec/s, batched {:.0} rec/s ({:.1}x)",
        per_record_rps,
        batched_rps,
        batched_rps / per_record_rps
    );

    let scaling = journaled[3] / journaled[0];
    let overhead_1w = journaled[0] / plain[0];
    // The scaling floor a host can honestly be held to: near-linear up to
    // its core count (the acceptance target of 4x at 8 workers needs >= 8
    // cores), and never below 0.75x — even a 1-core host must not *lose*
    // throughput to worker-count overhead.
    let scaling_floor = f64::max(0.75, 0.5 * ncpu.min(8) as f64);
    println!(
        "\nscaling: 8-worker/1-worker journaled = {scaling:.2}x \
         (floor for {ncpu} core(s): {scaling_floor:.2}x); \
         journal overhead at 1 worker: {:.1}%",
        (1.0 - overhead_1w) * 100.0
    );

    // The tracked perf-trajectory file (hand-rolled JSON; no deps).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"campaign_scaling\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"config\": {{\"jobs\": {jobs}, \"model\": \"event\", \"traffic\": \"random\", \
         \"requests_min\": 100, \"available_parallelism\": {ncpu}, \"short\": {short}}},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, &w) in worker_counts.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {w}, \"plain_jobs_per_sec\": {:.1}, \
             \"journaled_jobs_per_sec\": {:.1}}}{}\n",
            plain[i],
            journaled[i],
            if i + 1 == worker_counts.len() {
                ""
            } else {
                ","
            }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"commit\": {{\"records\": {commit_n}, \"per_record_fsync_rps\": {:.0}, \
         \"batched_rps\": {:.0}, \"speedup\": {:.1}}},\n",
        per_record_rps,
        batched_rps,
        batched_rps / per_record_rps
    ));
    json.push_str(&format!(
        "  \"scaling\": {{\"journaled_8w_over_1w\": {scaling:.2}, \
         \"floor\": {scaling_floor:.2}, \"journal_overhead_1w\": {:.3}}}\n",
        1.0 - overhead_1w
    ));
    json.push_str("}\n");
    let mut f = std::fs::File::create(&json_path)
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {json_path}");

    let _ = std::fs::remove_dir_all(&dir);

    // Regression gates.
    let mut failed = false;
    if overhead_1w < 0.70 {
        eprintln!(
            "REGRESSION: journaled 1-worker throughput is {:.0}% of unjournaled \
             (floor 70%) — the commit path is serialising on fsync again",
            overhead_1w * 100.0
        );
        failed = true;
    }
    if scaling < scaling_floor {
        eprintln!(
            "REGRESSION: journaled 8-worker/1-worker scaling {scaling:.2}x is below \
             the {scaling_floor:.2}x floor for a {ncpu}-core host"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
