//! The canonical campaign runner: wires a declarative
//! [`JobSpec`](dramctrl_campaign::JobSpec) to real controllers, traffic
//! generators and the [`Tester`] run loop.
//!
//! This is the scaffolding every figure/ablation binary used to
//! duplicate — build a controller for a (policy, scheduler, mapping,
//! channels) tuple, build a seeded generator, push the stream through
//! the tester, read the summary — extracted once so that both the
//! binaries and the `dramctrl-campaign` executor share it.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy, SchedPolicy};
use dramctrl_campaign::{JobMetrics, JobSpec, Model, TrafficPattern};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_mem::{presets, AddrMapping, MemSpec};
use dramctrl_system::MultiChannel;
use dramctrl_traffic::{DramAwareGen, LinearGen, RandomGen, TestSummary, Tester, TrafficGen};

/// Builds an event-based controller with an explicit scheduler (the
/// general form of [`ev_ctrl`](crate::ev_ctrl)).
pub fn ev_ctrl_with(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> DramCtrl {
    let mut cfg = CtrlConfig::new(spec);
    cfg.page_policy = policy;
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = sched;
    DramCtrl::new(cfg).expect("valid config")
}

/// Builds the matching cycle-based baseline with an explicit scheduler
/// (the general form of [`cy_ctrl`](crate::cy_ctrl)).
pub fn cy_ctrl_with(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CycleCtrl {
    let mut cfg = CycleConfig::new(spec);
    cfg.page_policy = if policy.is_open() {
        CyclePagePolicy::Open
    } else {
        CyclePagePolicy::Closed
    };
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = match sched {
        SchedPolicy::Fcfs => CycleSched::Fcfs,
        SchedPolicy::FrFcfs => CycleSched::FrFcfs,
    };
    // Model comparisons must service the same burst stream on both sides,
    // so give the baseline the event model's write snooping too.
    cfg.write_snooping = true;
    CycleCtrl::new(cfg).expect("valid config")
}

/// The tester configuration shared by the campaign runner and the
/// ablation binaries: 200 µs latency cap, 1 000 histogram buckets.
pub fn std_tester() -> Tester {
    Tester::new(200_000, 1_000)
}

/// Builds the seeded traffic generator described by `job`.
pub fn gen_for_job(job: &JobSpec, spec: &MemSpec) -> Box<dyn TrafficGen> {
    let rd = job.read_pct;
    let n = job.requests;
    match job.traffic {
        TrafficPattern::Linear { range, block } => {
            Box::new(LinearGen::new(0, range, block, rd, 0, n, job.seed))
        }
        TrafficPattern::Random { range, block } => {
            Box::new(RandomGen::new(0, range, block, rd, 0, n, job.seed))
        }
        TrafficPattern::DramAware { stride, banks } => Box::new(DramAwareGen::new(
            spec.org,
            job.mapping,
            job.channels,
            0,
            stride,
            banks,
            rd,
            0,
            n,
            job.seed,
        )),
    }
}

/// Converts a run's [`TestSummary`] into campaign metrics.
pub fn job_metrics(s: &TestSummary) -> JobMetrics {
    let mut m = JobMetrics::new();
    m.set("reads", s.reads_completed as f64);
    m.set("writes", s.writes_completed as f64);
    m.set("dropped", s.dropped as f64);
    m.set("duration_ticks", s.duration as f64);
    m.set("bus_util", s.bus_util);
    m.set("bandwidth_gbps", s.bandwidth_gbps);
    m.set("avg_read_lat_ns", s.read_lat_ns.mean());
    if let Some(p95) = s.read_lat_ns.quantile(0.95) {
        m.set("p95_read_lat_ns", p95 as f64);
    }
    m.set("row_hit_rate", s.ctrl.page_hit_rate());
    m.set("activates", s.ctrl.activates as f64);
    m
}

/// The canonical runner for [`dramctrl_campaign::run_campaign`]:
/// simulates one [`JobSpec`] end to end and returns its metrics.
///
/// Deterministic in the spec: the traffic generator is seeded with
/// `job.seed` and the simulation itself contains no other randomness,
/// so the same spec always yields the same metrics.
///
/// # Panics
/// Panics on an unknown device preset or an invalid configuration —
/// under the campaign executor these become
/// [`JobOutcome::Failed`](dramctrl_campaign::JobOutcome) records rather
/// than aborting the sweep.
pub fn run_job(job: &JobSpec) -> JobMetrics {
    let spec = presets::by_name(&job.device)
        .unwrap_or_else(|| panic!("unknown device preset '{}'", job.device));
    let mut gen = gen_for_job(job, &spec);
    let tester = std_tester();
    let s = match job.model {
        Model::Event => {
            if job.channels <= 1 {
                tester.run(
                    &mut gen,
                    &mut ev_ctrl_with(spec.clone(), job.policy, job.sched, job.mapping, 1),
                )
            } else {
                let ctrls = (0..job.channels)
                    .map(|_| {
                        ev_ctrl_with(
                            spec.clone(),
                            job.policy,
                            job.sched,
                            job.mapping,
                            job.channels,
                        )
                    })
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                tester.run(&mut gen, &mut xbar)
            }
        }
        Model::Cycle => {
            if job.channels <= 1 {
                tester.run(
                    &mut gen,
                    &mut cy_ctrl_with(spec.clone(), job.policy, job.sched, job.mapping, 1),
                )
            } else {
                let ctrls = (0..job.channels)
                    .map(|_| {
                        cy_ctrl_with(
                            spec.clone(),
                            job.policy,
                            job.sched,
                            job.mapping,
                            job.channels,
                        )
                    })
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                tester.run(&mut gen, &mut xbar)
            }
        }
    };
    job_metrics(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_campaign::Campaign;

    #[test]
    fn run_job_is_deterministic() {
        let jobs = Campaign::new("det", 77)
            .traffic([TrafficPattern::DramAware {
                stride: 4,
                banks: 8,
            }])
            .read_pcts([50])
            .requests([500])
            .expand();
        assert_eq!(run_job(&jobs[0]), run_job(&jobs[0]));
    }

    #[test]
    fn run_job_covers_models_and_channels() {
        let jobs = Campaign::new("cov", 3)
            .models([Model::Event, Model::Cycle])
            .channels([1, 2])
            .requests([300])
            .expand();
        for job in &jobs {
            let m = run_job(job);
            assert_eq!(m.get("reads"), Some(300.0), "{}", job.label());
            assert!(m.get("bus_util").unwrap() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown device preset")]
    fn unknown_device_panics() {
        let mut jobs = Campaign::new("bad", 1).requests([10]).expand();
        jobs[0].device = "SDRAM-66-x16".to_owned();
        let _ = run_job(&jobs[0]);
    }
}
