//! The canonical campaign runner: wires a declarative
//! [`JobSpec`](dramctrl_campaign::JobSpec) to real controllers, traffic
//! generators and the [`Tester`] run loop.
//!
//! This is the scaffolding every figure/ablation binary used to
//! duplicate — build a controller for a (policy, scheduler, mapping,
//! channels) tuple, build a seeded generator, push the stream through
//! the tester, read the summary — extracted once so that both the
//! binaries and the `dramctrl-campaign` executor share it.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy, SchedPolicy};
use dramctrl_campaign::{JobMetrics, JobSpec, Model, TrafficPattern};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_kernel::Tick;
use dramctrl_mem::{presets, AddrMapping, Controller, MemSpec};
use dramctrl_obs::{ChromeTracer, EpochRecorder};
use dramctrl_stats::Report;
use dramctrl_system::MultiChannel;
use dramctrl_traffic::{DramAwareGen, LinearGen, RandomGen, TestSummary, Tester, TrafficGen};

/// The event-model configuration for a (policy, scheduler, mapping,
/// channels) tuple.
pub fn ev_cfg(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CtrlConfig {
    let mut cfg = CtrlConfig::new(spec);
    cfg.page_policy = policy;
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = sched;
    cfg
}

/// The matching cycle-baseline configuration.
pub fn cy_cfg(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CycleConfig {
    let mut cfg = CycleConfig::new(spec);
    cfg.page_policy = if policy.is_open() {
        CyclePagePolicy::Open
    } else {
        CyclePagePolicy::Closed
    };
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = match sched {
        SchedPolicy::Fcfs => CycleSched::Fcfs,
        SchedPolicy::FrFcfs => CycleSched::FrFcfs,
    };
    // Model comparisons must service the same burst stream on both sides,
    // so give the baseline the event model's write snooping too.
    cfg.write_snooping = true;
    cfg
}

/// Builds an event-based controller with an explicit scheduler (the
/// general form of [`ev_ctrl`](crate::ev_ctrl)).
pub fn ev_ctrl_with(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> DramCtrl {
    DramCtrl::new(ev_cfg(spec, policy, sched, mapping, channels)).expect("valid config")
}

/// Builds the matching cycle-based baseline with an explicit scheduler
/// (the general form of [`cy_ctrl`](crate::cy_ctrl)).
pub fn cy_ctrl_with(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CycleCtrl {
    CycleCtrl::new(cy_cfg(spec, policy, sched, mapping, channels)).expect("valid config")
}

/// The tester configuration shared by the campaign runner and the
/// ablation binaries: 200 µs latency cap, 1 000 histogram buckets.
pub fn std_tester() -> Tester {
    Tester::new(200_000, 1_000)
}

/// Builds the seeded traffic generator described by `job`.
pub fn gen_for_job(job: &JobSpec, spec: &MemSpec) -> Box<dyn TrafficGen> {
    let rd = job.read_pct;
    let n = job.requests;
    match job.traffic {
        TrafficPattern::Linear { range, block } => {
            Box::new(LinearGen::new(0, range, block, rd, 0, n, job.seed))
        }
        TrafficPattern::Random { range, block } => {
            Box::new(RandomGen::new(0, range, block, rd, 0, n, job.seed))
        }
        TrafficPattern::DramAware { stride, banks } => Box::new(DramAwareGen::new(
            spec.org,
            job.mapping,
            job.channels,
            0,
            stride,
            banks,
            rd,
            0,
            n,
            job.seed,
        )),
    }
}

/// Converts a run's [`TestSummary`] into campaign metrics.
pub fn job_metrics(s: &TestSummary) -> JobMetrics {
    let mut m = JobMetrics::new();
    m.set("reads", s.reads_completed as f64);
    m.set("writes", s.writes_completed as f64);
    m.set("dropped", s.dropped as f64);
    m.set("duration_ticks", s.duration as f64);
    m.set("bus_util", s.bus_util);
    m.set("bandwidth_gbps", s.bandwidth_gbps);
    m.set("avg_read_lat_ns", s.read_lat_ns.mean());
    if let Some(p95) = s.read_lat_ns.quantile(0.95) {
        m.set("p95_read_lat_ns", p95 as f64);
    }
    m.set("row_hit_rate", s.ctrl.page_hit_rate());
    m.set("activates", s.ctrl.activates as f64);
    m
}

/// The canonical runner for [`dramctrl_campaign::run_campaign`]:
/// simulates one [`JobSpec`] end to end and returns its metrics.
///
/// Deterministic in the spec: the traffic generator is seeded with
/// `job.seed` and the simulation itself contains no other randomness,
/// so the same spec always yields the same metrics.
///
/// # Panics
/// Panics on an unknown device preset or an invalid configuration —
/// under the campaign executor these become
/// [`JobOutcome::Failed`](dramctrl_campaign::JobOutcome) records rather
/// than aborting the sweep.
pub fn run_job(job: &JobSpec) -> JobMetrics {
    let spec = presets::by_name(&job.device)
        .unwrap_or_else(|| panic!("unknown device preset '{}'", job.device));
    let mut gen = gen_for_job(job, &spec);
    let tester = std_tester();
    let s = match job.model {
        Model::Event => {
            if job.channels <= 1 {
                tester.run(
                    &mut gen,
                    &mut ev_ctrl_with(spec.clone(), job.policy, job.sched, job.mapping, 1),
                )
            } else {
                let ctrls = (0..job.channels)
                    .map(|_| {
                        ev_ctrl_with(
                            spec.clone(),
                            job.policy,
                            job.sched,
                            job.mapping,
                            job.channels,
                        )
                    })
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                tester.run(&mut gen, &mut xbar)
            }
        }
        Model::Cycle => {
            if job.channels <= 1 {
                tester.run(
                    &mut gen,
                    &mut cy_ctrl_with(spec.clone(), job.policy, job.sched, job.mapping, 1),
                )
            } else {
                let ctrls = (0..job.channels)
                    .map(|_| {
                        cy_ctrl_with(
                            spec.clone(),
                            job.policy,
                            job.sched,
                            job.mapping,
                            job.channels,
                        )
                    })
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                tester.run(&mut gen, &mut xbar)
            }
        }
    };
    job_metrics(&s)
}

/// Observability artifacts produced by [`run_job_observed`], ready to be
/// written next to the campaign report.
#[derive(Debug, Clone)]
pub struct JobArtifacts {
    /// Chrome trace-event JSON of every DRAM command, request flow and
    /// power-state residency (all channels merged; load at
    /// <https://ui.perfetto.dev>).
    pub perfetto_json: String,
    /// Epoch time-series CSV (per-channel recorders summed per epoch).
    pub epochs_csv: String,
    /// Stable machine-readable statistics report
    /// ([`Report::to_json`]).
    pub stats_json: String,
}

/// The per-channel probe pair used by [`run_job_observed`].
type ObsProbe = (ChromeTracer, EpochRecorder);

/// Merges per-channel probes and the final report into [`JobArtifacts`].
fn collect_artifacts(
    probes: Vec<ObsProbe>,
    report: &Report,
    end: Tick,
    interval: Tick,
) -> JobArtifacts {
    let mut merged = EpochRecorder::new(interval);
    let mut tracers = Vec::with_capacity(probes.len());
    for (tracer, mut epochs) in probes {
        epochs.finish(end);
        merged.absorb(&epochs);
        tracers.push(tracer);
    }
    JobArtifacts {
        perfetto_json: ChromeTracer::combined_json(&tracers),
        epochs_csv: merged.to_csv(),
        stats_json: report.to_json(),
    }
}

/// [`run_job`] with live instrumentation: every channel carries a
/// [`ChromeTracer`] and an [`EpochRecorder`] binning at `epoch_interval`
/// ticks, and the returned metrics come with the rendered artifacts.
///
/// The probes are pure observers, so the metrics are identical to an
/// unobserved [`run_job`] of the same spec — the zero-perturbation
/// property the differential harness asserts controller-by-controller.
pub fn run_job_observed(job: &JobSpec, epoch_interval: Tick) -> (JobMetrics, JobArtifacts) {
    let spec = presets::by_name(&job.device)
        .unwrap_or_else(|| panic!("unknown device preset '{}'", job.device));
    let mut gen = gen_for_job(job, &spec);
    let tester = std_tester();
    let probe = |ch: u32| {
        (
            ChromeTracer::for_channel(ch),
            EpochRecorder::new(epoch_interval),
        )
    };
    let (s, report, probes) = match job.model {
        Model::Event => {
            let cfg = || {
                ev_cfg(
                    spec.clone(),
                    job.policy,
                    job.sched,
                    job.mapping,
                    job.channels,
                )
            };
            if job.channels <= 1 {
                let mut ctrl = DramCtrl::with_probe(cfg(), probe(0)).expect("valid config");
                let s = tester.run(&mut gen, &mut ctrl);
                let report = ctrl.report("ctrl", s.duration);
                (s, report, vec![ctrl.into_probe()])
            } else {
                let ctrls = (0..job.channels)
                    .map(|ch| DramCtrl::with_probe(cfg(), probe(ch)).expect("valid config"))
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                let s = tester.run(&mut gen, &mut xbar);
                let report = xbar.report("system", s.duration);
                let (ctrls, _) = xbar.into_parts();
                let probes = ctrls.into_iter().map(DramCtrl::into_probe).collect();
                (s, report, probes)
            }
        }
        Model::Cycle => {
            let cfg = || {
                cy_cfg(
                    spec.clone(),
                    job.policy,
                    job.sched,
                    job.mapping,
                    job.channels,
                )
            };
            if job.channels <= 1 {
                let mut ctrl = CycleCtrl::with_probe(cfg(), probe(0)).expect("valid config");
                let s = tester.run(&mut gen, &mut ctrl);
                let report = ctrl.report("ctrl", s.duration);
                (s, report, vec![ctrl.into_probe()])
            } else {
                let ctrls = (0..job.channels)
                    .map(|ch| CycleCtrl::with_probe(cfg(), probe(ch)).expect("valid config"))
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                let s = tester.run(&mut gen, &mut xbar);
                let report = xbar.report("system", s.duration);
                let (ctrls, _) = xbar.into_parts();
                let probes = ctrls.into_iter().map(CycleCtrl::into_probe).collect();
                (s, report, probes)
            }
        }
    };
    let artifacts = collect_artifacts(probes, &report, s.duration, epoch_interval);
    (job_metrics(&s), artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_campaign::Campaign;

    #[test]
    fn run_job_is_deterministic() {
        let jobs = Campaign::new("det", 77)
            .traffic([TrafficPattern::DramAware {
                stride: 4,
                banks: 8,
            }])
            .read_pcts([50])
            .requests([500])
            .expand();
        assert_eq!(run_job(&jobs[0]), run_job(&jobs[0]));
    }

    #[test]
    fn run_job_covers_models_and_channels() {
        let jobs = Campaign::new("cov", 3)
            .models([Model::Event, Model::Cycle])
            .channels([1, 2])
            .requests([300])
            .expand();
        for job in &jobs {
            let m = run_job(job);
            assert_eq!(m.get("reads"), Some(300.0), "{}", job.label());
            assert!(m.get("bus_util").unwrap() > 0.0);
        }
    }

    #[test]
    fn observed_run_matches_plain_run_and_renders_artifacts() {
        let jobs = Campaign::new("obs", 9)
            .models([Model::Event, Model::Cycle])
            .channels([1, 2])
            .requests([300])
            .expand();
        for job in &jobs {
            let (m, art) = run_job_observed(job, 1_000_000);
            // Zero perturbation all the way up: observed metrics equal the
            // unobserved run's bit for bit.
            assert_eq!(m, run_job(job), "{}", job.label());
            dramctrl_obs::json::validate(&art.perfetto_json).expect("loadable trace");
            assert!(art.perfetto_json.contains("\"ACT\""), "{}", job.label());
            assert!(art.epochs_csv.lines().count() > 1, "{}", job.label());
            dramctrl_obs::json::validate(&art.stats_json).expect("valid stats JSON");
        }
    }

    #[test]
    #[should_panic(expected = "unknown device preset")]
    fn unknown_device_panics() {
        let mut jobs = Campaign::new("bad", 1).requests([10]).expand();
        jobs[0].device = "SDRAM-66-x16".to_owned();
        let _ = run_job(&jobs[0]);
    }
}
