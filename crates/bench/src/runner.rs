//! The canonical campaign runner: wires a declarative
//! [`JobSpec`](dramctrl_campaign::JobSpec) to real controllers, traffic
//! generators and the [`Tester`] run loop.
//!
//! This is the scaffolding every figure/ablation binary used to
//! duplicate — build a controller for a (policy, scheduler, mapping,
//! channels) tuple, build a seeded generator, push the stream through
//! the tester, read the summary — extracted once so that both the
//! binaries and the `dramctrl-campaign` executor share it.

use dramctrl::{CtrlConfig, DramCtrl, EccMode, FaultModel, PagePolicy, RasConfig, SchedPolicy};
use dramctrl_campaign::{JobMetrics, JobSpec, Model, TrafficPattern};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_kernel::fsio::write_atomic;
use dramctrl_kernel::snap::{fingerprint, SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{presets, AddrMapping, Controller, MemSpec};
use dramctrl_obs::{ChromeTracer, EpochRecorder};
use dramctrl_stats::Report;
use dramctrl_system::MultiChannel;
use dramctrl_traffic::{
    DramAwareGen, LinearGen, RandomGen, SnapGen, TestRun, TestSummary, Tester, TrafficGen,
};
use std::cell::RefCell;
use std::path::Path;

thread_local! {
    /// One retired event-model controller per worker thread, reused via
    /// [`DramCtrl::reset`] when the next job wants an identical
    /// configuration — the common case in a campaign sweeping traffic
    /// axes over a fixed device. Keyed by config equality, so any config
    /// change falls back to a fresh build.
    static EV_CTRL_CACHE: RefCell<Option<DramCtrl>> = const { RefCell::new(None) };
}

/// A controller for `cfg`: the worker's cached one, reset, when its
/// configuration matches; a freshly built one otherwise.
fn cached_ev_ctrl(cfg: CtrlConfig) -> DramCtrl {
    match EV_CTRL_CACHE.with(|c| c.borrow_mut().take()) {
        Some(mut ctrl) if *ctrl.config() == cfg => {
            ctrl.reset();
            ctrl
        }
        _ => DramCtrl::new(cfg).expect("valid config"),
    }
}

/// Retires a finished controller into the worker's cache for the next
/// job. Its queues, event heap and group arena keep their allocations.
fn retire_ev_ctrl(ctrl: DramCtrl) {
    EV_CTRL_CACHE.with(|c| *c.borrow_mut() = Some(ctrl));
}

/// The event-model configuration for a (policy, scheduler, mapping,
/// channels) tuple.
pub fn ev_cfg(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CtrlConfig {
    let mut cfg = CtrlConfig::new(spec);
    cfg.page_policy = policy;
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = sched;
    cfg
}

/// The matching cycle-baseline configuration.
pub fn cy_cfg(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CycleConfig {
    let mut cfg = CycleConfig::new(spec);
    cfg.page_policy = if policy.is_open() {
        CyclePagePolicy::Open
    } else {
        CyclePagePolicy::Closed
    };
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = match sched {
        SchedPolicy::Fcfs => CycleSched::Fcfs,
        SchedPolicy::FrFcfs => CycleSched::FrFcfs,
    };
    // Model comparisons must service the same burst stream on both sides,
    // so give the baseline the event model's write snooping too.
    cfg.write_snooping = true;
    cfg
}

/// Builds an event-based controller with an explicit scheduler (the
/// general form of [`ev_ctrl`](crate::ev_ctrl)).
pub fn ev_ctrl_with(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> DramCtrl {
    DramCtrl::new(ev_cfg(spec, policy, sched, mapping, channels)).expect("valid config")
}

/// Builds the matching cycle-based baseline with an explicit scheduler
/// (the general form of [`cy_ctrl`](crate::cy_ctrl)).
pub fn cy_ctrl_with(
    spec: MemSpec,
    policy: PagePolicy,
    sched: SchedPolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CycleCtrl {
    CycleCtrl::new(cy_cfg(spec, policy, sched, mapping, channels)).expect("valid config")
}

/// The tester configuration shared by the campaign runner and the
/// ablation binaries: 200 µs latency cap, 1 000 histogram buckets.
pub fn std_tester() -> Tester {
    Tester::new(200_000, 1_000)
}

/// Builds the seeded traffic generator described by `job`. The box is a
/// [`SnapGen`], so the generator's stream position participates in job
/// checkpoints.
pub fn gen_for_job(job: &JobSpec, spec: &MemSpec) -> Box<dyn SnapGen> {
    let rd = job.read_pct;
    let n = job.requests;
    match job.traffic {
        TrafficPattern::Linear { range, block } => {
            Box::new(LinearGen::new(0, range, block, rd, 0, n, job.seed))
        }
        TrafficPattern::Random { range, block } => {
            Box::new(RandomGen::new(0, range, block, rd, 0, n, job.seed))
        }
        TrafficPattern::DramAware { stride, banks } => Box::new(DramAwareGen::new(
            spec.org,
            job.mapping,
            job.channels,
            0,
            stride,
            banks,
            rd,
            0,
            n,
            job.seed,
        )),
    }
}

/// The RAS configuration a job's `error_rate` axis implies: `None` at
/// rate 0 (byte-identical to a build without the RAS subsystem), else a
/// SEC-DED fault model seeded with the job seed.
pub fn ras_for_job(job: &JobSpec) -> Option<RasConfig> {
    (job.error_rate > 0.0)
        .then(|| RasConfig::from_error_rate(job.error_rate, job.seed).with_ecc(EccMode::SecDed))
}

/// Tick budget armed on every event-model campaign controller: one hour
/// of simulated time, orders of magnitude beyond any job in this
/// repository. A controller that sails past it is stuck in a scheduling
/// or retry livelock, and the watchdog turns that into a loud
/// [`JobOutcome::Failed`](dramctrl_campaign::JobOutcome) instead of a
/// silent never-ending worker.
pub const JOB_TICK_BUDGET: Tick = 3_600_000_000_000_000;

/// Sums the RAS counters of every channel's fault model into `m`
/// (no-op when no fault model is armed).
fn add_ras_metrics<'a>(m: &mut JobMetrics, fms: impl Iterator<Item = &'a FaultModel>) {
    let mut sums: std::collections::BTreeMap<&'static str, u64> = std::collections::BTreeMap::new();
    let mut any = false;
    for fm in fms {
        any = true;
        for (name, v) in fm.stats().entries() {
            *sums.entry(name).or_insert(0) += v;
        }
    }
    if any {
        for (name, v) in sums {
            m.set(name, v as f64);
        }
    }
}

/// Panics with the stall diagnostic if any event controller tripped its
/// watchdog (the campaign executor records the panic as a failed job).
fn assert_no_stall<'a>(ctrls: impl Iterator<Item = &'a DramCtrl>) {
    for c in ctrls {
        if let Err(stall) = c.check_stall() {
            panic!("{stall}");
        }
    }
}

/// Converts a run's [`TestSummary`] into campaign metrics.
pub fn job_metrics(s: &TestSummary) -> JobMetrics {
    let mut m = JobMetrics::new();
    m.set("reads", s.reads_completed as f64);
    m.set("writes", s.writes_completed as f64);
    m.set("dropped", s.dropped as f64);
    m.set("duration_ticks", s.duration as f64);
    m.set("bus_util", s.bus_util);
    m.set("bandwidth_gbps", s.bandwidth_gbps);
    m.set("avg_read_lat_ns", s.read_lat_ns.mean());
    if let Some(p95) = s.read_lat_ns.quantile(0.95) {
        m.set("p95_read_lat_ns", p95 as f64);
    }
    m.set("row_hit_rate", s.ctrl.page_hit_rate());
    m.set("activates", s.ctrl.activates as f64);
    m
}

/// The canonical runner for [`dramctrl_campaign::run_campaign`]:
/// simulates one [`JobSpec`] end to end and returns its metrics.
///
/// Deterministic in the spec: the traffic generator is seeded with
/// `job.seed` and the simulation itself contains no other randomness,
/// so the same spec always yields the same metrics.
///
/// # Panics
/// Panics on an unknown device preset or an invalid configuration —
/// under the campaign executor these become
/// [`JobOutcome::Failed`](dramctrl_campaign::JobOutcome) records rather
/// than aborting the sweep.
pub fn run_job(job: &JobSpec) -> JobMetrics {
    run_job_resumable(job, None, 0, None).expect("an unpaused run always completes")
}

/// Fingerprint of a job's full specification — the compatibility guard
/// stamped into job checkpoints, so a snapshot of one job can never be
/// restored into a differently configured simulation.
#[must_use]
pub fn job_fingerprint(job: &JobSpec) -> u64 {
    fingerprint(format!("{job:?}").as_bytes())
}

/// [`run_job`] with deterministic checkpoint/restore.
///
/// When `checkpoint` names a file that exists, the run *resumes* from it
/// (the snapshot must carry [`job_fingerprint`]`(job)` — anything else
/// panics loudly). While running, a snapshot of the tester run, the
/// traffic generator and the controller is written atomically to
/// `checkpoint` every `every` injected requests (`0` disables periodic
/// checkpointing), and — when `pause_after` is `Some(n)` — the run stops
/// at the first request boundary at or past `n` injections, writes a
/// final checkpoint and returns `None`.
///
/// Restoring a checkpoint into a fresh process and running to completion
/// yields metrics byte-identical to an uninterrupted [`run_job`]: request
/// boundaries are legal checkpoints for every model, channel count and
/// RAS configuration.
///
/// # Panics
/// Panics like [`run_job`], and additionally on checkpoint I/O errors or
/// a checkpoint that does not match the job (wrong fingerprint, torn or
/// corrupt state) — under the campaign executor these become failed-job
/// records.
pub fn run_job_resumable(
    job: &JobSpec,
    checkpoint: Option<&Path>,
    every: u64,
    pause_after: Option<u64>,
) -> Option<JobMetrics> {
    match run_job_slice_inner(job, checkpoint, every, pause_after) {
        SliceOutcome::Done(m) => Some(m),
        SliceOutcome::Paused { .. } => None,
    }
}

/// What one bounded slice of a job produced.
///
/// Returned by [`run_job_slice`]; `Paused` carries the injection count at
/// the pause point so a preemptive scheduler can set the *next* slice's
/// pause target relative to actual progress (`injected + quantum`)
/// instead of guessing.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceOutcome {
    /// The job ran to completion; here are its metrics.
    Done(JobMetrics),
    /// The job paused at a request boundary and checkpointed.
    Paused {
        /// Requests injected so far (monotonic across slices).
        injected: u64,
    },
}

/// Runs one preemptible slice of `job`: resume from `checkpoint` if it
/// exists, simulate until either the job completes or the first request
/// boundary at or past `pause_after` injections, and checkpoint on pause.
///
/// This is [`run_job_resumable`] shaped for a scheduler: the quantum is
/// expressed as an absolute injection target, the pause point reports how
/// far the job actually got, and chaining slices to completion yields
/// metrics byte-identical to an uninterrupted [`run_job`] — preemption is
/// invisible in the results. `pause_after: None` runs to completion
/// (returning `Done`) while still resuming any checkpoint left by an
/// earlier slice.
///
/// # Panics
/// Panics like [`run_job_resumable`].
pub fn run_job_slice(job: &JobSpec, checkpoint: &Path, pause_after: Option<u64>) -> SliceOutcome {
    run_job_slice_inner(job, Some(checkpoint), 0, pause_after)
}

fn run_job_slice_inner(
    job: &JobSpec,
    checkpoint: Option<&Path>,
    every: u64,
    pause_after: Option<u64>,
) -> SliceOutcome {
    let spec = presets::by_name(&job.device)
        .unwrap_or_else(|| panic!("unknown device preset '{}'", job.device));
    let mut gen = gen_for_job(job, &spec);
    let ras = ras_for_job(job);
    let ck = Ckpt {
        // The fingerprint guards checkpoint compatibility; without a
        // checkpoint path nothing ever reads it, so the plain fast path
        // skips the Debug-format hash.
        fp: checkpoint.map_or(0, |_| job_fingerprint(job)),
        path: checkpoint,
        every,
        pause_after,
    };
    match job.model {
        Model::Event => {
            let mk_cfg = |ch_total| {
                let mut cfg = ev_cfg(spec.clone(), job.policy, job.sched, job.mapping, ch_total);
                cfg.ras = ras.clone();
                cfg
            };
            let mk = |ch_total| {
                let mut ctrl = DramCtrl::new(mk_cfg(ch_total)).expect("valid config");
                ctrl.set_tick_budget(Some(JOB_TICK_BUDGET));
                ctrl
            };
            if job.channels <= 1 {
                // The single-channel short job is the campaign hot path:
                // take the worker's cached controller instead of
                // rebuilding queues and arenas per job.
                let mut ctrl = cached_ev_ctrl(mk_cfg(1));
                ctrl.set_tick_budget(Some(JOB_TICK_BUDGET));
                let s = match ck.drive(&mut gen, &mut ctrl) {
                    Driven::Done(s) => *s,
                    Driven::Paused { injected } => return SliceOutcome::Paused { injected },
                };
                assert_no_stall(std::iter::once(&ctrl));
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrl.fault_model().into_iter());
                retire_ev_ctrl(ctrl);
                SliceOutcome::Done(m)
            } else {
                let ctrls = (0..job.channels).map(|_| mk(job.channels)).collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                let s = match ck.drive(&mut gen, &mut xbar) {
                    Driven::Done(s) => *s,
                    Driven::Paused { injected } => return SliceOutcome::Paused { injected },
                };
                let (ctrls, _) = xbar.into_parts();
                assert_no_stall(ctrls.iter());
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrls.iter().filter_map(DramCtrl::fault_model));
                SliceOutcome::Done(m)
            }
        }
        Model::Cycle => {
            let mk = |ch_total| {
                let mut cfg = cy_cfg(spec.clone(), job.policy, job.sched, job.mapping, ch_total);
                cfg.ras = ras.clone();
                CycleCtrl::new(cfg).expect("valid config")
            };
            if job.channels <= 1 {
                let mut ctrl = mk(1);
                let s = match ck.drive(&mut gen, &mut ctrl) {
                    Driven::Done(s) => *s,
                    Driven::Paused { injected } => return SliceOutcome::Paused { injected },
                };
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrl.fault_model().into_iter());
                SliceOutcome::Done(m)
            } else {
                let ctrls = (0..job.channels).map(|_| mk(job.channels)).collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                let s = match ck.drive(&mut gen, &mut xbar) {
                    Driven::Done(s) => *s,
                    Driven::Paused { injected } => return SliceOutcome::Paused { injected },
                };
                let (ctrls, _) = xbar.into_parts();
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrls.iter().filter_map(CycleCtrl::fault_model));
                SliceOutcome::Done(m)
            }
        }
    }
}

/// Checkpoint policy for one job run.
struct Ckpt<'a> {
    fp: u64,
    path: Option<&'a Path>,
    every: u64,
    pause_after: Option<u64>,
}

/// Internal result of [`Ckpt::drive`]: the run's summary, or the pause
/// point it checkpointed at.
enum Driven {
    Done(Box<TestSummary>),
    Paused { injected: u64 },
}

impl Ckpt<'_> {
    /// Drives the tester loop with restore-on-entry, periodic snapshots
    /// and an optional pause point.
    fn drive<G, C>(&self, gen: &mut G, ctrl: &mut C) -> Driven
    where
        G: TrafficGen + SnapState,
        C: Controller + SnapState,
    {
        let mut run = std_tester().begin();
        if let Some(path) = self.path.filter(|p| p.exists()) {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| panic!("reading checkpoint {}: {e}", path.display()));
            restore_all(&bytes, self.fp, &mut run, gen, ctrl)
                .unwrap_or_else(|e| panic!("restoring checkpoint {}: {e}", path.display()));
        }
        while run.step(gen, ctrl, Tick::MAX) {
            if let Some(n) = self.pause_after {
                if run.injected() >= n {
                    let path = self.path.expect("pausing a run requires a checkpoint path");
                    self.save(path, &run, gen, ctrl);
                    return Driven::Paused {
                        injected: run.injected(),
                    };
                }
            }
            if self.every > 0 && run.injected() % self.every == 0 {
                if let Some(path) = self.path {
                    self.save(path, &run, gen, ctrl);
                }
            }
        }
        Driven::Done(Box::new(run.finish(ctrl)))
    }

    fn save<G: SnapState, C: SnapState>(&self, path: &Path, run: &TestRun, gen: &G, ctrl: &C) {
        let mut w = SnapWriter::new(self.fp);
        run.save_state(&mut w);
        gen.save_state(&mut w);
        ctrl.save_state(&mut w);
        write_atomic(path, w.into_bytes())
            .unwrap_or_else(|e| panic!("writing checkpoint {}: {e}", path.display()));
    }
}

/// Restores `(run, gen, ctrl)` — the fixed snapshot component order —
/// from checkpoint bytes.
fn restore_all<G: SnapState, C: SnapState>(
    bytes: &[u8],
    fp: u64,
    run: &mut TestRun,
    gen: &mut G,
    ctrl: &mut C,
) -> Result<(), SnapError> {
    let mut r = SnapReader::new(bytes, fp)?;
    run.restore_state(&mut r)?;
    gen.restore_state(&mut r)?;
    ctrl.restore_state(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapError::Corrupt(
            "checkpoint has trailing bytes after the controller state".into(),
        ));
    }
    Ok(())
}

/// Observability artifacts produced by [`run_job_observed`], ready to be
/// written next to the campaign report.
#[derive(Debug, Clone)]
pub struct JobArtifacts {
    /// Chrome trace-event JSON of every DRAM command, request flow and
    /// power-state residency (all channels merged; load at
    /// <https://ui.perfetto.dev>).
    pub perfetto_json: String,
    /// Epoch time-series CSV (per-channel recorders summed per epoch).
    pub epochs_csv: String,
    /// The same epoch series as JSON lines — the streaming form the
    /// simulation service forwards to clients record by record.
    pub epochs_jsonl: String,
    /// Stable machine-readable statistics report
    /// ([`Report::to_json`]).
    pub stats_json: String,
}

/// The per-channel probe pair used by [`run_job_observed`].
type ObsProbe = (ChromeTracer, EpochRecorder);

/// Merges per-channel probes and the final report into [`JobArtifacts`].
fn collect_artifacts(
    probes: Vec<ObsProbe>,
    report: &Report,
    end: Tick,
    interval: Tick,
) -> JobArtifacts {
    let mut merged = EpochRecorder::new(interval);
    let mut tracers = Vec::with_capacity(probes.len());
    for (tracer, mut epochs) in probes {
        epochs.finish(end);
        merged.absorb(&epochs);
        tracers.push(tracer);
    }
    JobArtifacts {
        perfetto_json: ChromeTracer::combined_json(&tracers),
        epochs_csv: merged.to_csv(),
        epochs_jsonl: merged.to_jsonl(),
        stats_json: report.to_json(),
    }
}

/// [`run_job`] with live instrumentation: every channel carries a
/// [`ChromeTracer`] and an [`EpochRecorder`] binning at `epoch_interval`
/// ticks, and the returned metrics come with the rendered artifacts.
///
/// The probes are pure observers, so the metrics are identical to an
/// unobserved [`run_job`] of the same spec — the zero-perturbation
/// property the differential harness asserts controller-by-controller.
pub fn run_job_observed(job: &JobSpec, epoch_interval: Tick) -> (JobMetrics, JobArtifacts) {
    let spec = presets::by_name(&job.device)
        .unwrap_or_else(|| panic!("unknown device preset '{}'", job.device));
    let mut gen = gen_for_job(job, &spec);
    let tester = std_tester();
    let ras = ras_for_job(job);
    let probe = |ch: u32| {
        (
            ChromeTracer::for_channel(ch),
            EpochRecorder::new(epoch_interval),
        )
    };
    let (m, report, probes, end) = match job.model {
        Model::Event => {
            let cfg = || {
                let mut cfg = ev_cfg(
                    spec.clone(),
                    job.policy,
                    job.sched,
                    job.mapping,
                    job.channels,
                );
                cfg.ras = ras.clone();
                cfg
            };
            if job.channels <= 1 {
                let mut ctrl = DramCtrl::with_probe(cfg(), probe(0)).expect("valid config");
                let s = tester.run(&mut gen, &mut ctrl);
                let report = ctrl.report("ctrl", s.duration);
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrl.fault_model().into_iter());
                (m, report, vec![ctrl.into_probe()], s.duration)
            } else {
                let ctrls = (0..job.channels)
                    .map(|ch| DramCtrl::with_probe(cfg(), probe(ch)).expect("valid config"))
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                let s = tester.run(&mut gen, &mut xbar);
                let report = xbar.report("system", s.duration);
                let (ctrls, _) = xbar.into_parts();
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrls.iter().filter_map(DramCtrl::fault_model));
                let probes = ctrls.into_iter().map(DramCtrl::into_probe).collect();
                (m, report, probes, s.duration)
            }
        }
        Model::Cycle => {
            let cfg = || {
                let mut cfg = cy_cfg(
                    spec.clone(),
                    job.policy,
                    job.sched,
                    job.mapping,
                    job.channels,
                );
                cfg.ras = ras.clone();
                cfg
            };
            if job.channels <= 1 {
                let mut ctrl = CycleCtrl::with_probe(cfg(), probe(0)).expect("valid config");
                let s = tester.run(&mut gen, &mut ctrl);
                let report = ctrl.report("ctrl", s.duration);
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrl.fault_model().into_iter());
                (m, report, vec![ctrl.into_probe()], s.duration)
            } else {
                let ctrls = (0..job.channels)
                    .map(|ch| CycleCtrl::with_probe(cfg(), probe(ch)).expect("valid config"))
                    .collect();
                let mut xbar = MultiChannel::new(ctrls, 0)
                    .expect("valid crossbar")
                    .with_mapping(job.mapping);
                let s = tester.run(&mut gen, &mut xbar);
                let report = xbar.report("system", s.duration);
                let (ctrls, _) = xbar.into_parts();
                let mut m = job_metrics(&s);
                add_ras_metrics(&mut m, ctrls.iter().filter_map(CycleCtrl::fault_model));
                let probes = ctrls.into_iter().map(CycleCtrl::into_probe).collect();
                (m, report, probes, s.duration)
            }
        }
    };
    let artifacts = collect_artifacts(probes, &report, end, epoch_interval);
    (m, artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_campaign::Campaign;

    #[test]
    fn run_job_is_deterministic() {
        let jobs = Campaign::new("det", 77)
            .traffic([TrafficPattern::DramAware {
                stride: 4,
                banks: 8,
            }])
            .read_pcts([50])
            .requests([500])
            .expand();
        assert_eq!(run_job(&jobs[0]), run_job(&jobs[0]));
    }

    #[test]
    fn run_job_covers_models_and_channels() {
        let jobs = Campaign::new("cov", 3)
            .models([Model::Event, Model::Cycle])
            .channels([1, 2])
            .requests([300])
            .expand();
        for job in &jobs {
            let m = run_job(job);
            assert_eq!(m.get("reads"), Some(300.0), "{}", job.label());
            assert!(m.get("bus_util").unwrap() > 0.0);
        }
    }

    #[test]
    fn observed_run_matches_plain_run_and_renders_artifacts() {
        let jobs = Campaign::new("obs", 9)
            .models([Model::Event, Model::Cycle])
            .channels([1, 2])
            .requests([300])
            .expand();
        for job in &jobs {
            let (m, art) = run_job_observed(job, 1_000_000);
            // Zero perturbation all the way up: observed metrics equal the
            // unobserved run's bit for bit.
            assert_eq!(m, run_job(job), "{}", job.label());
            dramctrl_obs::json::validate(&art.perfetto_json).expect("loadable trace");
            assert!(art.perfetto_json.contains("\"ACT\""), "{}", job.label());
            assert!(art.epochs_csv.lines().count() > 1, "{}", job.label());
            dramctrl_obs::json::validate(&art.stats_json).expect("valid stats JSON");
        }
    }

    #[test]
    fn faulty_jobs_complete_with_ras_metrics_on_both_models() {
        let jobs = Campaign::new("ras", 21)
            .models([Model::Event, Model::Cycle])
            .channels([1, 2])
            .read_pcts([70])
            .requests([400])
            .error_rates([2e11])
            .expand();
        for job in &jobs {
            let m = run_job(job);
            assert_eq!(
                m.get("reads").unwrap() + m.get("writes").unwrap() + m.get("dropped").unwrap(),
                400.0,
                "{}",
                job.label()
            );
            assert!(
                m.get("ras_corrected").unwrap() + m.get("ras_transient_faults").unwrap() >= 0.0,
                "RAS counters missing: {}",
                job.label()
            );
            // Silent events can only be the multi-symbol syndrome alias.
            assert!(
                m.get("ras_silent").unwrap() <= m.get("ras_rank_failures").unwrap(),
                "single-symbol fault escaped SEC-DED: {}",
                job.label()
            );
            // Determinism across repeated runs, RAS counters included.
            assert_eq!(m, run_job(job), "{}", job.label());
        }
        // Fault-free jobs carry no ras_* metrics at all.
        let mut clean = jobs[0].clone();
        clean.error_rate = 0.0;
        assert_eq!(run_job(&clean).get("ras_corrected"), None);
    }

    #[test]
    fn controller_reuse_is_invisible_in_metrics() {
        // Alternating specs on one thread exercises both cache paths —
        // config-match reset and config-change rebuild — and every run
        // must match a cache-cold run of the same job on a fresh thread.
        let jobs = Campaign::new("reuse", 5)
            .read_pcts([30, 80])
            .requests([200, 500])
            .expand();
        let warm: Vec<JobMetrics> = jobs.iter().chain(jobs.iter()).map(run_job).collect();
        for (job, m) in jobs.iter().chain(jobs.iter()).zip(&warm) {
            let cold = std::thread::scope(|s| s.spawn(|| run_job(job)).join().unwrap());
            assert_eq!(m, &cold, "{}", job.label());
        }
    }

    #[test]
    #[should_panic(expected = "unknown device preset")]
    fn unknown_device_panics() {
        let mut jobs = Campaign::new("bad", 1).requests([10]).expand();
        jobs[0].device = "SDRAM-66-x16".to_owned();
        let _ = run_job(&jobs[0]);
    }
}
