//! Shared harness code for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index and `EXPERIMENTS.md` for recorded
//! results):
//!
//! ```text
//! cargo run --release -p dramctrl-bench --bin fig3
//! ```

#![warn(missing_docs)]

use std::time::Instant;

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy, SchedPolicy};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_mem::{AddrMapping, MemSpec};


/// Builds an event-based controller with the validation defaults.
pub fn ev_ctrl(
    spec: MemSpec,
    policy: PagePolicy,
    mapping: AddrMapping,
    channels: u32,
) -> DramCtrl {
    let mut cfg = CtrlConfig::new(spec);
    cfg.page_policy = policy;
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = SchedPolicy::FrFcfs;
    DramCtrl::new(cfg).expect("valid config")
}

/// Builds the matching cycle-based baseline (paper Section III: matched
/// timing, matched policies, unified queue architecture).
pub fn cy_ctrl(
    spec: MemSpec,
    policy: PagePolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CycleCtrl {
    let mut cfg = CycleConfig::new(spec);
    cfg.page_policy = if policy.is_open() {
        CyclePagePolicy::Open
    } else {
        CyclePagePolicy::Closed
    };
    cfg.mapping = mapping;
    cfg.channels = channels;
    cfg.scheduling = CycleSched::FrFcfs;
    CycleCtrl::new(cfg).expect("valid config")
}

/// Runs `f`, returning its result and the host wall-clock seconds spent.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// A minimal aligned markdown table printer for the figure binaries.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = width[i]))
                .collect();
            format!("| {} |", cells.join(" | "))
        };
        let mut out = fmt_row(&self.header) + "\n";
        let dashes: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out += &format!("| {} |\n", dashes.join(" | "));
        for row in &self.rows {
            out += &(fmt_row(row) + "\n");
        }
        out
    }

    /// Renders the table as CSV (for plotting scripts).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out += &(cells.join(",") + "\n");
        }
        out
    }

    /// Prints the rendered table to stdout — as CSV when the process was
    /// invoked with a `--csv` argument, aligned markdown otherwise.
    pub fn print(&self) {
        if std::env::args().any(|a| a == "--csv") {
            print!("{}", self.render_csv());
        } else {
            print!("{}", self.render());
        }
    }
}

/// The bus-utilisation sweeps behind paper Figures 3–5.
pub mod sweep {
    use super::*;
    use dramctrl_traffic::{DramAwareGen, Tester};

    /// One point of a bandwidth sweep.
    #[derive(Debug, Clone, Copy)]
    pub struct BwPoint {
        /// Sequential stride in bursts.
        pub stride: u64,
        /// Banks targeted.
        pub banks: u32,
        /// Event-based model bus utilisation.
        pub ev_util: f64,
        /// Cycle-based baseline bus utilisation.
        pub cy_util: f64,
    }

    /// Sweeps stride × banks with the DRAM-aware generator on both models.
    pub fn bandwidth(
        spec: &MemSpec,
        policy: PagePolicy,
        mapping: AddrMapping,
        read_pct: u8,
        strides: &[u64],
        banks: &[u32],
        requests: u64,
    ) -> Vec<BwPoint> {
        let mut points = Vec::new();
        let tester = Tester::new(100_000, 1_000);
        for &b in banks {
            for &s in strides {
                let gen = || {
                    DramAwareGen::new(
                        spec.org, mapping, 1, 0, s, b, read_pct, 0, requests, 7,
                    )
                };
                let ev = tester.run(&mut gen(), &mut ev_ctrl(spec.clone(), policy, mapping, 1));
                let cy = tester.run(&mut gen(), &mut cy_ctrl(spec.clone(), policy, mapping, 1));
                points.push(BwPoint {
                    stride: s,
                    banks: b,
                    ev_util: ev.bus_util,
                    cy_util: cy.bus_util,
                });
            }
        }
        points
    }

    /// Prints a sweep as the figure's table.
    pub fn print_points(title: &str, points: &[BwPoint]) {
        println!("{title}\n");
        let mut t = Table::new(["banks", "stride (bursts)", "event util", "cycle util"]);
        for p in points {
            t.row([
                p.banks.to_string(),
                p.stride.to_string(),
                f3(p.ev_util),
                f3(p.cy_util),
            ]);
        }
        t.print();
        println!();
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn controllers_build_for_all_presets() {
        for spec in dramctrl_mem::presets::all() {
            let _ = ev_ctrl(
                spec.clone(),
                PagePolicy::Open,
                AddrMapping::RoRaBaCoCh,
                1,
            );
            let _ = cy_ctrl(spec, PagePolicy::Closed, AddrMapping::RoCoRaBaCh, 1);
        }
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(["a", "b,comma"]);
        t.row(["1", "x\"y"]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,\"b,comma\"\n1,\"x\"\"y\"\n");
    }

    #[test]
    fn timed_measures_something() {
        let (v, secs) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
