//! Shared harness code for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index and `EXPERIMENTS.md` for recorded
//! results):
//!
//! ```text
//! cargo run --release -p dramctrl-bench --bin fig3
//! ```

#![warn(missing_docs)]

pub mod runner;

pub use runner::{
    cy_cfg, cy_ctrl_with, ev_cfg, ev_ctrl_with, gen_for_job, job_fingerprint, job_metrics, run_job,
    run_job_observed, run_job_resumable, run_job_slice, std_tester, JobArtifacts, SliceOutcome,
};

use std::time::Instant;

use dramctrl::{DramCtrl, PagePolicy, SchedPolicy};
use dramctrl_cycle::CycleCtrl;
use dramctrl_mem::{AddrMapping, MemSpec};

/// Builds an event-based controller with the validation defaults
/// (FR-FCFS scheduling; see [`ev_ctrl_with`] for the general form).
pub fn ev_ctrl(spec: MemSpec, policy: PagePolicy, mapping: AddrMapping, channels: u32) -> DramCtrl {
    ev_ctrl_with(spec, policy, SchedPolicy::FrFcfs, mapping, channels)
}

/// Builds the matching cycle-based baseline (paper Section III: matched
/// timing, matched policies, unified queue architecture; see
/// [`cy_ctrl_with`] for the general form).
pub fn cy_ctrl(
    spec: MemSpec,
    policy: PagePolicy,
    mapping: AddrMapping,
    channels: u32,
) -> CycleCtrl {
    cy_ctrl_with(spec, policy, SchedPolicy::FrFcfs, mapping, channels)
}

/// Runs `f`, returning its result and the host wall-clock seconds spent.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

pub use dramctrl_stats::Table;

/// The bus-utilisation sweeps behind paper Figures 3–5.
pub mod sweep {
    use super::*;
    use dramctrl_traffic::{DramAwareGen, Tester};

    /// One point of a bandwidth sweep.
    #[derive(Debug, Clone, Copy)]
    pub struct BwPoint {
        /// Sequential stride in bursts.
        pub stride: u64,
        /// Banks targeted.
        pub banks: u32,
        /// Event-based model bus utilisation.
        pub ev_util: f64,
        /// Cycle-based baseline bus utilisation.
        pub cy_util: f64,
    }

    /// Sweeps stride × banks with the DRAM-aware generator on both models.
    pub fn bandwidth(
        spec: &MemSpec,
        policy: PagePolicy,
        mapping: AddrMapping,
        read_pct: u8,
        strides: &[u64],
        banks: &[u32],
        requests: u64,
    ) -> Vec<BwPoint> {
        let mut points = Vec::new();
        let tester = Tester::new(100_000, 1_000);
        for &b in banks {
            for &s in strides {
                let gen =
                    || DramAwareGen::new(spec.org, mapping, 1, 0, s, b, read_pct, 0, requests, 7);
                let ev = tester.run(&mut gen(), &mut ev_ctrl(spec.clone(), policy, mapping, 1));
                let cy = tester.run(&mut gen(), &mut cy_ctrl(spec.clone(), policy, mapping, 1));
                points.push(BwPoint {
                    stride: s,
                    banks: b,
                    ev_util: ev.bus_util,
                    cy_util: cy.bus_util,
                });
            }
        }
        points
    }

    /// Prints a sweep as the figure's table.
    pub fn print_points(title: &str, points: &[BwPoint]) {
        println!("{title}\n");
        let mut t = Table::new(["banks", "stride (bursts)", "event util", "cycle util"]);
        for p in points {
            t.row([
                p.banks.to_string(),
                p.stride.to_string(),
                f3(p.ev_util),
                f3(p.cy_util),
            ]);
        }
        t.print();
        println!();
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controllers_build_for_all_presets() {
        for spec in dramctrl_mem::presets::all() {
            let _ = ev_ctrl(spec.clone(), PagePolicy::Open, AddrMapping::RoRaBaCoCh, 1);
            let _ = cy_ctrl(spec, PagePolicy::Closed, AddrMapping::RoCoRaBaCh, 1);
        }
    }

    #[test]
    fn timed_measures_something() {
        let (v, secs) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
