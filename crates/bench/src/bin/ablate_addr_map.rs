//! Ablation — the three address mappings of Table I on sequential and
//! random traffic (Section III-B's rationale: RoRaBaCoCh maximises page
//! hits for sequential streams, RoCoRaBaCh maximises bank parallelism).

use dramctrl::PagePolicy;
use dramctrl_bench::{ev_ctrl, f1, f3, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{LinearGen, RandomGen, Tester, TrafficGen};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let maps = [
        AddrMapping::RoRaBaCoCh,
        AddrMapping::RoRaBaChCo,
        AddrMapping::RoCoRaBaCh,
    ];
    println!("Ablation: address mappings (DDR3-1333, open page, FR-FCFS)\n");
    let mut table = Table::new([
        "traffic",
        "mapping",
        "bus util",
        "row-hit rate",
        "avg read lat (ns)",
    ]);
    let t = Tester::new(100_000, 1_000);
    for (name, mk_gen) in [
        (
            "linear",
            Box::new(|| Box::new(LinearGen::new(0, 256 << 20, 64, 100, 0, 20_000, 5)) as Box<dyn TrafficGen>)
                as Box<dyn Fn() -> Box<dyn TrafficGen>>,
        ),
        (
            "random",
            Box::new(|| Box::new(RandomGen::new(0, 256 << 20, 64, 100, 0, 20_000, 5)) as Box<dyn TrafficGen>),
        ),
    ] {
        for map in maps {
            let mut gen = mk_gen();
            let s = t.run(&mut gen, &mut ev_ctrl(spec.clone(), PagePolicy::Open, map, 1));
            table.row([
                name.to_string(),
                map.to_string(),
                f3(s.bus_util),
                f3(s.ctrl.page_hit_rate()),
                f1(s.read_lat_ns.mean()),
            ]);
        }
    }
    table.print();
}
