//! Ablation — the three address mappings of Table I on sequential and
//! random traffic (Section III-B's rationale: RoRaBaCoCh maximises page
//! hits for sequential streams, RoCoRaBaCh maximises bank parallelism).
//!
//! Runs as a `dramctrl-campaign` sweep: traffic × mappings expand into
//! one parallel campaign instead of a bespoke serial loop.

use dramctrl_bench::{f1, f3, run_job, Table};
use dramctrl_campaign::{run_campaign, Campaign, ExecutorConfig, Progress, TrafficPattern};
use dramctrl_mem::AddrMapping;

fn main() {
    let maps = [
        AddrMapping::RoRaBaCoCh,
        AddrMapping::RoRaBaChCo,
        AddrMapping::RoCoRaBaCh,
    ];
    let patterns = [
        (
            "linear",
            TrafficPattern::Linear {
                range: 256 << 20,
                block: 64,
            },
        ),
        (
            "random",
            TrafficPattern::Random {
                range: 256 << 20,
                block: 64,
            },
        ),
    ];
    let campaign = Campaign::new("ablate-addr-map", 5)
        .mappings(maps)
        .traffic(patterns.map(|(_, p)| p))
        .requests([20_000]);
    let report = run_campaign(
        &campaign,
        &ExecutorConfig::default().with_progress(Progress::Stderr),
        run_job,
    );

    println!("Ablation: address mappings (DDR3-1333, open page, FR-FCFS)\n");
    let mut table = Table::new([
        "traffic",
        "mapping",
        "bus util",
        "row-hit rate",
        "avg read lat (ns)",
    ]);
    for (name, pattern) in patterns {
        for map in maps {
            let (_, m) = report
                .find(|j| j.mapping == map && j.traffic == pattern)
                .expect("job completed");
            table.row([
                name.to_string(),
                map.to_string(),
                f3(m.get("bus_util").unwrap()),
                f3(m.get("row_hit_rate").unwrap()),
                f1(m.get("avg_read_lat_ns").unwrap()),
            ]);
        }
    }
    table.print();
}
