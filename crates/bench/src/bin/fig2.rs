//! Figure 2 — the modelling-technique illustration, made quantitative.
//!
//! The paper's Figure 2 contrasts cycle-based models (which execute every
//! clock cycle) with event-based models (which "only execute when
//! something changes, and thus skip ahead to the next event"). This
//! binary counts both models' units of work on identical workloads: the
//! ratio of cycles ticked to events processed is the work the event
//! model never does.

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{LinearGen, RandomGen, Tester, TrafficGen};

fn main() {
    println!("Figure 2 (quantified): events processed vs cycles simulated\n");
    let t = Tester::new(100_000, 1_000);
    let n = 50_000u64;
    let mut table = Table::new([
        "workload",
        "requests",
        "event-model events",
        "cycle-model cycles",
        "work ratio",
    ]);
    type GenFactory = Box<dyn Fn() -> Box<dyn TrafficGen>>;
    let workloads: Vec<(&str, GenFactory)> = vec![
        (
            "linear, saturating",
            Box::new(move || Box::new(LinearGen::new(0, 256 << 20, 64, 100, 0, n, 1))),
        ),
        (
            "random, saturating",
            Box::new(move || Box::new(RandomGen::new(0, 256 << 20, 64, 67, 0, n, 2))),
        ),
        (
            "linear, 1 req / 100 ns",
            Box::new(move || Box::new(LinearGen::new(0, 256 << 20, 64, 100, 100_000, n, 3))),
        ),
    ];
    for (name, mk) in &workloads {
        let mut ev = ev_ctrl(
            presets::ddr3_1333_x64(),
            PagePolicy::Open,
            AddrMapping::RoRaBaCoCh,
            1,
        );
        let mut gen = mk();
        t.run(&mut gen, &mut ev);
        let events = ev.stats().events_processed;

        let mut cy = cy_ctrl(
            presets::ddr3_1333_x64(),
            PagePolicy::Open,
            AddrMapping::RoRaBaCoCh,
            1,
        );
        let mut gen = mk();
        t.run(&mut gen, &mut cy);
        let cycles = cy.stats().cycles_simulated;

        table.row([
            name.to_string(),
            n.to_string(),
            events.to_string(),
            cycles.to_string(),
            format!("{}x", f1(cycles as f64 / events as f64)),
        ]);
    }
    table.print();
    println!("\n(The event model does a constant ~2 events per request, independent of");
    println!(" simulated time. Our cycle baseline charitably skips fully idle spans —");
    println!(" DRAMSim2 would tick through them, inflating the third row ~50x. The");
    println!(" wall-clock speedups in `speed` exceed these unit ratios because each");
    println!(" cycle also walks every bank state machine.)");
}
