//! Campaign-engine throughput: serial vs parallel execution of a 64-job
//! campaign (the numbers recorded in EXPERIMENTS.md).
//!
//! Two workloads are measured:
//! - **simulation-bound**: the real `run_job` runner (CPU-bound; scales
//!   with physical cores, so a single-core host shows ~1x), and
//! - **latency-bound**: a 5 ms wait per job (the shape of trace-fetch /
//!   I/O-heavy campaigns; scales with the worker count even on one
//!   core).

use dramctrl::{PagePolicy, SchedPolicy};
use dramctrl_bench::{f1, run_job, Table};
use dramctrl_campaign::{
    run_campaign, Campaign, ExecutorConfig, JobMetrics, JobSpec, Model, TrafficPattern,
};
use std::time::Duration;

fn sim_campaign() -> Campaign {
    Campaign::new("throughput-sim", 2)
        .models([Model::Event, Model::Cycle])
        .policies([PagePolicy::Open, PagePolicy::Closed])
        .scheds([SchedPolicy::Fcfs, SchedPolicy::FrFcfs])
        .traffic([
            TrafficPattern::Random {
                range: 64 << 20,
                block: 64,
            },
            TrafficPattern::DramAware {
                stride: 4,
                banks: 8,
            },
        ])
        .read_pcts([50, 100])
        .requests([1_000, 2_000])
}

fn main() {
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("campaign_throughput: 64 jobs per campaign, host has {ncpu} core(s)\n");
    let mut table = Table::new(["workload", "workers", "wall (ms)", "jobs/s", "speedup"]);

    let sleep_runner = |_job: &JobSpec| {
        std::thread::sleep(Duration::from_millis(5));
        JobMetrics::new()
    };
    let mut measure = |name: &str, runner: &(dyn Fn(&JobSpec) -> JobMetrics + Sync)| {
        let c = if name == "simulation-bound" {
            sim_campaign()
        } else {
            Campaign::new("throughput-sleep", 2).read_pcts(0..64)
        };
        assert_eq!(c.len(), 64);
        let mut base = 0.0f64;
        for workers in [1usize, 8] {
            let r = run_campaign(&c, &ExecutorConfig::default().with_workers(workers), runner);
            assert_eq!(r.failed(), 0);
            if workers == 1 {
                base = r.wall_secs;
            }
            table.row([
                name.to_string(),
                workers.to_string(),
                f1(r.wall_secs * 1e3),
                f1(r.jobs_per_sec()),
                format!("{:.2}x", base / r.wall_secs),
            ]);
        }
    };
    measure("simulation-bound", &run_job);
    measure("latency-bound (5ms/job)", &sleep_runner);
    table.print();
}
