//! Figure 4 — bus utilisation with a 1:1 read/write mix, open-page policy
//! (paper Section III-C1).
//!
//! Expected shape: similar to Figure 3 but lower — the row-hit benefit of
//! longer strides is partly consumed by read/write bus turnarounds.

use dramctrl::PagePolicy;
use dramctrl_bench::sweep;
use dramctrl_mem::{presets, AddrMapping};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let strides: Vec<u64> = [1u64, 2, 4, 8, 16, 32, 64, 128].to_vec();
    let banks = [1u32, 2, 4, 8];
    let points = sweep::bandwidth(
        &spec,
        PagePolicy::Open,
        AddrMapping::RoRaBaCoCh,
        50,
        &strides,
        &banks,
        20_000,
    );
    sweep::print_points(
        "Figure 4: open page, 1:1 read/write — DDR3-1333, RoRaBaCoCh, FR-FCFS",
        &points,
    );
}
