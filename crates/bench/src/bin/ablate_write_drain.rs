//! Ablation — the write-drain watermarks and minimum-writes-per-switch
//! parameters of Section II-C, on mixed traffic.
//!
//! Expected: tiny drain batches thrash the bus with turnarounds; very
//! large high watermarks delay reads behind long drain episodes. The
//! defaults sit in the efficient middle.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_bench::{f1, f3, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{DramAwareGen, Tester};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let m = AddrMapping::RoRaBaCoCh;
    println!("Ablation: write drain parameters (DDR3-1333, open page, 1:1 mix)\n");
    let mut table = Table::new([
        "high/low thresh",
        "min writes/switch",
        "bus util",
        "read p50 (ns)",
        "read p95 (ns)",
        "turnarounds",
    ]);
    let t = Tester::new(100_000, 1_000);
    for (hi, lo) in [(0.9, 0.7), (0.7, 0.5), (0.5, 0.3), (0.2, 0.1)] {
        for min_writes in [1usize, 4, 16, 32] {
            let mut cfg = CtrlConfig::new(spec.clone());
            cfg.page_policy = PagePolicy::Open;
            cfg.mapping = m;
            cfg.write_high_thresh = hi;
            cfg.write_low_thresh = lo;
            cfg.min_writes_per_switch = min_writes;
            let mut ctrl = DramCtrl::new(cfg).unwrap();
            let mut gen = DramAwareGen::new(spec.org, m, 1, 0, 8, 4, 50, 0, 10_000, 5);
            let s = t.run(&mut gen, &mut ctrl);
            table.row([
                format!("{hi:.1}/{lo:.1}"),
                min_writes.to_string(),
                f3(s.bus_util),
                f1(s.read_lat_ns.quantile(0.5).unwrap_or(0) as f64),
                f1(s.read_lat_ns.quantile(0.95).unwrap_or(0) as f64),
                ctrl.stats().bus_turnarounds.to_string(),
            ]);
        }
    }
    table.print();
}
