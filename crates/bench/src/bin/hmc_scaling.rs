//! Section III-D's closing observation — event-model simulation speed as
//! the channel count grows from 1 to 16 (an HMC-like cube is "only a
//! matter of combining the crossbar model with 16 instances of our
//! controller"). The event model's cost grows with *traffic*, not with
//! idle channels; a cycle model pays per channel per cycle.

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, timed, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_system::MultiChannel;
use dramctrl_traffic::{LinearGen, Tester};

fn main() {
    println!("HMC-like channel scaling (HBM channels, 100k linear requests)\n");
    let mut table = Table::new([
        "channels",
        "event s",
        "cycle s",
        "speedup",
        "aggregate GB/s",
    ]);
    let t = Tester::new(100_000, 1_000);
    for n in [1u32, 2, 4, 8, 16] {
        let mk_ev = || {
            MultiChannel::new(
                (0..n)
                    .map(|_| {
                        ev_ctrl(
                            presets::hbm_1000_x128(),
                            PagePolicy::Open,
                            AddrMapping::RoRaBaCoCh,
                            n,
                        )
                    })
                    .collect(),
                0,
            )
            .unwrap()
        };
        let mk_cy = || {
            MultiChannel::new(
                (0..n)
                    .map(|_| {
                        cy_ctrl(
                            presets::hbm_1000_x128(),
                            PagePolicy::Open,
                            AddrMapping::RoRaBaCoCh,
                            n,
                        )
                    })
                    .collect(),
                0,
            )
            .unwrap()
        };
        let (ev, ev_s) = timed(|| {
            let mut g = LinearGen::new(0, 1 << 30, 64, 67, 0, 100_000, 4);
            t.run(&mut g, &mut mk_ev())
        });
        let (_, cy_s) = timed(|| {
            let mut g = LinearGen::new(0, 1 << 30, 64, 67, 0, 100_000, 4);
            t.run(&mut g, &mut mk_cy())
        });
        table.row([
            n.to_string(),
            format!("{ev_s:.3}"),
            format!("{cy_s:.3}"),
            format!("{:.1}x", cy_s / ev_s),
            f1(ev.bandwidth_gbps),
        ]);
    }
    table.print();
}
