//! Extension study — the precharge power-down states the paper lists as
//! future work (Section II-G), exercised with duty-cycled traffic.
//!
//! A bursty workload (active windows separated by idle gaps) runs over
//! DDR3 and LPDDR3 with power-down disabled and enabled. Expected: at low
//! duty cycles power-down slashes background power (IDD2P vs IDD2N) for a
//! tiny latency tax (tXP on the first access of each window); at high
//! duty cycles it never engages and costs nothing.

use dramctrl::{CtrlConfig, DramCtrl};
use dramctrl_bench::{f1, f3, Table};
use dramctrl_mem::{presets, MemSpec};
use dramctrl_power::micron_power;
use dramctrl_traffic::{BurstyGen, LinearGen, Tester};

fn run(spec: &MemSpec, duty_pct: u64, powerdown: bool) -> (f64, f64, f64) {
    let window = 10_000_000u64; // 10 us macro-period
    let on = (window * duty_pct / 100).max(100_000);
    let off = window - on;
    // Inner stream: one 64 B access every 100 ns while "on".
    let n = 2_000;
    let inner = LinearGen::new(0, 64 << 20, 64, 80, 100_000, n, 1);
    let mut gen = BurstyGen::new(inner, on, off);

    let mut cfg = CtrlConfig::new(spec.clone());
    cfg.powerdown_idle = if powerdown { 500_000 } else { 0 }; // 500 ns
    let mut ctrl = DramCtrl::new(cfg).unwrap();
    let s = Tester::new(10_000, 500).run(&mut gen, &mut ctrl);
    let act = DramCtrl::activity(&mut ctrl, s.duration);
    let power = micron_power(spec, &act);
    (
        power.total_mw(),
        s.read_lat_ns.mean(),
        act.powered_down_fraction(),
    )
}

fn main() {
    println!("Low-power extension: duty-cycled traffic, 500 ns power-down threshold\n");
    for spec in [presets::ddr3_1600_x64(), presets::lpddr3_1600_x32()] {
        println!("{}:", spec.name);
        let mut t = Table::new([
            "duty %",
            "power off-PD (mW)",
            "power on-PD (mW)",
            "saved",
            "lat off (ns)",
            "lat on (ns)",
            "PD fraction",
        ]);
        for duty in [1u64, 5, 20, 50, 100] {
            let (p_off, l_off, _) = run(&spec, duty, false);
            let (p_on, l_on, frac) = run(&spec, duty, true);
            t.row([
                duty.to_string(),
                f1(p_off),
                f1(p_on),
                format!("{:.0}%", (1.0 - p_on / p_off) * 100.0),
                f1(l_off),
                f1(l_on),
                f3(frac),
            ]);
        }
        t.print();
        println!();
    }
}
