//! Figure 3 — bus utilisation vs sequential stride and banks targeted,
//! open-page policy, read-only traffic (paper Section III-C1).
//!
//! Expected shape: utilisation rises with stride (more row hits) and with
//! bank count (more parallelism), saturating around 90%+; the two models
//! track each other closely.

use dramctrl::PagePolicy;
use dramctrl_bench::sweep;
use dramctrl_mem::{presets, AddrMapping};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let strides: Vec<u64> = [1u64, 2, 4, 8, 16, 32, 64, 128].to_vec();
    let banks = [1u32, 2, 4, 8];
    let points = sweep::bandwidth(
        &spec,
        PagePolicy::Open,
        AddrMapping::RoRaBaCoCh,
        100,
        &strides,
        &banks,
        20_000,
    );
    sweep::print_points(
        "Figure 3: open page, reads — DDR3-1333, RoRaBaCoCh, FR-FCFS",
        &points,
    );
}
