//! CI gate for the instrumentation layer: runs the same short workload
//! once untraced and once with live Chrome-trace + epoch probes, then
//! asserts
//!
//! 1. the rendered statistics reports are **byte-identical** (the
//!    zero-perturbation guarantee, end to end through the CLI-visible
//!    surface),
//! 2. the emitted Perfetto JSON is a valid JSON document with at least
//!    one track per (rank, bank) plus request and per-rank power tracks,
//! 3. the epoch time-series is non-trivial and parseable.
//!
//! Exits non-zero on any violation. `--out FILE` writes the trace for
//! artifact upload; `--requests N` scales the workload.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_mem::presets;
use dramctrl_obs::{ChromeTracer, EpochRecorder};
use dramctrl_traffic::{RandomGen, Tester, TrafficGen};

fn main() {
    let mut requests: u64 = 20_000;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let spec = presets::ddr3_1333_x64();
    let mut cfg = CtrlConfig::new(spec.clone());
    cfg.page_policy = PagePolicy::OpenAdaptive;
    // Exercise the power-state tracks too.
    cfg.powerdown_idle = 500_000;
    let gen = || -> Box<dyn TrafficGen> {
        Box::new(RandomGen::new(0, 64 << 20, 64, 70, 0, requests, 42))
    };
    let tester = Tester::new(1_000_000, 1_000);

    // Untraced reference run.
    let mut plain = DramCtrl::new(cfg.clone()).expect("valid config");
    let s_plain = tester.run(&mut gen(), &mut plain);
    let stats_plain = plain.report("ctrl", s_plain.duration).to_json();

    // Traced run: Chrome tracer + 1 us epochs.
    let probe = (ChromeTracer::new(), EpochRecorder::new(1_000_000));
    let mut traced = DramCtrl::with_probe(cfg, probe).expect("valid config");
    let s_traced = tester.run(&mut gen(), &mut traced);
    let stats_traced = traced.report("ctrl", s_traced.duration).to_json();

    assert_eq!(
        s_plain.duration, s_traced.duration,
        "tracing changed the simulated duration"
    );
    assert!(
        stats_plain == stats_traced,
        "tracing perturbed the statistics report:\n--- untraced ---\n{stats_plain}\n--- traced ---\n{stats_traced}"
    );
    println!(
        "zero-perturbation: OK ({} stats bytes identical over {} requests)",
        stats_plain.len(),
        requests
    );

    let (tracer, mut epochs) = traced.into_probe();
    let trace_json = tracer.to_json();
    dramctrl_obs::json::validate(&trace_json)
        .unwrap_or_else(|e| panic!("Perfetto trace is not valid JSON: {e}"));
    for rank in 0..spec.org.ranks {
        for bank in 0..spec.org.banks {
            let track = format!("rank {rank} bank {bank}");
            assert!(
                trace_json.contains(&track),
                "trace is missing the {track} track"
            );
        }
        let power = format!("rank {rank} power");
        assert!(
            trace_json.contains(&power),
            "trace is missing the {power} track"
        );
    }
    assert!(
        trace_json.contains("\"requests\""),
        "trace is missing the request-flow track"
    );
    for needle in ["\"ACT\"", "\"PRE\"", "\"RD\"", "\"WR\"", "\"REF\""] {
        assert!(trace_json.contains(needle), "trace has no {needle} slices");
    }
    println!(
        "perfetto: OK ({} events, {} bytes, {} banks x {} ranks tracked)",
        tracer.event_count(),
        trace_json.len(),
        spec.org.banks,
        spec.org.ranks
    );

    epochs.finish(s_traced.duration);
    let rows = epochs.rows();
    assert!(
        rows.len() > 1,
        "expected multiple epochs, got {}",
        rows.len()
    );
    assert!(
        rows.iter().any(|r| r.bytes_read > 0),
        "no epoch recorded read traffic"
    );
    for line in epochs.to_jsonl().lines() {
        dramctrl_obs::json::validate(line).expect("valid epoch JSONL row");
    }
    println!("epochs: OK ({} rows)", rows.len());

    if let Some(path) = out {
        std::fs::write(&path, &trace_json).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        println!("wrote trace to {path}");
    }
}
