//! Section III-D — model performance: wall-clock speed of the event-based
//! model vs the cycle-based baseline on identical synthetic workloads.
//!
//! The paper reports 7x faster on average and up to 10x across synthetic
//! traffic, and an order of magnitude for a 16-channel (HMC-like) memory.
//! Absolute times are host-dependent; the *ratio* is the result. Criterion
//! benches (`cargo bench -p dramctrl-bench`) measure the same quantity
//! with statistical rigour.

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, timed, Table};
use dramctrl_mem::{presets, AddrMapping, MemSpec};
use dramctrl_system::MultiChannel;
use dramctrl_traffic::{DramAwareGen, LinearGen, RandomGen, Tester, TrafficGen};

/// Default request count per workload; override with `--requests <n>`.
const N: u64 = 200_000;

fn spec() -> MemSpec {
    presets::ddr3_1333_x64()
}

type GenFactory = Box<dyn Fn() -> Box<dyn TrafficGen>>;

fn workloads(n: u64) -> Vec<(&'static str, GenFactory, PagePolicy, AddrMapping)> {
    vec![
        (
            "linear reads",
            Box::new(move || {
                Box::new(LinearGen::new(0, 256 << 20, 64, 100, 0, n, 1)) as Box<dyn TrafficGen>
            }),
            PagePolicy::Open,
            AddrMapping::RoRaBaCoCh,
        ),
        (
            "random mixed",
            Box::new(move || {
                Box::new(RandomGen::new(0, 256 << 20, 64, 67, 0, n, 2)) as Box<dyn TrafficGen>
            }),
            PagePolicy::Open,
            AddrMapping::RoRaBaCoCh,
        ),
        (
            "dram-aware 8-bank",
            Box::new(move || {
                Box::new(DramAwareGen::new(
                    presets::ddr3_1333_x64().org,
                    AddrMapping::RoCoRaBaCh,
                    1,
                    0,
                    4,
                    8,
                    50,
                    0,
                    n,
                    3,
                )) as Box<dyn TrafficGen>
            }),
            PagePolicy::Closed,
            AddrMapping::RoCoRaBaCh,
        ),
    ]
}

fn main() {
    let mut n = N;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--requests" => {
                n = args
                    .next()
                    .expect("--requests needs a value")
                    .parse()
                    .expect("--requests takes a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    println!("Model performance (Section III-D) — {n} requests per workload\n");
    let t = Tester::new(100_000, 1_000);
    let mut table = Table::new(["workload", "event s", "cycle s", "speedup"]);
    let mut speedups = Vec::new();
    for (name, mk_gen, policy, mapping) in workloads(n) {
        let (_, ev_s) = timed(|| {
            let mut g = mk_gen();
            t.run(&mut g, &mut ev_ctrl(spec(), policy, mapping, 1))
        });
        let (_, cy_s) = timed(|| {
            let mut g = mk_gen();
            t.run(&mut g, &mut cy_ctrl(spec(), policy, mapping, 1))
        });
        speedups.push(cy_s / ev_s);
        table.row([
            name.to_string(),
            format!("{ev_s:.3}"),
            format!("{cy_s:.3}"),
            format!("{:.1}x", cy_s / ev_s),
        ]);
    }

    // 16-channel HMC-like configuration (Section III-D's closing claim).
    let mk_xbar_ev = || {
        MultiChannel::new(
            (0..16)
                .map(|_| {
                    ev_ctrl(
                        presets::hbm_1000_x128(),
                        PagePolicy::Open,
                        AddrMapping::RoRaBaCoCh,
                        16,
                    )
                })
                .collect(),
            0,
        )
        .unwrap()
    };
    let mk_xbar_cy = || {
        MultiChannel::new(
            (0..16)
                .map(|_| {
                    cy_ctrl(
                        presets::hbm_1000_x128(),
                        PagePolicy::Open,
                        AddrMapping::RoRaBaCoCh,
                        16,
                    )
                })
                .collect(),
            0,
        )
        .unwrap()
    };
    let (_, ev_s) = timed(|| {
        let mut g = LinearGen::new(0, 1 << 30, 64, 67, 0, n, 4);
        t.run(&mut g, &mut mk_xbar_ev())
    });
    let (_, cy_s) = timed(|| {
        let mut g = LinearGen::new(0, 1 << 30, 64, 67, 0, n, 4);
        t.run(&mut g, &mut mk_xbar_cy())
    });
    speedups.push(cy_s / ev_s);
    table.row([
        "16-channel HMC-like".to_string(),
        format!("{ev_s:.3}"),
        format!("{cy_s:.3}"),
        format!("{:.1}x", cy_s / ev_s),
    ]);

    table.print();
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\naverage speedup {}x, max {}x (paper: ~7x average, ~10x max, >10x for 16-channel)",
        f1(avg),
        f1(max)
    );
}
