//! Extension study — tiered memory capacity sweep (paper Section II-F's
//! heterogeneous-memory direction).
//!
//! A 4-core canneal run over a WideIO near tier backed by LPDDR3. The
//! measured result is non-monotonic — the best configuration sizes the
//! near tier to the hot data and keeps BOTH tiers' bandwidth in play;
//! pushing everything near forfeits the far channel. The memory system is
//! swapped without touching the controller model — the controller-centric
//! flexibility the paper demonstrates in Section IV-B, extended to
//! heterogeneous tiers.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_bench::{f1, f3, Table};
use dramctrl_kernel::tick;
use dramctrl_mem::{presets, Controller};
use dramctrl_system::{workload, MultiChannel, System, SystemConfig, TieredMemory};

fn near(channels: u32) -> MultiChannel<DramCtrl> {
    MultiChannel::new(
        (0..channels)
            .map(|_| {
                let mut cfg = CtrlConfig::new(presets::wideio_200_x128());
                cfg.channels = channels;
                cfg.page_policy = PagePolicy::OpenAdaptive;
                DramCtrl::new(cfg).expect("valid")
            })
            .collect(),
        0,
    )
    .expect("uniform")
}

fn far() -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::lpddr3_1600_x32());
    cfg.page_policy = PagePolicy::OpenAdaptive;
    DramCtrl::new(cfg).expect("valid")
}

fn main() {
    let cores = 4;
    let insts = 60_000;
    println!("Tiered memory: 2x WideIO near tier + LPDDR3 far tier, {cores}-core canneal\n");
    let mut table = Table::new(["near tier", "IPC", "L2 miss lat (ns)", "near share"]);
    // canneal per-core footprint is 48 MiB, rounded to 64 MiB regions:
    // 4 cores occupy 256 MiB.
    for near_mb in [16u64, 64, 128, 256] {
        let mem = TieredMemory::new(near(2), far(), near_mb << 20);
        let mut cfg = SystemConfig::table2(cores, insts);
        cfg.llc.size = 2 << 20;
        let mut sys = System::new(cfg, mem, &vec![workload::canneal(); cores], 42).expect("valid");
        let r = sys.run();
        let near_bursts = {
            let n = sys.controller().near().common_stats();
            n.rd_bursts + n.wr_bursts
        };
        let far_bursts = {
            let f = sys.controller().far().common_stats();
            f.rd_bursts + f.wr_bursts
        };
        table.row([
            format!("{near_mb} MiB"),
            f3(r.ipc),
            f1(tick::to_ns(r.llc_miss_lat.mean() as u64)),
            format!(
                "{:.0}%",
                near_bursts as f64 / (near_bursts + far_bursts).max(1) as f64 * 100.0
            ),
        ]);
    }
    table.print();
    println!("\n(The sweet spot SPLITS traffic across both tiers: a near tier sized");
    println!(" to the hot data wins, while an all-near placement throws away the");
    println!(" far tier's bandwidth and an all-far one queues behind one channel.)");
}
