//! Figure 6 — read-latency distribution for linear read-only traffic
//! under an open-page policy (paper Section III-C2).
//!
//! Expected shape: a tight, unimodal distribution for both models, with
//! closely matching means (latency measured from the traffic generator,
//! including on-chip queueing).

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{LinearGen, Tester};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let m = AddrMapping::RoRaBaCoCh;
    let mk_gen = || LinearGen::new(0, 64 << 20, 64, 100, 10_000, 20_000, 3);
    let t = Tester::new(1_000, 50); // 20 ns buckets

    let ev = t.run(
        &mut mk_gen(),
        &mut ev_ctrl(spec.clone(), PagePolicy::Open, m, 1),
    );
    let cy = t.run(
        &mut mk_gen(),
        &mut cy_ctrl(spec.clone(), PagePolicy::Open, m, 1),
    );

    println!("Figure 6: read latency distribution — linear reads, open page\n");
    let mut table = Table::new(["latency bucket (ns)", "event count", "cycle count"]);
    for ((lo, hi, e), (_, _, c)) in ev.read_lat_ns.iter().zip(cy.read_lat_ns.iter()) {
        if e > 0 || c > 0 {
            table.row([format!("[{lo:4}, {hi:4})"), e.to_string(), c.to_string()]);
        }
    }
    table.row([
        "overflow".to_string(),
        ev.read_lat_ns.overflow().to_string(),
        cy.read_lat_ns.overflow().to_string(),
    ]);
    table.print();
    println!(
        "\nmean: event {} ns, cycle {} ns; stddev: event {} ns, cycle {} ns",
        f1(ev.read_lat_ns.mean()),
        f1(cy.read_lat_ns.mean()),
        f1(ev.read_lat_ns.stddev()),
        f1(cy.read_lat_ns.stddev()),
    );
}
