//! Section III-C3 — power correlation between the two controller models.
//!
//! Both models feed the same Micron TN-41-01 power model with their own
//! activity statistics; the paper reports an average difference of ~3%
//! and a maximum of ~8% across all synthetic test cases.

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, f3, Table};
use dramctrl_mem::{presets, AddrMapping, Controller};
use dramctrl_power::micron_power;
use dramctrl_traffic::{DramAwareGen, Tester};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let cases: Vec<(u64, u32, u8, bool)> = vec![
        (1, 1, 100, true),
        (4, 2, 100, true),
        (16, 4, 100, true),
        (128, 8, 100, true),
        (16, 4, 50, true),
        (128, 8, 50, true),
        (1, 4, 0, true),
        (1, 1, 100, false),
        (4, 4, 100, false),
        (1, 8, 0, false),
        (16, 8, 50, false),
        (128, 8, 0, false),
    ];
    let t = Tester::new(100_000, 1_000);
    let mut table = Table::new([
        "stride", "banks", "read %", "page", "event mW", "cycle mW", "diff",
    ]);
    let mut max_diff: f64 = 0.0;
    let mut sum = 0.0;
    for &(stride, banks, rd, open) in &cases {
        let (policy, mapping) = if open {
            (PagePolicy::Open, AddrMapping::RoRaBaCoCh)
        } else {
            (PagePolicy::Closed, AddrMapping::RoCoRaBaCh)
        };
        let mk = || DramAwareGen::new(spec.org, mapping, 1, 0, stride, banks, rd, 0, 10_000, 11);
        let mut ev = ev_ctrl(spec.clone(), policy, mapping, 1);
        let es = t.run(&mut mk(), &mut ev);
        let ep = micron_power(&spec, &Controller::activity(&mut ev, es.duration)).total_mw();
        let mut cy = cy_ctrl(spec.clone(), policy, mapping, 1);
        let cs = t.run(&mut mk(), &mut cy);
        let cp = micron_power(&spec, &cy.activity(cs.duration)).total_mw();
        let diff = (ep - cp).abs() / cp;
        max_diff = max_diff.max(diff);
        sum += diff;
        table.row([
            stride.to_string(),
            banks.to_string(),
            rd.to_string(),
            if open { "open" } else { "closed" }.to_string(),
            f1(ep),
            f1(cp),
            format!("{:.1}%", diff * 100.0),
        ]);
    }
    println!("Power correlation (Section III-C3) — DDR3-1333, Micron model\n");
    table.print();
    println!(
        "\naverage difference: {}%, maximum: {}% (paper: ~3% avg, ~8% max)",
        f3(sum / cases.len() as f64 * 100.0),
        f3(max_diff * 100.0)
    );
}
