//! Ablation — QoS priorities (paper Section II-C: scheduling respects the
//! requestors' Quality-of-Service requirements).
//!
//! The adversarial case for a latency-sensitive requestor is a backlog of
//! *same-bank* row conflicts: FR-FCFS's first-ready-bank rule cannot dodge
//! them (every candidate waits on the same bank), so without QoS the
//! probe queues behind the whole backlog. With a higher priority it is
//! served first at near-unloaded latency.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_bench::{f1, Table};
use dramctrl_mem::{presets, AddrMapping, DramAddr, MemRequest, MemResponse, ReqId};
use dramctrl_stats::Average;

fn addr(bank: u32, row: u64) -> u64 {
    AddrMapping::RoRaBaCoCh.encode(
        &DramAddr {
            rank: 0,
            bank,
            row,
            col: 0,
        },
        0,
        &presets::ddr3_1333_x64().org,
        1,
    )
}

/// Average probe latency (ns) over many trials, each with a
/// `backlog`-deep same-bank conflict flood queued alongside the probe.
fn probe_latency(qos: bool, backlog: u64) -> f64 {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0;
    cfg.page_policy = PagePolicy::Open;
    if qos {
        cfg.qos_priorities = vec![0, 7];
    }
    let mut ctrl = DramCtrl::new(cfg).unwrap();
    let mut lat = Average::new();
    let mut out: Vec<MemResponse> = Vec::new();
    let mut t0 = 0u64;
    let mut id = 0u64;
    for trial in 0..200u64 {
        for i in 0..backlog {
            let row = trial * backlog + i + 1_000;
            let req = MemRequest::read(ReqId(id), addr(0, row), 64).with_source(0);
            id += 1;
            DramCtrl::try_send(&mut ctrl, req, t0).unwrap();
        }
        let probe = MemRequest::read(ReqId(id), addr(0, trial), 64).with_source(1);
        let probe_id = probe.id;
        id += 1;
        DramCtrl::try_send(&mut ctrl, probe, t0).unwrap();
        let end = DramCtrl::drain(&mut ctrl, &mut out);
        let resp = out
            .iter()
            .find(|r| r.id == probe_id)
            .expect("probe answered");
        lat.record((resp.ready_at - t0) as f64 / 1_000.0);
        out.clear();
        t0 = end + 1_000_000; // 1 us of silence between trials
    }
    lat.mean()
}

fn main() {
    println!("Ablation: QoS isolation under same-bank conflict backlogs (DDR3-1333)\n");
    let mut table = Table::new([
        "backlog depth",
        "probe lat, no QoS (ns)",
        "probe lat, QoS (ns)",
        "isolation",
    ]);
    for backlog in [4u64, 8, 16, 31] {
        let off = probe_latency(false, backlog);
        let on = probe_latency(true, backlog);
        table.row([
            backlog.to_string(),
            f1(off),
            f1(on),
            format!("{:.1}x", off / on),
        ]);
    }
    table.print();
    println!("\n(Without QoS the probe rides behind the whole bank backlog;");
    println!(" with priority 7 it is served first at near-unloaded latency.)");
}
