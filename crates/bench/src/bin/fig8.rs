//! Figure 8 — full-system comparison between the event-based model and
//! the cycle-based baseline on PARSEC-like workloads (paper Section IV-A).
//!
//! For each benchmark the bar is the *ratio* (cycle-based / event-based)
//! of: host simulation time, IPC, average LLC(L2) miss latency and DRAM
//! bus utilisation. Ratios near 1 mean the faster model loses no fidelity;
//! simulation-time ratios above 1 are the speed advantage. The paper saw
//! near-perfect correlation with a 13% average simulation-time reduction.

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, timed, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_system::{workload, System, SystemConfig};

fn main() {
    let cores = 4;
    let insts = 150_000u64;
    let warmup = 30_000u64;
    let policy = PagePolicy::Closed; // as in the paper's comparison
    let mapping = AddrMapping::RoCoRaBaCh;

    println!("Figure 8: event vs cycle model, {cores}-core PARSEC-like runs\n");
    let mut table = Table::new([
        "benchmark",
        "sim-time ratio",
        "IPC ratio",
        "L2-miss-lat ratio",
        "bus-util ratio",
    ]);
    let mut sums = [0.0f64; 4];
    let profiles = workload::parsec();
    for p in &profiles {
        let mut cfg = SystemConfig::table2(cores, insts);
        cfg.warmup_insts = warmup;
        let (ev, ev_s) = timed(|| {
            let ctrl = ev_ctrl(presets::ddr3_1333_x64(), policy, mapping, 1);
            let mut sys = System::new(cfg.clone(), ctrl, &vec![*p; cores], 42).unwrap();
            sys.run()
        });
        let (cy, cy_s) = timed(|| {
            let ctrl = cy_ctrl(presets::ddr3_1333_x64(), policy, mapping, 1);
            let mut sys = System::new(cfg.clone(), ctrl, &vec![*p; cores], 42).unwrap();
            sys.run()
        });
        let ratios = [
            cy_s / ev_s,
            cy.ipc / ev.ipc,
            cy.llc_miss_lat.mean() / ev.llc_miss_lat.mean(),
            (cy.dram.bus_utilisation(cy.roi_duration)) / (ev.dram.bus_utilisation(ev.roi_duration)),
        ];
        for (s, r) in sums.iter_mut().zip(ratios) {
            *s += r;
        }
        table.row([
            p.name.to_string(),
            format!("{:.2}", ratios[0]),
            format!("{:.3}", ratios[1]),
            format!("{:.3}", ratios[2]),
            format!("{:.3}", ratios[3]),
        ]);
    }
    let n = profiles.len() as f64;
    table.row([
        "geomean-ish (mean)".to_string(),
        format!("{:.2}", sums[0] / n),
        format!("{:.3}", sums[1] / n),
        format!("{:.3}", sums[2] / n),
        format!("{:.3}", sums[3] / n),
    ]);
    table.print();
    println!("\n(ratios of cycle-based / event-based; 1.0 = perfect correlation)");
}
