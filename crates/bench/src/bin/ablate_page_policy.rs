//! Ablation — the four page policies of Section II-C across row-hit-rate
//! regimes (the design choices DESIGN.md calls out).
//!
//! Expected: open policies win on high-locality traffic, closed policies
//! win on single-access-per-row traffic, and the adaptive variants are
//! never (much) worse than the better of the two static ones.

use dramctrl::PagePolicy;
use dramctrl_bench::{ev_ctrl, f1, f3, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{DramAwareGen, Tester};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let m = AddrMapping::RoRaBaCoCh;
    let policies = [
        PagePolicy::Open,
        PagePolicy::OpenAdaptive,
        PagePolicy::Closed,
        PagePolicy::ClosedAdaptive,
    ];
    println!("Ablation: page policies (DDR3-1333, FR-FCFS, 4 banks, 1:1 mix)\n");
    let mut table = Table::new([
        "stride (bursts)",
        "policy",
        "bus util",
        "avg read lat (ns)",
        "row-hit rate",
    ]);
    let t = Tester::new(100_000, 1_000);
    for stride in [1u64, 4, 32, 128] {
        for policy in policies {
            let mut gen = DramAwareGen::new(spec.org, m, 1, 0, stride, 4, 50, 0, 10_000, 5);
            let mut ctrl = ev_ctrl(spec.clone(), policy, m, 1);
            let s = t.run(&mut gen, &mut ctrl);
            table.row([
                stride.to_string(),
                policy.to_string(),
                f3(s.bus_util),
                f1(s.read_lat_ns.mean()),
                f3(s.ctrl.page_hit_rate()),
            ]);
        }
    }
    table.print();
}
