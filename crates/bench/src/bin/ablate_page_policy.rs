//! Ablation — the four page policies of Section II-C across row-hit-rate
//! regimes (the design choices DESIGN.md calls out).
//!
//! Expected: open policies win on high-locality traffic, closed policies
//! win on single-access-per-row traffic, and the adaptive variants are
//! never (much) worse than the better of the two static ones.
//!
//! Runs as a `dramctrl-campaign` sweep: policies × strides expand into
//! one parallel campaign instead of a bespoke serial loop.

use dramctrl::PagePolicy;
use dramctrl_bench::{f1, f3, run_job, Table};
use dramctrl_campaign::{run_campaign, Campaign, ExecutorConfig, Progress, TrafficPattern};

fn main() {
    let policies = [
        PagePolicy::Open,
        PagePolicy::OpenAdaptive,
        PagePolicy::Closed,
        PagePolicy::ClosedAdaptive,
    ];
    let strides = [1u64, 4, 32, 128];
    let campaign = Campaign::new("ablate-page-policy", 5)
        .policies(policies)
        .traffic(strides.map(|stride| TrafficPattern::DramAware { stride, banks: 4 }))
        .read_pcts([50])
        .requests([10_000]);
    let report = run_campaign(
        &campaign,
        &ExecutorConfig::default().with_progress(Progress::Stderr),
        run_job,
    );

    println!("Ablation: page policies (DDR3-1333, FR-FCFS, 4 banks, 1:1 mix)\n");
    let mut table = Table::new([
        "stride (bursts)",
        "policy",
        "bus util",
        "avg read lat (ns)",
        "row-hit rate",
    ]);
    for stride in strides {
        for policy in policies {
            let traffic = TrafficPattern::DramAware { stride, banks: 4 };
            let (_, m) = report
                .find(|j| j.policy == policy && j.traffic == traffic)
                .expect("job completed");
            table.row([
                stride.to_string(),
                policy.to_string(),
                f3(m.get("bus_util").unwrap()),
                f1(m.get("avg_read_lat_ns").unwrap()),
                f3(m.get("row_hit_rate").unwrap()),
            ]);
        }
    }
    table.print();
}
