//! Figure 9 — memory sensitivity and read-latency breakdown for a 16-core
//! canneal run on three memory technologies (paper Section IV-B).
//!
//! DDR3 (1x64-bit), LPDDR3 (2x32-bit) and WideIO (4x128-bit) all offer
//! 12.8 GB/s peak (Table IV); the controller model is identical — only
//! timings and organisation differ (the controller-centric flexibility
//! that is the point of the case study). The latency breakdown splits the
//! average read latency inside the controller into queueing, bank access,
//! data-bus and static components.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_bench::{f1, f3, Table};
use dramctrl_kernel::tick;
use dramctrl_mem::{presets, AddrMapping, Controller, MemSpec};
use dramctrl_power::micron_power;
use dramctrl_system::{workload, MultiChannel, System, SystemConfig};

fn ctrl_for(spec: MemSpec, channels: u32) -> MultiChannel<DramCtrl> {
    let ctrls = (0..channels)
        .map(|_| {
            let mut cfg = CtrlConfig::new(spec.clone());
            cfg.channels = channels;
            cfg.page_policy = PagePolicy::Open; // Table III
            cfg.mapping = AddrMapping::RoRaBaCoCh;
            cfg.read_buffer_size = 20; // Table III: 20-entry buffers
            cfg.write_buffer_size = 20;
            DramCtrl::new(cfg).expect("valid")
        })
        .collect();
    MultiChannel::new(ctrls, 0).expect("uniform channels")
}

fn main() {
    let cores = 16;
    let insts = 60_000u64;
    let memories: [(&str, MemSpec, u32); 3] = [
        ("DDR3 1x64", presets::ddr3_1600_x64(), 1),
        ("LPDDR3 2x32", presets::lpddr3_1600_x32(), 2),
        ("WideIO 4x128", presets::wideio_200_x128(), 4),
    ];

    println!("Figure 9: 16-core canneal over three 12.8 GB/s memory systems\n");
    let mut perf = Table::new([
        "memory",
        "IPC",
        "L2 miss lat (ns)",
        "avg bus util",
        "DRAM power (W)",
    ]);
    let mut brk = Table::new([
        "memory",
        "queue (ns)",
        "bank (ns)",
        "bus (ns)",
        "static (ns)",
    ]);
    // Shared LLC of 8 MB as in the paper's case study.
    let mut cfg = SystemConfig::table2(cores, insts);
    cfg.llc.size = 8 << 20;

    for (name, spec, channels) in memories {
        let xbar = ctrl_for(spec.clone(), channels);
        let mut sys = System::new(cfg.clone(), xbar, &vec![workload::canneal(); cores], 42)
            .expect("valid system");
        let r = sys.run();
        let power = {
            let act = sys.controller_mut().activity(r.duration);
            micron_power(&spec, &act).total_mw() / 1_000.0 * f64::from(channels)
        };
        perf.row([
            name.to_string(),
            f3(r.ipc),
            f1(tick::to_ns(r.llc_miss_lat.mean() as u64)),
            f3(r.dram.bus_utilisation(r.duration) / f64::from(channels)),
            f3(power),
        ]);

        // Latency breakdown, averaged over channels (weighted by bursts).
        let (mut q, mut b, mut total_bursts) = (0.0, 0.0, 0u64);
        for ch in 0..channels as usize {
            let s = sys.controller().channel(ch).stats();
            let n = s.rd_bursts;
            q += s.queue_lat.mean() * n as f64;
            b += s.bank_lat.mean() * n as f64;
            total_bursts += n;
        }
        let n = total_bursts.max(1) as f64;
        brk.row([
            name.to_string(),
            f1(tick::to_ns((q / n) as u64)),
            f1(tick::to_ns((b / n) as u64)),
            f1(tick::to_ns(spec.timing.t_burst)),
            "0.0".to_string(), // front/backend latencies are zero here
        ]);
    }
    perf.print();
    println!("\nRead latency breakdown inside the controller:\n");
    brk.print();
}
