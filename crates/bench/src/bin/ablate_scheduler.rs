//! Ablation — FCFS vs FR-FCFS (paper Section II-C: FCFS "merely included
//! for comparison"; FR-FCFS is the representative baseline).
//!
//! Expected: on random traffic with bank parallelism available, FR-FCFS's
//! row-hit-first / first-ready-bank selection clearly beats in-order
//! service; on purely sequential single-bank traffic they coincide.
//!
//! Runs as a `dramctrl-campaign` sweep: workloads × schedulers expand
//! into one parallel campaign instead of a bespoke serial loop.

use dramctrl::SchedPolicy;
use dramctrl_bench::{f1, f3, run_job, Table};
use dramctrl_campaign::{run_campaign, Campaign, ExecutorConfig, Progress, TrafficPattern};

fn main() {
    let workloads = [
        (
            "sequential 1-bank",
            TrafficPattern::Linear {
                range: 8 << 10,
                block: 64,
            },
        ),
        (
            "random",
            TrafficPattern::Random {
                range: 256 << 20,
                block: 64,
            },
        ),
        (
            "interleaved rows, 8 banks",
            TrafficPattern::DramAware {
                stride: 2,
                banks: 8,
            },
        ),
    ];
    let scheds = [SchedPolicy::Fcfs, SchedPolicy::FrFcfs];
    let campaign = Campaign::new("ablate-scheduler", 5)
        .scheds(scheds)
        .traffic(workloads.map(|(_, p)| p))
        .requests([10_000]);
    let report = run_campaign(
        &campaign,
        &ExecutorConfig::default().with_progress(Progress::Stderr),
        run_job,
    );

    println!("Ablation: FCFS vs FR-FCFS (DDR3-1333, open page)\n");
    let mut table = Table::new([
        "traffic",
        "scheduler",
        "bus util",
        "avg read lat (ns)",
        "row-hit rate",
    ]);
    for (name, pattern) in workloads {
        for sched in scheds {
            let (_, m) = report
                .find(|j| j.sched == sched && j.traffic == pattern)
                .expect("job completed");
            table.row([
                name.to_string(),
                sched.to_string(),
                f3(m.get("bus_util").unwrap()),
                f1(m.get("avg_read_lat_ns").unwrap()),
                f3(m.get("row_hit_rate").unwrap()),
            ]);
        }
    }
    table.print();
}
