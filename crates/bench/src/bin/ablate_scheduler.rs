//! Ablation — FCFS vs FR-FCFS (paper Section II-C: FCFS "merely included
//! for comparison"; FR-FCFS is the representative baseline).
//!
//! Expected: on random traffic with bank parallelism available, FR-FCFS's
//! row-hit-first / first-ready-bank selection clearly beats in-order
//! service; on purely sequential single-bank traffic they coincide.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy, SchedPolicy};
use dramctrl_bench::{f1, f3, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{DramAwareGen, LinearGen, RandomGen, Tester, TrafficGen};

fn ctrl(sched: SchedPolicy) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.scheduling = sched;
    cfg.page_policy = PagePolicy::Open;
    DramCtrl::new(cfg).unwrap()
}

fn main() {
    println!("Ablation: FCFS vs FR-FCFS (DDR3-1333, open page)\n");
    let mut table = Table::new([
        "traffic",
        "scheduler",
        "bus util",
        "avg read lat (ns)",
        "row-hit rate",
    ]);
    let t = Tester::new(200_000, 1_000);
    let workloads: Vec<(&str, Box<dyn Fn() -> Box<dyn TrafficGen>>)> = vec![
        (
            "sequential 1-bank",
            Box::new(|| Box::new(LinearGen::new(0, 8 << 10, 64, 100, 0, 10_000, 5))),
        ),
        (
            "random",
            Box::new(|| Box::new(RandomGen::new(0, 256 << 20, 64, 100, 0, 10_000, 5))),
        ),
        (
            "interleaved rows, 8 banks",
            Box::new(|| {
                Box::new(DramAwareGen::new(
                    presets::ddr3_1333_x64().org,
                    AddrMapping::RoRaBaCoCh,
                    1,
                    0,
                    2,
                    8,
                    100,
                    0,
                    10_000,
                    5,
                ))
            }),
        ),
    ];
    for (name, mk) in &workloads {
        for sched in [SchedPolicy::Fcfs, SchedPolicy::FrFcfs] {
            let mut gen = mk();
            let s = t.run(&mut gen, &mut ctrl(sched));
            table.row([
                name.to_string(),
                sched.to_string(),
                f3(s.bus_util),
                f1(s.read_lat_ns.mean()),
                f3(s.ctrl.page_hit_rate()),
            ]);
        }
    }
    table.print();
}
