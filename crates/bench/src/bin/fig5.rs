//! Figure 5 — bus utilisation with write-only traffic under a closed-page
//! policy (paper Section III-C1).
//!
//! Expected shape: utilisation *decreases* with stride (sequential bursts
//! keep reopening the row the policy just closed) and improves with bank
//! parallelism; the event model's buffered write drain gives it a wider
//! reorder window than the interleaving baseline at high bank counts.

use dramctrl::PagePolicy;
use dramctrl_bench::sweep;
use dramctrl_mem::{presets, AddrMapping};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let strides: Vec<u64> = [1u64, 2, 4, 8, 16, 32, 64, 128].to_vec();
    let banks = [1u32, 2, 4, 8];
    let points = sweep::bandwidth(
        &spec,
        PagePolicy::Closed,
        AddrMapping::RoCoRaBaCh,
        0,
        &strides,
        &banks,
        20_000,
    );
    sweep::print_points(
        "Figure 5: closed page, writes — DDR3-1333, RoCoRaBaCh, FR-FCFS",
        &points,
    );
}
