//! Figure 7 — read-latency distribution for linear 1:1 read/write traffic
//! under a closed-page policy (paper Section III-C2).
//!
//! Expected shape: the event-based model's write-drain scheme splits reads
//! into two populations — serviced immediately, or stalled behind a drain
//! episode — producing the paper's bimodal distribution. The cycle-based
//! baseline interleaves reads and writes, spreading the cost as bus
//! turnarounds instead (higher mean, different shape).

use dramctrl::PagePolicy;
use dramctrl_bench::{cy_ctrl, ev_ctrl, f1, Table};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{LinearGen, Tester};

fn main() {
    let spec = presets::ddr3_1333_x64();
    let m = AddrMapping::RoCoRaBaCh;
    let mk_gen = || LinearGen::new(0, 64 << 20, 64, 50, 10_000, 20_000, 3);
    let t = Tester::new(2_000, 100); // 20 ns buckets

    let ev = t.run(
        &mut mk_gen(),
        &mut ev_ctrl(spec.clone(), PagePolicy::Closed, m, 1),
    );
    let cy = t.run(
        &mut mk_gen(),
        &mut cy_ctrl(spec.clone(), PagePolicy::Closed, m, 1),
    );

    println!("Figure 7: read latency distribution — linear 1:1 mix, closed page\n");
    let mut table = Table::new(["latency bucket (ns)", "event count", "cycle count"]);
    for ((lo, hi, e), (_, _, c)) in ev.read_lat_ns.iter().zip(cy.read_lat_ns.iter()) {
        if e > 0 || c > 0 {
            table.row([format!("[{lo:4}, {hi:4})"), e.to_string(), c.to_string()]);
        }
    }
    table.print();
    let (e10, e90) = (
        ev.read_lat_ns.quantile(0.1).unwrap(),
        ev.read_lat_ns.quantile(0.9).unwrap(),
    );
    println!(
        "\nmean: event {} ns, cycle {} ns",
        f1(ev.read_lat_ns.mean()),
        f1(cy.read_lat_ns.mean()),
    );
    println!("event model spread (write drain): p10 = {e10} ns, p90 = {e90} ns");
}
