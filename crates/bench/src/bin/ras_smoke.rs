//! CI gate for the RAS subsystem: exercises fault injection, ECC and
//! retry on **both** controller models and asserts
//!
//! 1. a fault-free (`ras: None` vs zero-rate `RasConfig`) run is
//!    **byte-identical** through the CLI-visible report surface on both
//!    models — the zero-cost guarantee,
//! 2. a short faulty run at single-bit rates under SEC-DED corrects a
//!    nonzero number of errors and goes silent only on the modelled
//!    multi-symbol syndrome alias (never on a single-symbol fault),
//!    again on both models,
//! 3. a run with link errors retries and still completes every request,
//! 4. seeded faulty runs are byte-for-byte deterministic.
//!
//! Exits non-zero on any violation. `--out FILE` writes the faulty-run
//! RAS stats JSON for artifact upload; `--requests N` scales the
//! workload.

use dramctrl::{CtrlConfig, DramCtrl, EccMode, PagePolicy, RasConfig};
use dramctrl_cycle::{CycleConfig, CycleCtrl};
use dramctrl_mem::{presets, Controller};
use dramctrl_traffic::{RandomGen, Tester, TrafficGen};

/// Drops ras_* entries and per-line JSON closers so fault-free reports
/// can be compared against unarmed ones.
fn strip_ras(json: &str) -> String {
    json.lines()
        .filter(|l| !l.contains("\"ras_"))
        .map(|l| l.trim_end_matches("]}").trim_end_matches(','))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let mut requests: u64 = 20_000;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let spec = presets::ddr3_1333_x64();
    let gen = || -> Box<dyn TrafficGen> {
        Box::new(RandomGen::new(0, 64 << 20, 64, 70, 0, requests, 42))
    };
    let tester = Tester::new(1_000_000, 1_000);

    // 1. Fault-free transparency, both models.
    {
        let mut cfg = CtrlConfig::new(spec.clone());
        cfg.page_policy = PagePolicy::OpenAdaptive;
        let mut armed_cfg = cfg.clone();
        armed_cfg.ras = Some(RasConfig::new(7)); // all rates zero
        let mut plain = DramCtrl::new(cfg).expect("valid config");
        let mut armed = DramCtrl::new(armed_cfg).expect("valid config");
        let sp = tester.run(&mut gen(), &mut plain);
        let sa = tester.run(&mut gen(), &mut armed);
        assert_eq!(sp.duration, sa.duration, "event: RAS changed the duration");
        let jp = plain.report("ctrl", sp.duration).to_json();
        let ja = armed.report("ctrl", sa.duration).to_json();
        assert_eq!(
            strip_ras(&jp),
            strip_ras(&ja),
            "event: zero-rate RAS perturbed the report"
        );

        let cy_cfg = CycleConfig::new(spec.clone());
        let mut cy_armed_cfg = cy_cfg.clone();
        cy_armed_cfg.ras = Some(RasConfig::new(7));
        let mut cy_plain = CycleCtrl::new(cy_cfg).expect("valid config");
        let mut cy_armed = CycleCtrl::new(cy_armed_cfg).expect("valid config");
        let sp = tester.run(&mut gen(), &mut cy_plain);
        let sa = tester.run(&mut gen(), &mut cy_armed);
        assert_eq!(sp.duration, sa.duration, "cycle: RAS changed the duration");
        assert_eq!(
            strip_ras(&cy_plain.report("ctrl", sp.duration).to_json()),
            strip_ras(&cy_armed.report("ctrl", sa.duration).to_json()),
            "cycle: zero-rate RAS perturbed the report"
        );
        println!("fault-free transparency: OK on both models ({requests} requests)");
    }

    // 2 + 4. Faulty runs at single-bit rates under SEC-DED, both models:
    // corrected > 0, silent == 0, deterministic across repeats.
    let ras = RasConfig::from_error_rate(2e11, 0xBEEF).with_ecc(EccMode::SecDed);
    let run_ev = || {
        let mut cfg = CtrlConfig::new(spec.clone());
        cfg.page_policy = PagePolicy::OpenAdaptive;
        cfg.ras = Some(ras.clone());
        let mut ctrl = DramCtrl::new(cfg).expect("valid config");
        let s = tester.run(&mut gen(), &mut ctrl);
        let report = ctrl.report("ctrl", s.duration);
        let log = ctrl.fault_model().expect("armed").log_text();
        (report, log)
    };
    let run_cy = || {
        let mut cfg = CycleConfig::new(spec.clone());
        cfg.ras = Some(ras.clone());
        let mut ctrl = CycleCtrl::new(cfg).expect("valid config");
        let s = tester.run(&mut gen(), &mut ctrl);
        let report = ctrl.report("ctrl", s.duration);
        let log = ctrl.fault_model().expect("armed").log_text();
        (report, log)
    };
    let mut stats_artifact = String::new();
    type FaultyRun<'a> = &'a dyn Fn() -> (dramctrl_stats::Report, String);
    for (model, run) in [
        ("event", &run_ev as FaultyRun),
        ("cycle", &run_cy as FaultyRun),
    ] {
        let (r1, log1) = run();
        let (r2, log2) = run();
        assert_eq!(
            r1.to_json(),
            r2.to_json(),
            "{model}: faulty run not deterministic"
        );
        assert_eq!(log1, log2, "{model}: fault log not deterministic");
        let corrected = r1.get("ras_corrected").expect("ras_corrected in report");
        let silent = r1.get("ras_silent").expect("ras_silent in report");
        let rank_failures = r1.get("ras_rank_failures").unwrap_or(0.0);
        assert!(corrected > 0.0, "{model}: SEC-DED corrected no errors");
        // SEC-DED never misses a single-symbol fault; the only silent
        // outcomes allowed are the modelled 1-in-16 syndrome alias on
        // multi-symbol rank failures.
        assert!(
            silent <= rank_failures,
            "{model}: {silent} silent events but only {rank_failures} rank failures — \
             a single-symbol fault escaped SEC-DED"
        );
        println!(
            "faulty run ({model}): OK ({corrected} corrected, {silent} silent of \
             {rank_failures} multi-symbol, {} log lines)",
            log1.lines().count()
        );
        stats_artifact.push_str(&r1.to_json());
    }

    // 3. Link errors: bounded retry completes every request.
    {
        let mut link = RasConfig::new(0x5EED);
        link.link_error_rate = 0.02;
        let mut cfg = CtrlConfig::new(spec.clone());
        cfg.ras = Some(link.clone());
        let mut ctrl = DramCtrl::new(cfg).expect("valid config");
        let s = tester.run(&mut gen(), &mut ctrl);
        assert_eq!(
            s.reads_completed + s.writes_completed + s.dropped,
            requests,
            "event: link-error retries lost requests"
        );
        let r = ctrl.report("ctrl", s.duration);
        assert!(
            r.get("ras_retries").expect("ras_retries") > 0.0,
            "event: no retries at a 2% link error rate"
        );
        println!(
            "link retries (event): OK ({} retries, every request completed)",
            r.get("ras_retries").unwrap()
        );
    }

    if let Some(path) = out {
        std::fs::write(&path, &stats_artifact).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        println!("wrote RAS stats to {path}");
    }
}
