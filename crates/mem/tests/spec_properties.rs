//! Cross-preset invariants: every device specification the library ships
//! must be internally consistent and survive the derived-geometry maths.

use dramctrl_kernel::rng::Rng;
use dramctrl_mem::{presets, AddrMapping, MemCmd, MemRequest, MemResponse, ReqId};

#[test]
fn presets_have_power_of_two_geometry() {
    for spec in presets::all() {
        let o = &spec.org;
        assert!(o.burst_bytes().is_power_of_two(), "{}", spec.name);
        assert!(o.row_buffer_bytes().is_power_of_two(), "{}", spec.name);
        assert!(o.bursts_per_row().is_power_of_two(), "{}", spec.name);
        assert!(o.rows_per_bank().is_power_of_two(), "{}", spec.name);
        assert!(o.banks.is_power_of_two(), "{}", spec.name);
    }
}

#[test]
fn presets_timing_orderings() {
    for spec in presets::all() {
        let t = &spec.timing;
        let n = spec.name;
        assert!(t.t_ras >= t.t_rcd, "{n}: tRAS covers tRCD");
        assert!(t.t_xaw >= t.t_rrd, "{n}: window at least one tRRD");
        assert!(t.t_refi == 0 || t.t_refi > t.t_rfc, "{n}: tREFI > tRFC");
        assert!(t.t_xs >= t.t_xp, "{n}: self-refresh exit dominates tXP");
        assert!(t.t_burst % t.t_ck == 0, "{n}: whole-cycle bursts");
    }
}

#[test]
fn presets_idd_orderings() {
    for spec in presets::all() {
        let i = &spec.idd;
        let n = spec.name;
        assert!(i.idd6 < i.idd2p || i.idd6 < i.idd2n, "{n}: IDD6 deepest");
        assert!(i.idd2p < i.idd2n, "{n}: power-down below standby");
        assert!(i.idd2n < i.idd3n, "{n}: precharge below active standby");
        assert!(i.idd4r > i.idd3n && i.idd4w > i.idd3n, "{n}: bursts cost");
        assert!(i.vdd > 0.0, "{n}");
    }
}

/// Channel routing and decode agree for every preset, mapping and
/// channel count: the routed channel's decode round-trips through
/// encode with that channel.
#[test]
fn routing_and_decode_consistent() {
    let mut rng = Rng::seed_from_u64(0x57EC_0001);
    let n_presets = presets::all().len() as u64;
    for _ in 0..1_024 {
        let spec = presets::all()[rng.gen_range(0..n_presets) as usize].clone();
        let m = [
            AddrMapping::RoRaBaCoCh,
            AddrMapping::RoRaBaChCo,
            AddrMapping::RoCoRaBaCh,
        ][rng.gen_range(0..3) as usize];
        let channels = rng.gen_range(1..5) as u32;
        let raw = rng.gen_range(0..1 << 30);
        let g = m.interleave_granularity(&spec.org);
        let addr = raw / g * g % (spec.org.capacity_bytes() * u64::from(channels));
        let ch = m.channel_of(addr, &spec.org, channels);
        assert!(ch < channels);
        let da = m.decode(addr, &spec.org, channels);
        let back = m.encode(&da, ch, &spec.org, channels);
        assert_eq!(back, addr, "{} {}", spec.name, m);
    }
}

/// Burst-granule neighbours within one interleave granule always land
/// in the same channel (lines never straddle channels).
#[test]
fn lines_never_straddle_channels() {
    let mut rng = Rng::seed_from_u64(0x57EC_0002);
    let n_presets = presets::all().len() as u64;
    for _ in 0..1_024 {
        let spec = presets::all()[rng.gen_range(0..n_presets) as usize].clone();
        let channels = rng.gen_range(2..5) as u32;
        let line = rng.gen_range(0..1 << 22);
        let m = AddrMapping::RoRaBaCoCh;
        let base = line * 64;
        let ch = m.channel_of(base, &spec.org, channels);
        for off in [0u64, 16, 32, 63] {
            assert_eq!(m.channel_of(base + off, &spec.org, channels), ch);
        }
    }
}

#[test]
fn request_response_round_trip_fields() {
    let req = MemRequest {
        id: ReqId(42),
        cmd: MemCmd::Write,
        addr: 0xdead_b000,
        size: 128,
        source: 9,
    };
    let resp = MemResponse::to(&req, 1_000);
    assert_eq!(resp.id, req.id);
    assert_eq!(resp.cmd, req.cmd);
    assert_eq!(resp.addr, req.addr);
    assert_eq!(resp.source, req.source);
    assert_eq!(resp.ready_at, 1_000);
}
