//! Shared memory-system types for the `dramctrl` simulator family.
//!
//! This crate holds everything that is common between the event-based
//! controller ([`dramctrl`](https://docs.rs/dramctrl)), the cycle-based
//! baseline, the traffic generators and the system model:
//!
//! * [`packet`] — memory requests and responses as exchanged between
//!   masters (cores, traffic generators) and slaves (controllers) over
//!   transaction-level ports;
//! * [`spec`] — DRAM device descriptions: organisation (widths, burst
//!   length, banks, ranks, row-buffer size) and the timing parameters the
//!   paper identifies as performance-critical (Section II-B);
//! * [`map`] — the three address decoding schemes of Table I
//!   (`RoRaBaCoCh`, `RoRaBaChCo`, `RoCoRaBaCh`) with encode/decode in burst
//!   units;
//! * [`presets`] — ready-made specs for DDR3, DDR4, LPDDR2/3, WideIO,
//!   GDDR5 and HBM, including the exact Table IV configurations used in the
//!   paper's future-system case study.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod coverage;
pub mod ctrl_if;
pub mod map;
pub mod packet;
pub mod presets;
pub mod snapio;
pub mod spec;

pub use activity::ActivityStats;
pub use coverage::WriteCoverage;
pub use ctrl_if::{CommonStats, Controller, Rejected};
pub use map::{degraded_capacity_bytes, remap_rank, AddrMapping, DramAddr};
pub use packet::{MemCmd, MemRequest, MemResponse, ReqId};
pub use spec::{IddCurrents, MemSpec, Organisation, Timing};
