//! Snapshot codecs for the shared packet types.
//!
//! Both controller models hold [`MemRequest`]s and [`MemResponse`]s in
//! their dynamic state (burst groups, pending acks), so the byte layout of
//! a checkpointed packet lives here, next to the types, rather than being
//! duplicated per controller.

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapWriter};

use crate::map::DramAddr;
use crate::packet::{MemCmd, MemRequest, MemResponse, ReqId};

fn cmd_tag(cmd: MemCmd) -> u8 {
    match cmd {
        MemCmd::Read => 0,
        MemCmd::Write => 1,
    }
}

fn cmd_from_tag(t: u8) -> Result<MemCmd, SnapError> {
    match t {
        0 => Ok(MemCmd::Read),
        1 => Ok(MemCmd::Write),
        _ => Err(SnapError::Corrupt(format!("memory command tag {t}"))),
    }
}

/// Writes a request's fields.
pub fn save_request(w: &mut SnapWriter, req: &MemRequest) {
    w.u64(req.id.0);
    w.u8(cmd_tag(req.cmd));
    w.u64(req.addr);
    w.u32(req.size);
    w.u16(req.source);
}

/// Reads a request written by [`save_request`].
///
/// # Errors
/// Propagates truncation and rejects unknown command tags.
pub fn read_request(r: &mut SnapReader<'_>) -> Result<MemRequest, SnapError> {
    Ok(MemRequest {
        id: ReqId(r.u64()?),
        cmd: cmd_from_tag(r.u8()?)?,
        addr: r.u64()?,
        size: r.u32()?,
        source: r.u16()?,
    })
}

/// Writes a response's fields.
pub fn save_response(w: &mut SnapWriter, resp: &MemResponse) {
    w.u64(resp.id.0);
    w.u8(cmd_tag(resp.cmd));
    w.u64(resp.addr);
    w.u16(resp.source);
    w.u64(resp.ready_at);
}

/// Reads a response written by [`save_response`].
///
/// # Errors
/// Propagates truncation and rejects unknown command tags.
pub fn read_response(r: &mut SnapReader<'_>) -> Result<MemResponse, SnapError> {
    Ok(MemResponse {
        id: ReqId(r.u64()?),
        cmd: cmd_from_tag(r.u8()?)?,
        addr: r.u64()?,
        source: r.u16()?,
        ready_at: r.u64()?,
    })
}

/// Writes a decoded DRAM address.
pub fn save_addr(w: &mut SnapWriter, da: &DramAddr) {
    w.u32(da.rank);
    w.u32(da.bank);
    w.u64(da.row);
    w.u64(da.col);
}

/// Reads an address written by [`save_addr`].
///
/// # Errors
/// Propagates truncation.
pub fn read_addr(r: &mut SnapReader<'_>) -> Result<DramAddr, SnapError> {
    Ok(DramAddr {
        rank: r.u32()?,
        bank: r.u32()?,
        row: r.u64()?,
        col: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_codecs_round_trip() {
        let req = MemRequest {
            id: ReqId(7),
            cmd: MemCmd::Write,
            addr: 0xdead_beef,
            size: 64,
            source: 3,
        };
        let resp = MemResponse::to(&req, 123_456);
        let da = DramAddr {
            rank: 1,
            bank: 5,
            row: 42,
            col: 9,
        };
        let mut w = SnapWriter::new(0);
        save_request(&mut w, &req);
        save_response(&mut w, &resp);
        save_addr(&mut w, &da);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, 0).unwrap();
        assert_eq!(read_request(&mut r).unwrap(), req);
        assert_eq!(read_response(&mut r).unwrap(), resp);
        assert_eq!(read_addr(&mut r).unwrap(), da);
        assert!(r.is_exhausted());
    }
}
