//! Ready-made DRAM device specifications.
//!
//! Three groups:
//!
//! * [`ddr3_1333_x64`] — the validation device of paper Section III
//!   (2 Gbit, 8 x8 devices, 666 MHz), matched against the DRAMSim2-style
//!   baseline;
//! * [`ddr3_1600_x64`], [`lpddr3_1600_x32`], [`wideio_200_x128`] — the
//!   exact Table IV configurations used in the future-system case study
//!   (Section IV-B): one 64-bit DDR3 channel, two 32-bit LPDDR3 channels or
//!   four 128-bit WideIO channels, all peaking at 12.8 GB/s;
//! * [`ddr4_2400_x64`], [`lpddr2_1066_x32`], [`gddr5_4000_x64`],
//!   [`hbm_1000_x128`] — additional interfaces demonstrating the model's
//!   controller-centric flexibility (Section II: "the difference between
//!   LPDDR and DDR is only distinguished by their timings and DRAM
//!   organisations").
//!
//! IDD currents follow datasheet classes for each technology; absolute
//! power is approximate, but both controller models consume the same values
//! so the *comparisons* (Section III-C3) are meaningful.
//!
//! Note on `t_refi`: the paper's Table IV prints refresh intervals of
//! 7.8/15/35 for DDR3/LPDDR3/WideIO; these are microseconds (the standard
//! DDR3 interval is 7.8 us) and are encoded as such here.

use crate::spec::{IddCurrents, MemSpec, Organisation, Timing};
use dramctrl_kernel::tick::{from_ns, from_us};

/// DDR3-1333: the validation device of Section III — 2 Gbit, 8 x8 devices
/// forming a 64-bit rank at 666 MHz (1333 MT/s). 8 KB logical row buffer.
pub fn ddr3_1333_x64() -> MemSpec {
    MemSpec {
        name: "DDR3-1333-x64",
        org: Organisation {
            device_bus_width: 8,
            burst_length: 8,
            device_rowbuffer_bytes: 1024,
            devices_per_rank: 8,
            ranks: 1,
            banks: 8,
            device_capacity_mbit: 2048,
        },
        timing: Timing {
            t_ck: from_ns(1.5),
            t_burst: from_ns(6.0),
            t_rcd: from_ns(13.5),
            t_cl: from_ns(13.5),
            t_rp: from_ns(13.5),
            t_ras: from_ns(36.0),
            t_wr: from_ns(15.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(6.0),
            t_xaw: from_ns(30.0),
            activation_limit: 4,
            t_wtr: from_ns(7.5),
            t_rtw: from_ns(3.0),
            t_rfc: from_ns(160.0),
            t_xp: from_ns(7.5),
            t_xs: from_ns(170.0),
            t_refi: from_us(7.8),
        },
        idd: IddCurrents {
            vdd: 1.5,
            idd0: 95.0,
            idd2p: 12.0,
            idd2n: 42.0,
            idd3n: 45.0,
            idd4r: 180.0,
            idd4w: 185.0,
            idd5: 215.0,
            idd6: 1.5,
        },
    }
}

/// DDR3-1600, one 64-bit channel — paper Table IV, first column.
pub fn ddr3_1600_x64() -> MemSpec {
    MemSpec {
        name: "DDR3-1600-x64",
        org: Organisation {
            device_bus_width: 64,
            burst_length: 8,
            device_rowbuffer_bytes: 1024,
            devices_per_rank: 1,
            ranks: 1,
            banks: 8,
            device_capacity_mbit: 16 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(1.25),
            t_burst: from_ns(5.0),
            t_rcd: from_ns(13.75),
            t_cl: from_ns(13.75),
            t_rp: from_ns(13.75),
            t_ras: from_ns(35.0),
            t_wr: from_ns(15.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(6.25),
            t_xaw: from_ns(40.0),
            activation_limit: 4,
            t_wtr: from_ns(7.5),
            t_rtw: from_ns(2.5),
            t_rfc: from_ns(300.0),
            t_xp: from_ns(7.5),
            t_xs: from_ns(310.0),
            t_refi: from_us(7.8),
        },
        idd: IddCurrents {
            vdd: 1.5,
            idd0: 75.0,
            idd2p: 10.0,
            idd2n: 35.0,
            idd3n: 40.0,
            idd4r: 157.0,
            idd4w: 165.0,
            idd5: 220.0,
            idd6: 1.2,
        },
    }
}

/// LPDDR3-1600, one 32-bit channel — paper Table IV, second column.
/// Two such channels match the DDR3 configuration's 12.8 GB/s.
pub fn lpddr3_1600_x32() -> MemSpec {
    MemSpec {
        name: "LPDDR3-1600-x32",
        org: Organisation {
            device_bus_width: 32,
            burst_length: 8,
            device_rowbuffer_bytes: 1024,
            devices_per_rank: 1,
            ranks: 1,
            banks: 8,
            device_capacity_mbit: 8 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(1.25),
            t_burst: from_ns(5.0),
            t_rcd: from_ns(15.0),
            t_cl: from_ns(15.0),
            t_rp: from_ns(15.0),
            t_ras: from_ns(42.0),
            t_wr: from_ns(15.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(10.0),
            t_xaw: from_ns(50.0),
            activation_limit: 4,
            t_wtr: from_ns(7.5),
            t_rtw: from_ns(2.5),
            t_rfc: from_ns(130.0),
            t_xp: from_ns(7.5),
            t_xs: from_ns(140.0),
            t_refi: from_us(15.0),
        },
        idd: IddCurrents {
            vdd: 1.2,
            idd0: 25.0,
            idd2p: 1.2,
            idd2n: 8.0,
            idd3n: 12.0,
            idd4r: 150.0,
            idd4w: 150.0,
            idd5: 100.0,
            idd6: 0.5,
        },
    }
}

/// WideIO SDR-200, one 128-bit channel — paper Table IV, third column.
/// Four such channels match the DDR3 configuration's 12.8 GB/s.
pub fn wideio_200_x128() -> MemSpec {
    MemSpec {
        name: "WideIO-200-x128",
        org: Organisation {
            device_bus_width: 128,
            burst_length: 4,
            device_rowbuffer_bytes: 4096,
            devices_per_rank: 1,
            ranks: 1,
            banks: 4,
            device_capacity_mbit: 4 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(5.0),
            t_burst: from_ns(20.0),
            t_rcd: from_ns(18.0),
            t_cl: from_ns(18.0),
            t_rp: from_ns(18.0),
            t_ras: from_ns(42.0),
            t_wr: from_ns(15.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(10.0),
            t_xaw: from_ns(50.0),
            activation_limit: 2,
            t_wtr: from_ns(15.0),
            t_rtw: from_ns(10.0),
            t_rfc: from_ns(210.0),
            t_xp: from_ns(10.0),
            t_xs: from_ns(220.0),
            t_refi: from_us(35.0),
        },
        idd: IddCurrents {
            vdd: 1.2,
            idd0: 12.0,
            idd2p: 0.6,
            idd2n: 3.0,
            idd3n: 5.0,
            idd4r: 115.0,
            idd4w: 115.0,
            idd5: 60.0,
            idd6: 0.3,
        },
    }
}

/// DDR4-2400, one 64-bit channel (bank groups are intentionally not
/// modelled, as in the paper; 16 flat banks approximate the parallelism).
pub fn ddr4_2400_x64() -> MemSpec {
    MemSpec {
        name: "DDR4-2400-x64",
        org: Organisation {
            device_bus_width: 8,
            burst_length: 8,
            device_rowbuffer_bytes: 1024,
            devices_per_rank: 8,
            ranks: 1,
            banks: 16,
            device_capacity_mbit: 8 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(0.833),
            t_burst: from_ns(3.332),
            t_rcd: from_ns(14.16),
            t_cl: from_ns(14.16),
            t_rp: from_ns(14.16),
            t_ras: from_ns(32.0),
            t_wr: from_ns(15.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(4.9),
            t_xaw: from_ns(21.0),
            activation_limit: 4,
            t_wtr: from_ns(7.5),
            t_rtw: from_ns(1.666),
            t_rfc: from_ns(350.0),
            t_xp: from_ns(6.0),
            t_xs: from_ns(360.0),
            t_refi: from_us(7.8),
        },
        idd: IddCurrents {
            vdd: 1.2,
            idd0: 58.0,
            idd2p: 6.0,
            idd2n: 30.0,
            idd3n: 40.0,
            idd4r: 145.0,
            idd4w: 125.0,
            idd5: 190.0,
            idd6: 2.0,
        },
    }
}

/// LPDDR2-S4-1066, one 32-bit channel (mobile baseline).
pub fn lpddr2_1066_x32() -> MemSpec {
    MemSpec {
        name: "LPDDR2-1066-x32",
        org: Organisation {
            device_bus_width: 32,
            burst_length: 4,
            device_rowbuffer_bytes: 1024,
            devices_per_rank: 1,
            ranks: 1,
            banks: 8,
            device_capacity_mbit: 4 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(1.876),
            t_burst: from_ns(3.752),
            t_rcd: from_ns(15.0),
            t_cl: from_ns(15.0),
            t_rp: from_ns(18.0),
            t_ras: from_ns(42.0),
            t_wr: from_ns(15.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(10.0),
            t_xaw: from_ns(50.0),
            activation_limit: 4,
            t_wtr: from_ns(7.5),
            t_rtw: from_ns(3.752),
            t_rfc: from_ns(130.0),
            t_xp: from_ns(7.5),
            t_xs: from_ns(140.0),
            t_refi: from_us(3.9),
        },
        idd: IddCurrents {
            vdd: 1.2,
            idd0: 20.0,
            idd2p: 1.5,
            idd2n: 7.0,
            idd3n: 10.0,
            idd4r: 130.0,
            idd4w: 130.0,
            idd5: 90.0,
            idd6: 0.6,
        },
    }
}

/// GDDR5-4000, one 64-bit channel (two x32 devices) — a high-bandwidth
/// graphics interface.
pub fn gddr5_4000_x64() -> MemSpec {
    MemSpec {
        name: "GDDR5-4000-x64",
        org: Organisation {
            device_bus_width: 32,
            burst_length: 8,
            device_rowbuffer_bytes: 2048,
            devices_per_rank: 2,
            ranks: 1,
            banks: 16,
            device_capacity_mbit: 2 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(1.0),
            t_burst: from_ns(2.0),
            t_rcd: from_ns(12.0),
            t_cl: from_ns(12.0),
            t_rp: from_ns(12.0),
            t_ras: from_ns(28.0),
            t_wr: from_ns(12.0),
            t_rtp: from_ns(2.0),
            t_rrd: from_ns(6.0),
            t_xaw: from_ns(23.0),
            activation_limit: 4,
            t_wtr: from_ns(5.0),
            t_rtw: from_ns(2.0),
            t_rfc: from_ns(65.0),
            t_xp: from_ns(8.0),
            t_xs: from_ns(75.0),
            t_refi: from_us(3.9),
        },
        idd: IddCurrents {
            vdd: 1.5,
            idd0: 90.0,
            idd2p: 20.0,
            idd2n: 45.0,
            idd3n: 60.0,
            idd4r: 230.0,
            idd4w: 240.0,
            idd5: 240.0,
            idd6: 5.0,
        },
    }
}

/// HBM gen-1, one 128-bit pseudo-channel at 500 MHz DDR. Sixteen such
/// channels behind a crossbar approximate an HMC-like stacked cube
/// (Section II-F).
pub fn hbm_1000_x128() -> MemSpec {
    MemSpec {
        name: "HBM-1000-x128",
        org: Organisation {
            device_bus_width: 128,
            burst_length: 4,
            device_rowbuffer_bytes: 2048,
            devices_per_rank: 1,
            ranks: 1,
            banks: 8,
            device_capacity_mbit: 2 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(2.0),
            t_burst: from_ns(4.0),
            t_rcd: from_ns(15.0),
            t_cl: from_ns(15.0),
            t_rp: from_ns(15.0),
            t_ras: from_ns(33.0),
            t_wr: from_ns(18.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(4.0),
            t_xaw: from_ns(30.0),
            activation_limit: 4,
            t_wtr: from_ns(7.5),
            t_rtw: from_ns(4.0),
            t_rfc: from_ns(160.0),
            t_xp: from_ns(8.0),
            t_xs: from_ns(170.0),
            t_refi: from_us(3.9),
        },
        idd: IddCurrents {
            vdd: 1.2,
            idd0: 15.0,
            idd2p: 1.5,
            idd2n: 4.0,
            idd3n: 6.0,
            idd4r: 120.0,
            idd4w: 120.0,
            idd5: 70.0,
            idd6: 0.5,
        },
    }
}

/// LPDDR4-3200, one 32-bit channel — a post-paper mobile interface,
/// included for the "future system exploration" the model is built for
/// (BL16, so a whole 64-byte line is one burst on a 32-bit channel).
pub fn lpddr4_3200_x32() -> MemSpec {
    MemSpec {
        name: "LPDDR4-3200-x32",
        org: Organisation {
            device_bus_width: 32,
            burst_length: 16,
            device_rowbuffer_bytes: 2048,
            devices_per_rank: 1,
            ranks: 1,
            banks: 8,
            device_capacity_mbit: 8 * 1024,
        },
        timing: Timing {
            t_ck: from_ns(0.625),
            t_burst: from_ns(5.0),
            t_rcd: from_ns(18.0),
            t_cl: from_ns(17.1),
            t_rp: from_ns(18.0),
            t_ras: from_ns(42.0),
            t_wr: from_ns(18.0),
            t_rtp: from_ns(7.5),
            t_rrd: from_ns(10.0),
            t_xaw: from_ns(40.0),
            activation_limit: 4,
            t_wtr: from_ns(10.0),
            t_rtw: from_ns(2.5),
            t_rfc: from_ns(180.0),
            t_xp: from_ns(7.5),
            t_xs: from_ns(190.0),
            t_refi: from_us(3.9),
        },
        idd: IddCurrents {
            vdd: 1.1,
            idd0: 20.0,
            idd2p: 0.8,
            idd2n: 5.0,
            idd3n: 8.0,
            idd4r: 140.0,
            idd4w: 140.0,
            idd5: 90.0,
            idd6: 0.4,
        },
    }
}

/// Looks up a preset by its `name` field (e.g. `"DDR3-1333-x64"`).
pub fn by_name(name: &str) -> Option<MemSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// All presets, for exhaustive sweeps in tests and benchmarks.
pub fn all() -> Vec<MemSpec> {
    vec![
        ddr3_1333_x64(),
        ddr3_1600_x64(),
        lpddr3_1600_x32(),
        wideio_200_x128(),
        ddr4_2400_x64(),
        lpddr2_1066_x32(),
        gddr5_4000_x64(),
        hbm_1000_x128(),
        lpddr4_3200_x32(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_kernel::tick::from_ns;

    #[test]
    fn every_preset_is_valid() {
        for spec in all() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn preset_names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }

    /// Paper Table IV: the three case-study memories all peak at 12.8 GB/s
    /// once channel counts are applied (1x DDR3, 2x LPDDR3, 4x WideIO).
    #[test]
    fn table4_channels_match_12_8_gbps() {
        assert!((ddr3_1600_x64().peak_bandwidth_gbps() * 1.0 - 12.8).abs() < 0.1);
        assert!((lpddr3_1600_x32().peak_bandwidth_gbps() * 2.0 - 12.8).abs() < 0.1);
        assert!((wideio_200_x128().peak_bandwidth_gbps() * 4.0 - 12.8).abs() < 0.1);
    }

    /// Paper Table IV timing rows, asserted verbatim.
    #[test]
    fn table4_timings_verbatim() {
        let (d, l, w) = (ddr3_1600_x64(), lpddr3_1600_x32(), wideio_200_x128());
        // Bus width / burst length / row buffer / banks.
        assert_eq!(
            [
                d.org.bus_width_bits(),
                l.org.bus_width_bits(),
                w.org.bus_width_bits()
            ],
            [64, 32, 128]
        );
        assert_eq!(
            [d.org.burst_length, l.org.burst_length, w.org.burst_length],
            [8, 8, 4]
        );
        assert_eq!(
            [
                d.org.row_buffer_bytes(),
                l.org.row_buffer_bytes(),
                w.org.row_buffer_bytes()
            ],
            [1024, 1024, 4096]
        );
        assert_eq!([d.org.banks, l.org.banks, w.org.banks], [8, 8, 4]);
        // Timings.
        assert_eq!(
            [d.timing.t_rcd, l.timing.t_rcd, w.timing.t_rcd],
            [from_ns(13.75), from_ns(15.0), from_ns(18.0)]
        );
        assert_eq!(
            [d.timing.t_ras, l.timing.t_ras, w.timing.t_ras],
            [from_ns(35.0), from_ns(42.0), from_ns(42.0)]
        );
        assert_eq!(
            [d.timing.t_burst, l.timing.t_burst, w.timing.t_burst],
            [from_ns(5.0), from_ns(5.0), from_ns(20.0)]
        );
        assert_eq!(
            [d.timing.t_rfc, l.timing.t_rfc, w.timing.t_rfc],
            [from_ns(300.0), from_ns(130.0), from_ns(210.0)]
        );
        assert_eq!(
            [d.timing.t_wtr, l.timing.t_wtr, w.timing.t_wtr],
            [from_ns(7.5), from_ns(7.5), from_ns(15.0)]
        );
        assert_eq!(
            [d.timing.t_rrd, l.timing.t_rrd, w.timing.t_rrd],
            [from_ns(6.25), from_ns(10.0), from_ns(10.0)]
        );
        assert_eq!(
            [d.timing.t_xaw, l.timing.t_xaw, w.timing.t_xaw],
            [from_ns(40.0), from_ns(50.0), from_ns(50.0)]
        );
        assert_eq!(
            [
                d.timing.activation_limit,
                l.timing.activation_limit,
                w.timing.activation_limit
            ],
            [4, 4, 2]
        );
    }

    /// The three case-study configurations have equal total capacity, so
    /// the same physical address space fits all of them.
    #[test]
    fn table4_capacities_match() {
        let ddr3 = ddr3_1600_x64().org.capacity_bytes();
        let lpddr3 = 2 * lpddr3_1600_x32().org.capacity_bytes();
        let wideio = 4 * wideio_200_x128().org.capacity_bytes();
        assert_eq!(ddr3, lpddr3);
        assert_eq!(ddr3, wideio);
    }

    #[test]
    fn lpddr4_line_is_one_burst() {
        let s = lpddr4_3200_x32();
        assert_eq!(s.org.burst_bytes(), 64);
        assert!((s.peak_bandwidth_gbps() - 12.8).abs() < 0.1);
    }

    #[test]
    fn gddr5_is_fastest_preset() {
        let max = all()
            .iter()
            .map(|s| s.peak_bandwidth_gbps())
            .fold(0.0f64, f64::max);
        assert_eq!(max, gddr5_4000_x64().peak_bandwidth_gbps());
    }
}
