//! Memory requests and responses.
//!
//! The simulators exchange transaction-level packets, mirroring gem5's port
//! interface (paper Section II-F): a master issues a [`MemRequest`] and, for
//! reads, eventually receives a [`MemResponse`]. Writes are acknowledged
//! early by the controller (Section II-A), so masters generally treat a
//! write as complete once it is accepted.

use dramctrl_kernel::Tick;

/// Unique identifier of a request, assigned by the issuing master.
///
/// Responses carry the id of the request they answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl std::fmt::Display for ReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The command carried by a memory packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemCmd {
    /// Read `size` bytes from `addr`.
    Read,
    /// Write `size` bytes to `addr`.
    Write,
}

impl MemCmd {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, MemCmd::Read)
    }

    /// Whether this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, MemCmd::Write)
    }
}

/// A transaction-level memory request.
///
/// The request does not carry data — the simulators model timing and
/// resource contention, not values, exactly as the paper's controller does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Master-assigned identifier, echoed in the response.
    pub id: ReqId,
    /// Read or write.
    pub cmd: MemCmd,
    /// Physical byte address.
    pub addr: u64,
    /// Size in bytes. May be smaller or larger than the DRAM burst size;
    /// the controller chops/merges as needed (Section II-A).
    pub size: u32,
    /// Index of the issuing master port, used by interconnects to route the
    /// response back.
    pub source: u16,
}

impl MemRequest {
    /// Creates a read request.
    pub fn read(id: ReqId, addr: u64, size: u32) -> Self {
        Self {
            id,
            cmd: MemCmd::Read,
            addr,
            size,
            source: 0,
        }
    }

    /// Creates a write request.
    pub fn write(id: ReqId, addr: u64, size: u32) -> Self {
        Self {
            id,
            cmd: MemCmd::Write,
            addr,
            size,
            source: 0,
        }
    }

    /// Returns a copy tagged with the given source port.
    pub fn with_source(mut self, source: u16) -> Self {
        self.source = source;
        self
    }

    /// The exclusive end address of the request.
    pub fn end_addr(&self) -> u64 {
        self.addr + u64::from(self.size)
    }
}

/// A transaction-level memory response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Identifier of the request being answered.
    pub id: ReqId,
    /// The original command.
    pub cmd: MemCmd,
    /// The original address.
    pub addr: u64,
    /// Source port of the original request (for routing).
    pub source: u16,
    /// Tick at which the response leaves the responder.
    pub ready_at: Tick,
}

impl MemResponse {
    /// Builds the response answering `req` at time `ready_at`.
    pub fn to(req: &MemRequest, ready_at: Tick) -> Self {
        Self {
            id: req.id,
            cmd: req.cmd,
            addr: req.addr,
            source: req.source,
            ready_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_command() {
        let r = MemRequest::read(ReqId(1), 0x40, 64);
        assert!(r.cmd.is_read());
        assert!(!r.cmd.is_write());
        let w = MemRequest::write(ReqId(2), 0x80, 32);
        assert!(w.cmd.is_write());
        assert_eq!(w.end_addr(), 0x80 + 32);
    }

    #[test]
    fn response_echoes_request() {
        let r = MemRequest::read(ReqId(7), 0x1000, 64).with_source(3);
        let resp = MemResponse::to(&r, 42);
        assert_eq!(resp.id, ReqId(7));
        assert_eq!(resp.addr, 0x1000);
        assert_eq!(resp.source, 3);
        assert_eq!(resp.ready_at, 42);
    }

    #[test]
    fn req_id_displays() {
        assert_eq!(ReqId(9).to_string(), "req#9");
    }
}
