//! Address decoding schemes (paper Table I).
//!
//! The controller decodes a physical address into rank, bank, row and
//! column; channel interleaving happens *outside* the controller, in the
//! crossbar (Section II-A). The mapping name lists the fields from most to
//! least significant, so the last field changes fastest with sequential
//! addresses:
//!
//! * `RoRaBaCoCh` — channel bits at the bottom, columns above: sequential
//!   addresses sweep channels and then columns of the same row, maximising
//!   row-buffer hits (used with open-page policies, Section III-B);
//! * `RoRaBaChCo` — a whole row per channel; channel interleaving at
//!   row-buffer granularity;
//! * `RoCoRaBaCh` — banks and ranks just above the channel bits:
//!   sequential addresses sweep banks, maximising bank-level parallelism
//!   (used with closed-page policies).
//!
//! Columns are addressed in *burst* units: the low `log2(burst_bytes)` bits
//! of the address are the byte offset within a burst and carry no decode
//! information.

use crate::spec::Organisation;

/// The three address decoding schemes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddrMapping {
    /// Row-Rank-Bank-Column-Channel (channel fastest; row-hit friendly).
    #[default]
    RoRaBaCoCh,
    /// Row-Rank-Bank-Channel-Column (row-buffer-granularity interleaving).
    RoRaBaChCo,
    /// Row-Column-Rank-Bank-Channel (bank-parallelism friendly).
    RoCoRaBaCh,
}

impl std::fmt::Display for AddrMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AddrMapping::RoRaBaCoCh => "RoRaBaCoCh",
            AddrMapping::RoRaBaChCo => "RoRaBaChCo",
            AddrMapping::RoCoRaBaCh => "RoCoRaBaCh",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for AddrMapping {
    type Err = String;

    /// Parses a mapping name case-insensitively; round-trips
    /// [`Display`](std::fmt::Display).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "rorabacoch" => Ok(AddrMapping::RoRaBaCoCh),
            "rorabachco" => Ok(AddrMapping::RoRaBaChCo),
            "rocorabach" => Ok(AddrMapping::RoCoRaBaCh),
            other => Err(format!(
                "unknown mapping '{other}' (RoRaBaCoCh, RoRaBaChCo, RoCoRaBaCh)"
            )),
        }
    }
}

/// A decoded DRAM address (channel handled separately by the crossbar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramAddr {
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column index within the row, in burst units.
    pub col: u64,
}

impl DramAddr {
    /// Flat index of the (rank, bank) pair, useful for per-bank arrays.
    pub fn bank_id(&self, org: &Organisation) -> usize {
        (self.rank * org.banks + self.bank) as usize
    }
}

impl AddrMapping {
    /// The granularity at which the crossbar interleaves channels for this
    /// mapping: one DRAM burst — but never less than a 64-byte cache line,
    /// so whole lines stay within one channel and the *controller* chops
    /// them into sub-line bursts (paper Section II-A) — for the `..Ch`
    /// mappings, and a whole row buffer for `RoRaBaChCo`.
    pub fn interleave_granularity(self, org: &Organisation) -> u64 {
        match self {
            AddrMapping::RoRaBaCoCh | AddrMapping::RoCoRaBaCh => {
                org.burst_bytes().max(MIN_CHANNEL_GRANULE)
            }
            AddrMapping::RoRaBaChCo => org.row_buffer_bytes(),
        }
    }

    /// The channel an address routes to.
    pub fn channel_of(self, addr: u64, org: &Organisation, channels: u32) -> u32 {
        ((addr / self.interleave_granularity(org)) % u64::from(channels)) as u32
    }

    /// Removes the channel bits from `addr`, producing the address as seen
    /// inside one channel.
    fn strip_channel(self, addr: u64, org: &Organisation, channels: u32) -> u64 {
        let g = self.interleave_granularity(org);
        let ch = u64::from(channels);
        (addr / (g * ch)) * g + addr % g
    }

    /// Inserts channel bits into a channel-local address — the inverse of
    /// [`strip_channel`](Self::strip_channel).
    fn insert_channel(self, local: u64, channel: u32, org: &Organisation, channels: u32) -> u64 {
        let g = self.interleave_granularity(org);
        let ch = u64::from(channels);
        (local / g) * g * ch + u64::from(channel) * g + local % g
    }

    /// Decodes a physical byte address into rank/bank/row/column.
    ///
    /// `channels` is the number of interleaved channels; the channel bits
    /// (at [`interleave_granularity`](Self::interleave_granularity)) are
    /// skipped during decode — the crossbar routed the packet here.
    /// Addresses beyond the channel capacity wrap in the row field.
    pub fn decode(self, addr: u64, org: &Organisation, channels: u32) -> DramAddr {
        let local = self.strip_channel(addr, org, channels);
        let burst = org.burst_bytes();
        let cols = org.bursts_per_row();
        let banks = u64::from(org.banks);
        let ranks = u64::from(org.ranks);
        let rows = org.rows_per_bank();

        let mut a = local / burst;
        match self {
            AddrMapping::RoRaBaCoCh | AddrMapping::RoRaBaChCo => {
                // With the channel bits stripped, both row-hit-friendly
                // mappings order the fields identically: Co lowest.
                let col = a % cols;
                a /= cols;
                let bank = (a % banks) as u32;
                a /= banks;
                let rank = (a % ranks) as u32;
                a /= ranks;
                DramAddr {
                    rank,
                    bank,
                    row: a % rows,
                    col,
                }
            }
            AddrMapping::RoCoRaBaCh => {
                // Bank bits lowest (above any intra-granule columns), so
                // sequential granules sweep banks.
                let sub = a % (self.interleave_granularity(org) / burst).max(1);
                a /= (self.interleave_granularity(org) / burst).max(1);
                let bank = (a % banks) as u32;
                a /= banks;
                let rank = (a % ranks) as u32;
                a /= ranks;
                let stripes = cols / (self.interleave_granularity(org) / burst).max(1);
                let col_hi = a % stripes;
                a /= stripes;
                DramAddr {
                    rank,
                    bank,
                    row: a % rows,
                    col: col_hi * (self.interleave_granularity(org) / burst).max(1) + sub,
                }
            }
        }
    }

    /// Encodes rank/bank/row/column (and a channel) back into a physical
    /// byte address — the inverse of [`AddrMapping::decode`]. Used by the
    /// DRAM-aware traffic generator to construct addresses that target
    /// specific banks and rows (paper Section III-A).
    ///
    /// # Panics
    /// Panics (in debug builds) if any field exceeds the organisation's
    /// limits.
    pub fn encode(self, da: &DramAddr, channel: u32, org: &Organisation, channels: u32) -> u64 {
        debug_assert!(da.col < org.bursts_per_row());
        debug_assert!(da.bank < org.banks);
        debug_assert!(da.rank < org.ranks);
        debug_assert!(da.row < org.rows_per_bank());
        debug_assert!(channel < channels);

        let burst = org.burst_bytes();
        let cols = org.bursts_per_row();
        let banks = u64::from(org.banks);
        let ranks = u64::from(org.ranks);
        let (rank, bank, row, col) = (u64::from(da.rank), u64::from(da.bank), da.row, da.col);

        let a = match self {
            AddrMapping::RoRaBaCoCh | AddrMapping::RoRaBaChCo => {
                ((row * ranks + rank) * banks + bank) * cols + col
            }
            AddrMapping::RoCoRaBaCh => {
                let gb = (self.interleave_granularity(org) / burst).max(1);
                let (col_hi, sub) = (col / gb, col % gb);
                let stripes = cols / gb;
                (((row * stripes + col_hi) * ranks + rank) * banks + bank) * gb + sub
            }
        };
        self.insert_channel(a * burst, channel, org, channels)
    }
}

/// Minimum channel-interleaving granule for the burst-interleaved
/// mappings: one cache line, so a line never straddles channels even on
/// narrow (sub-line-burst) interfaces like LPDDR3 x32.
pub const MIN_CHANNEL_GRANULE: u64 = 64;

/// Redirects a decoded rank around offlined ranks (bit `r` of
/// `offline_mask` set = rank `r` offline): the first live rank at or
/// (cyclically) after `rank`. With every rank offline the rank is
/// returned unchanged — the caller guarantees at least one survivor.
///
/// This is the RAS graceful-degradation hook: after a hard rank failure
/// the controller keeps decoding addresses with the normal mapping and
/// then folds the dead rank's traffic onto the survivors, trading
/// capacity (see [`degraded_capacity_bytes`]) for availability.
pub fn remap_rank(rank: u32, offline_mask: u32, ranks: u32) -> u32 {
    if ranks == 0 || offline_mask.count_ones() >= ranks {
        return rank;
    }
    let mut r = rank % ranks;
    while offline_mask & (1 << r) != 0 {
        r = (r + 1) % ranks;
    }
    r
}

/// The usable channel capacity in bytes once the ranks in `offline_mask`
/// have been offlined — the capacity loss a degraded channel surfaces to
/// the rest of the system.
pub fn degraded_capacity_bytes(org: &Organisation, offline_mask: u32) -> u64 {
    let offline = u64::from(offline_mask.count_ones().min(org.ranks));
    let ranks = u64::from(org.ranks);
    org.capacity_bytes() / ranks * (ranks - offline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use dramctrl_kernel::rng::Rng;

    fn org() -> Organisation {
        presets::ddr3_1333_x64().org
    }

    const ALL: [AddrMapping; 3] = [
        AddrMapping::RoRaBaCoCh,
        AddrMapping::RoRaBaChCo,
        AddrMapping::RoCoRaBaCh,
    ];

    #[test]
    fn sequential_addresses_hit_same_row_with_rorabacoch() {
        let org = org();
        let m = AddrMapping::RoRaBaCoCh;
        let first = m.decode(0, &org, 1);
        // A full row's worth of sequential bursts stays in (rank0, bank0).
        for i in 0..org.bursts_per_row() {
            let d = m.decode(i * org.burst_bytes(), &org, 1);
            assert_eq!((d.rank, d.bank, d.row), (first.rank, first.bank, first.row));
            assert_eq!(d.col, i);
        }
        // The next burst moves to another bank (row change only after all
        // banks are swept).
        let next = m.decode(org.row_buffer_bytes(), &org, 1);
        assert_ne!(next.bank, first.bank);
    }

    #[test]
    fn sequential_addresses_sweep_banks_with_rocorabach() {
        let org = org();
        let m = AddrMapping::RoCoRaBaCh;
        for i in 0..u64::from(org.banks) {
            let d = m.decode(i * org.burst_bytes(), &org, 1);
            assert_eq!(d.bank, i as u32);
            assert_eq!(d.col, 0);
        }
        // After sweeping all banks the column advances.
        let d = m.decode(u64::from(org.banks) * org.burst_bytes(), &org, 1);
        assert_eq!(d.bank, 0);
        assert_eq!(d.col, 1);
    }

    #[test]
    fn channel_interleaving_granularity() {
        let org = org();
        assert_eq!(
            AddrMapping::RoRaBaCoCh.interleave_granularity(&org),
            org.burst_bytes()
        );
        assert_eq!(
            AddrMapping::RoRaBaChCo.interleave_granularity(&org),
            org.row_buffer_bytes()
        );
        // Four channels, burst interleaved: bursts round-robin channels.
        for i in 0..8u64 {
            let ch = AddrMapping::RoRaBaCoCh.channel_of(i * org.burst_bytes(), &org, 4);
            assert_eq!(u64::from(ch), i % 4);
        }
    }

    #[test]
    fn decode_ignores_byte_offset_within_burst() {
        let org = org();
        for m in ALL {
            let a = m.decode(0x1_2345_0000, &org, 2);
            let b = m.decode(0x1_2345_0000 + org.burst_bytes() - 1, &org, 2);
            assert_eq!(a, b, "mapping {m}");
        }
    }

    /// encode is the right inverse of decode for every mapping.
    #[test]
    fn decode_encode_round_trip() {
        let mut rng = Rng::seed_from_u64(0x3A9_0001);
        for _ in 0..1_024 {
            let raw = rng.gen_range(0..2 << 30);
            let channels = rng.gen_range(1..5) as u32;
            let m = ALL[rng.gen_range(0..3) as usize];
            let org = org();
            // Align to a burst within one channel's capacity.
            let addr = raw / org.burst_bytes() * org.burst_bytes()
                % (org.capacity_bytes() * u64::from(channels));
            let ch = m.channel_of(addr, &org, channels);
            let d = m.decode(addr, &org, channels);
            let back = m.encode(&d, ch, &org, channels);
            assert_eq!(back, addr);
        }
    }

    /// Decoded fields are always within the organisation's bounds.
    #[test]
    fn decode_in_bounds() {
        let mut rng = Rng::seed_from_u64(0x3A9_0002);
        for _ in 0..1_024 {
            let raw = rng.next_u64();
            let org = org();
            let d = ALL[rng.gen_range(0..3) as usize].decode(raw, &org, 2);
            assert!(d.rank < org.ranks);
            assert!(d.bank < org.banks);
            assert!(d.row < org.rows_per_bank());
            assert!(d.col < org.bursts_per_row());
        }
    }

    #[test]
    fn remap_rank_skips_offline_ranks() {
        // No offlining: identity.
        for r in 0..4 {
            assert_eq!(remap_rank(r, 0, 4), r);
        }
        // Rank 1 offline: its traffic folds onto rank 2.
        assert_eq!(remap_rank(1, 0b0010, 4), 2);
        assert_eq!(remap_rank(0, 0b0010, 4), 0);
        // Wrap-around: ranks 2 and 3 offline, rank 3 folds onto 0.
        assert_eq!(remap_rank(3, 0b1100, 4), 0);
        // Degenerate masks leave the rank alone.
        assert_eq!(remap_rank(2, 0b1111, 4), 2);
        assert_eq!(remap_rank(2, 0, 0), 2);
    }

    #[test]
    fn degraded_capacity_scales_with_live_ranks() {
        let org = org();
        let full = org.capacity_bytes();
        assert_eq!(degraded_capacity_bytes(&org, 0), full);
        let one_down = degraded_capacity_bytes(&org, 0b01);
        assert_eq!(
            one_down,
            full / u64::from(org.ranks) * (u64::from(org.ranks) - 1)
        );
        assert!(one_down < full);
        // All ranks claimed offline: capacity floors at zero.
        assert_eq!(degraded_capacity_bytes(&org, u32::MAX), 0);
    }

    /// Distinct burst-aligned addresses within one channel never decode
    /// to the same (rank, bank, row, col) tuple.
    #[test]
    fn decode_injective() {
        let mut rng = Rng::seed_from_u64(0x3A9_0003);
        for _ in 0..1_024 {
            let org = org();
            let m = ALL[rng.gen_range(0..3) as usize];
            let a = rng.gen_range(0..1 << 24) * org.burst_bytes();
            let b = rng.gen_range(0..1 << 24) * org.burst_bytes();
            if a == b || a >= org.capacity_bytes() || b >= org.capacity_bytes() {
                continue;
            }
            assert_ne!(m.decode(a, &org, 1), m.decode(b, &org, 1));
        }
    }
}
