//! DRAM device specifications.
//!
//! A [`MemSpec`] bundles the *organisation* of a channel (widths, burst
//! length, banks, ranks, row-buffer size), the *timing parameters* the paper
//! selects as performance-critical (Section II-B, Table I/IV), and the IDD
//! currents needed by the Micron power model (Section II-G).
//!
//! Following the paper, the specification is deliberately minimal: no
//! command/address-bus model, no rank-to-rank switching, no bank groups, no
//! explicit SDR/DDR distinction — `t_burst` alone captures the data-transfer
//! time, which is what makes the same controller model cover DDR3, LPDDR3
//! and WideIO.

use dramctrl_kernel::{tick, Tick};
use std::fmt;

/// Organisation of one memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Organisation {
    /// Interface width of a single device, in bits (e.g. 8 for a x8 part).
    pub device_bus_width: u32,
    /// Burst length in beats (e.g. 8 for DDR3's BL8).
    pub burst_length: u32,
    /// Row-buffer (page) size of a single device, in bytes.
    pub device_rowbuffer_bytes: u64,
    /// Number of devices ganged into one rank.
    pub devices_per_rank: u32,
    /// Ranks sharing the channel's busses.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Capacity of a single device in megabits (e.g. 2048 for a 2 Gbit die).
    pub device_capacity_mbit: u64,
}

impl Organisation {
    /// Total data-bus width of the channel in bits.
    pub fn bus_width_bits(&self) -> u32 {
        self.device_bus_width * self.devices_per_rank
    }

    /// Bytes transferred by one DRAM burst.
    pub fn burst_bytes(&self) -> u64 {
        u64::from(self.bus_width_bits() / 8) * u64::from(self.burst_length)
    }

    /// Logical row-buffer size of one bank across all devices in a rank.
    pub fn row_buffer_bytes(&self) -> u64 {
        self.device_rowbuffer_bytes * u64::from(self.devices_per_rank)
    }

    /// Number of bursts (column accesses) that fit in one row buffer.
    pub fn bursts_per_row(&self) -> u64 {
        self.row_buffer_bytes() / self.burst_bytes()
    }

    /// Rows per bank, derived from device capacity.
    pub fn rows_per_bank(&self) -> u64 {
        let device_bytes = self.device_capacity_mbit * 1024 * 1024 / 8;
        device_bytes / (self.device_rowbuffer_bytes * u64::from(self.banks))
    }

    /// Total channel capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.device_capacity_mbit * 1024 * 1024 / 8
            * u64::from(self.devices_per_rank)
            * u64::from(self.ranks)
    }
}

/// The DRAM timing parameters modelled by the controllers.
///
/// All values are in [`Tick`]s (picoseconds). Per the paper, `t_cl`
/// implicitly covers `tWR`-like write recovery at the system level and
/// `t_burst` implicitly models `tCCD`; `t_xaw` generalises `tFAW`/`tTAW`
/// with [`Timing::activation_limit`] activates per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Interface clock period.
    pub t_ck: Tick,
    /// Data-bus occupancy of one burst.
    pub t_burst: Tick,
    /// ACT to internal read/write delay (row open).
    pub t_rcd: Tick,
    /// Column access (CAS) latency.
    pub t_cl: Tick,
    /// Precharge period (row close).
    pub t_rp: Tick,
    /// Minimum row-open time (ACT to PRE).
    pub t_ras: Tick,
    /// Write recovery: end of write burst to PRE of the same bank.
    pub t_wr: Tick,
    /// Read to precharge delay.
    pub t_rtp: Tick,
    /// ACT-to-ACT delay between banks of the same rank.
    pub t_rrd: Tick,
    /// Rolling activation window (tFAW/tTAW generalised).
    pub t_xaw: Tick,
    /// Number of activates allowed within `t_xaw` (0 disables the limit).
    pub activation_limit: u32,
    /// Write-to-read turnaround (end of write burst to read command).
    pub t_wtr: Tick,
    /// Read-to-write turnaround bubble on the data bus.
    pub t_rtw: Tick,
    /// Refresh cycle time (duration of one refresh).
    pub t_rfc: Tick,
    /// Average refresh interval.
    pub t_refi: Tick,
    /// Power-down exit latency (exit to first valid command).
    pub t_xp: Tick,
    /// Self-refresh exit latency (exit to first valid command).
    pub t_xs: Tick,
}

/// IDD currents (mA) and supply voltage for the Micron power model
/// (TN-41-01). One entry per device; the power model scales by
/// `devices_per_rank * ranks`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddCurrents {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Active precharge current (one bank ACT/PRE cycling at tRC).
    pub idd0: f64,
    /// Precharge standby current (all banks closed).
    pub idd2n: f64,
    /// Precharge power-down current.
    pub idd2p: f64,
    /// Active standby current (at least one bank open).
    pub idd3n: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Refresh current.
    pub idd5: f64,
    /// Self-refresh current.
    pub idd6: f64,
}

/// A complete DRAM device/channel specification.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSpec {
    /// Human-readable name, e.g. `"DDR3-1333-x64"`.
    pub name: &'static str,
    /// Channel organisation.
    pub org: Organisation,
    /// Timing parameters.
    pub timing: Timing,
    /// Currents for the power model.
    pub idd: IddCurrents,
}

/// Validation failure for a [`MemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid memory spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl MemSpec {
    /// Checks internal consistency of the specification.
    ///
    /// # Errors
    /// Returns a [`SpecError`] naming the violated invariant: zero-sized
    /// organisation fields, a row buffer that does not hold a whole number
    /// of bursts, `t_ras < t_rcd`, an activation window shorter than the
    /// activates it must admit, or a refresh interval shorter than the
    /// refresh itself.
    pub fn validate(&self) -> Result<(), SpecError> {
        let o = &self.org;
        if o.device_bus_width == 0
            || o.burst_length == 0
            || o.devices_per_rank == 0
            || o.ranks == 0
            || o.banks == 0
            || o.device_rowbuffer_bytes == 0
            || o.device_capacity_mbit == 0
        {
            return Err(SpecError("organisation fields must be non-zero".into()));
        }
        if o.bus_width_bits() % 8 != 0 {
            return Err(SpecError(format!(
                "bus width {} bits is not a whole number of bytes",
                o.bus_width_bits()
            )));
        }
        if o.row_buffer_bytes() % o.burst_bytes() != 0 {
            return Err(SpecError(format!(
                "row buffer ({} B) must hold a whole number of bursts ({} B)",
                o.row_buffer_bytes(),
                o.burst_bytes()
            )));
        }
        if o.rows_per_bank() == 0 {
            return Err(SpecError("device capacity too small for one row".into()));
        }
        let t = &self.timing;
        if t.t_ck == 0 || t.t_burst == 0 {
            return Err(SpecError("t_ck and t_burst must be non-zero".into()));
        }
        if t.t_ras < t.t_rcd {
            return Err(SpecError(format!(
                "t_ras ({}) must cover t_rcd ({})",
                t.t_ras, t.t_rcd
            )));
        }
        if t.activation_limit > 1 && t.t_xaw < Tick::from(t.activation_limit - 1) * t.t_rrd {
            return Err(SpecError(
                "t_xaw shorter than (activation_limit-1) * t_rrd".into(),
            ));
        }
        if t.t_refi != 0 && t.t_refi <= t.t_rfc {
            return Err(SpecError("t_refi must exceed t_rfc".into()));
        }
        Ok(())
    }

    /// Peak data-bus bandwidth in bytes per second.
    pub fn peak_bandwidth(&self) -> f64 {
        self.org.burst_bytes() as f64 / tick::to_s(self.timing.t_burst)
    }

    /// Peak data-bus bandwidth in GB/s (10^9 bytes per second).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.peak_bandwidth() / 1e9
    }

    /// Random-access cycle time of a bank: tRP + tRCD + tCL.
    pub fn bank_cycle(&self) -> Tick {
        self.timing.t_rp + self.timing.t_rcd + self.timing.t_cl
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn ddr3_1333_geometry() {
        // The validation device of paper Section III: 2 Gbit, 8 x8 devices,
        // 666 MHz.
        let spec = presets::ddr3_1333_x64();
        assert_eq!(spec.org.bus_width_bits(), 64);
        assert_eq!(spec.org.burst_bytes(), 64);
        assert_eq!(spec.org.row_buffer_bytes(), 8 * 1024);
        assert_eq!(spec.org.bursts_per_row(), 128);
        // 2 Gbit x8: 256 MB / (1 KB page * 8 banks) = 32768 rows.
        assert_eq!(spec.org.rows_per_bank(), 32_768);
        // 8 devices, 1 rank => 2 GB channel.
        assert_eq!(spec.org.capacity_bytes(), 2 * 1024 * 1024 * 1024);
        spec.validate().expect("preset must be valid");
    }

    #[test]
    fn ddr3_1333_peak_bandwidth() {
        let spec = presets::ddr3_1333_x64();
        // 64 B per 6 ns burst = 10.67 GB/s.
        assert!((spec.peak_bandwidth_gbps() - 10.67).abs() < 0.01);
    }

    #[test]
    fn validate_rejects_bad_ras() {
        let mut spec = presets::ddr3_1333_x64();
        spec.timing.t_ras = spec.timing.t_rcd - 1;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_short_xaw() {
        let mut spec = presets::ddr3_1333_x64();
        spec.timing.t_xaw = spec.timing.t_rrd; // window for 4 acts, too short
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("t_xaw"));
    }

    #[test]
    fn validate_rejects_zero_fields() {
        let mut spec = presets::ddr3_1333_x64();
        spec.org.banks = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_refi_below_rfc() {
        let mut spec = presets::ddr3_1333_x64();
        spec.timing.t_refi = spec.timing.t_rfc;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn bank_cycle_sums_core_timings() {
        let spec = presets::ddr3_1333_x64();
        assert_eq!(
            spec.bank_cycle(),
            spec.timing.t_rp + spec.timing.t_rcd + spec.timing.t_cl
        );
    }
}
