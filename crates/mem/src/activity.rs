//! Activity summary consumed by the power model.
//!
//! Both controller models (event-based and cycle-based) export the same
//! activity counters, which the Micron power model (paper Section II-G)
//! turns into a power breakdown off-line.

use dramctrl_kernel::Tick;

/// DRAM activity accumulated over a simulation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityStats {
    /// Length of the window in ticks.
    pub sim_time: Tick,
    /// Row activations issued.
    pub activates: u64,
    /// Precharges issued (explicit and auto).
    pub precharges: u64,
    /// Read bursts transferred on the data bus.
    pub rd_bursts: u64,
    /// Write bursts transferred on the data bus.
    pub wr_bursts: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Time with *all* banks precharged, summed over ranks (so the maximum
    /// is `sim_time * ranks`).
    pub time_all_banks_precharged: Tick,
    /// Time spent in precharge power-down, summed over ranks (a subset of
    /// `time_all_banks_precharged`).
    pub time_powered_down: Tick,
    /// Time spent in self-refresh, summed over ranks (disjoint from
    /// `time_powered_down`, also a subset of the precharged time).
    pub time_self_refresh: Tick,
    /// Number of ranks contributing to the sums.
    pub ranks: u32,
}

impl ActivityStats {
    /// Fraction of time all banks were precharged, averaged over ranks.
    /// Returns 1.0 for an empty window (an idle device is precharged).
    pub fn precharged_fraction(&self) -> f64 {
        if self.sim_time == 0 || self.ranks == 0 {
            return 1.0;
        }
        self.time_all_banks_precharged as f64 / (self.sim_time as f64 * f64::from(self.ranks))
    }

    /// Fraction of time spent in precharge power-down, averaged over
    /// ranks. Zero for an empty window.
    pub fn powered_down_fraction(&self) -> f64 {
        if self.sim_time == 0 || self.ranks == 0 {
            return 0.0;
        }
        self.time_powered_down as f64 / (self.sim_time as f64 * f64::from(self.ranks))
    }

    /// Fraction of time spent in self-refresh, averaged over ranks. Zero
    /// for an empty window.
    pub fn self_refresh_fraction(&self) -> f64 {
        if self.sim_time == 0 || self.ranks == 0 {
            return 0.0;
        }
        self.time_self_refresh as f64 / (self.sim_time as f64 * f64::from(self.ranks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precharged_fraction_bounds() {
        let a = ActivityStats {
            sim_time: 1_000,
            time_all_banks_precharged: 250,
            ranks: 1,
            ..Default::default()
        };
        assert_eq!(a.precharged_fraction(), 0.25);
        assert_eq!(ActivityStats::default().precharged_fraction(), 1.0);
    }

    #[test]
    fn precharged_fraction_multi_rank() {
        let a = ActivityStats {
            sim_time: 1_000,
            time_all_banks_precharged: 1_500,
            ranks: 2,
            ..Default::default()
        };
        assert_eq!(a.precharged_fraction(), 0.75);
    }
}
