//! O(1) write-queue burst-coverage index.
//!
//! Both controller models snoop their write queue on every incoming
//! request: a read burst fully covered by a queued write is serviced from
//! the queue (read forwarding), and a write burst fully covered by a queued
//! write is dropped (write merging) — paper Section II-A. Scanning the
//! queue makes every acceptance O(queue depth); gem5's production
//! controller grew an `isInWriteQueue` address set for exactly this reason.
//!
//! [`WriteCoverage`] is that set, generalised to the sub-burst writes this
//! model supports: a deterministic hash multiset keyed by burst-aligned
//! address, whose value is the list of byte spans `[lo, hi)` of the queued
//! write packets for that burst. Lookup, insert and removal are O(1)
//! expected — the span list of a single burst is almost always one entry,
//! because a new span subsumed by an existing one is merged away by the
//! caller rather than inserted.
//!
//! A *widest-span-only* summary (as a first cut might try) would not be
//! equivalent to scanning the queue: two partial writes `[0,10)` and
//! `[20,64)` cover `[5,8)` via the *narrower* span. Keeping every span
//! preserves exact scan semantics, which the differential tests in the
//! `dramctrl` crate rely on.
//!
//! Determinism: the map is only ever probed point-wise (never iterated),
//! and the hasher is fixed-seed ([`dramctrl_kernel::hash`]), so no hash
//! order can leak into scheduling decisions.

use dramctrl_kernel::hash::DetMap;

/// Deterministic multiset of queued-write byte spans, keyed by
/// burst-aligned address.
///
/// # Example
/// ```
/// use dramctrl_mem::WriteCoverage;
///
/// let mut cov = WriteCoverage::default();
/// cov.insert(0x80, 0, 64);
/// assert!(cov.covers(0x80, 16, 32)); // subsumed read: forward it
/// assert!(!cov.covers(0xc0, 0, 8)); // different burst
/// cov.remove(0x80, 0, 64);
/// assert!(cov.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteCoverage {
    by_burst: DetMap<u64, Vec<(u32, u32)>>,
    len: usize,
}

impl WriteCoverage {
    /// Records a queued write covering `[lo, hi)` of the burst at
    /// `burst_addr`.
    pub fn insert(&mut self, burst_addr: u64, lo: u32, hi: u32) {
        debug_assert!(lo < hi, "empty span");
        self.by_burst.entry(burst_addr).or_default().push((lo, hi));
        self.len += 1;
    }

    /// Removes one previously inserted span (the write left the queue).
    ///
    /// # Panics
    /// Panics if the span was never inserted — the index and the queue
    /// would be out of sync, which is a controller bug.
    pub fn remove(&mut self, burst_addr: u64, lo: u32, hi: u32) {
        let spans = self
            .by_burst
            .get_mut(&burst_addr)
            .expect("coverage entry for removed write");
        let at = spans
            .iter()
            .position(|&s| s == (lo, hi))
            .expect("span for removed write");
        spans.swap_remove(at);
        if spans.is_empty() {
            self.by_burst.remove(&burst_addr);
        }
        self.len -= 1;
    }

    /// Whether some queued write fully covers `[lo, hi)` of the burst at
    /// `burst_addr` — exactly the condition the linear queue scan tests.
    pub fn covers(&self, burst_addr: u64, lo: u32, hi: u32) -> bool {
        self.by_burst
            .get(&burst_addr)
            .is_some_and(|spans| spans.iter().any(|&(l, h)| l <= lo && h >= hi))
    }

    /// Number of spans currently indexed (equals queued write bursts).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no spans are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl dramctrl_kernel::snap::SnapState for WriteCoverage {
    // The map is only ever probed point-wise, so the multiset is the whole
    // observable state; keys are written sorted to keep the snapshot bytes
    // deterministic regardless of insertion history.
    fn save_state(&self, w: &mut dramctrl_kernel::snap::SnapWriter) {
        let mut keys: Vec<u64> = self.by_burst.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            let spans = &self.by_burst[&k];
            w.u64(k);
            w.usize(spans.len());
            for &(lo, hi) in spans {
                w.u32(lo);
                w.u32(hi);
            }
        }
    }

    fn restore_state(
        &mut self,
        r: &mut dramctrl_kernel::snap::SnapReader<'_>,
    ) -> Result<(), dramctrl_kernel::snap::SnapError> {
        use dramctrl_kernel::snap::SnapError;
        self.by_burst.clear();
        self.len = 0;
        let n_keys = r.usize()?;
        for _ in 0..n_keys {
            let k = r.u64()?;
            let n_spans = r.usize()?;
            if n_spans == 0 {
                return Err(SnapError::Corrupt(format!("burst {k:#x} with no spans")));
            }
            let mut spans = Vec::with_capacity(n_spans);
            for _ in 0..n_spans {
                let lo = r.u32()?;
                let hi = r.u32()?;
                if lo >= hi {
                    return Err(SnapError::Corrupt(format!("empty span [{lo}, {hi})")));
                }
                spans.push((lo, hi));
            }
            self.len += spans.len();
            if self.by_burst.insert(k, spans).is_some() {
                return Err(SnapError::Corrupt(format!("duplicate burst key {k:#x}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_requires_subsumption() {
        let mut cov = WriteCoverage::default();
        cov.insert(64, 8, 40);
        assert!(cov.covers(64, 8, 40));
        assert!(cov.covers(64, 10, 20));
        assert!(!cov.covers(64, 0, 40), "starts before the write");
        assert!(!cov.covers(64, 8, 48), "ends after the write");
        assert!(!cov.covers(128, 8, 40), "different burst");
    }

    #[test]
    fn multiple_spans_per_burst() {
        let mut cov = WriteCoverage::default();
        cov.insert(0, 0, 10);
        cov.insert(0, 20, 64);
        // The narrower span answers; a widest-only summary would miss this.
        assert!(cov.covers(0, 5, 8));
        assert!(cov.covers(0, 30, 60));
        assert!(!cov.covers(0, 5, 30));
        cov.remove(0, 0, 10);
        assert!(!cov.covers(0, 5, 8));
        assert!(cov.covers(0, 30, 60));
        assert_eq!(cov.len(), 1);
    }

    #[test]
    fn remove_clears_entries() {
        let mut cov = WriteCoverage::default();
        cov.insert(0x40, 0, 64);
        cov.insert(0x80, 0, 64);
        cov.remove(0x40, 0, 64);
        cov.remove(0x80, 0, 64);
        assert!(cov.is_empty());
        assert!(!cov.covers(0x40, 0, 64));
    }

    #[test]
    fn snapshot_round_trip_preserves_multiset() {
        use dramctrl_kernel::snap::{SnapReader, SnapState, SnapWriter};
        let mut cov = WriteCoverage::default();
        cov.insert(0x80, 0, 64);
        cov.insert(0x80, 8, 16);
        cov.insert(0x40, 0, 32);
        let mut w = SnapWriter::new(0);
        cov.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = WriteCoverage::default();
        restored.insert(0xFF, 0, 1); // stale state is replaced, not merged
        let mut r = SnapReader::new(&bytes, 0).unwrap();
        restored.restore_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored.len(), 3);
        assert!(restored.covers(0x80, 10, 14));
        assert!(restored.covers(0x40, 0, 32));
        assert!(!restored.covers(0xFF, 0, 1));
        // Restored index accepts removals exactly like the original.
        restored.remove(0x80, 8, 16);
        assert!(restored.covers(0x80, 8, 16), "wider span still covers");
        // Snapshot bytes are deterministic regardless of insertion order.
        let mut cov2 = WriteCoverage::default();
        cov2.insert(0x40, 0, 32);
        cov2.insert(0x80, 0, 64);
        cov2.insert(0x80, 8, 16);
        let mut w2 = SnapWriter::new(0);
        cov2.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    #[should_panic(expected = "span for removed write")]
    fn removing_unknown_span_panics() {
        let mut cov = WriteCoverage::default();
        cov.insert(0, 0, 64);
        cov.remove(0, 0, 32);
    }
}
