//! The common controller interface.
//!
//! The validation experiments (paper Section III) drive two very different
//! controller models — the event-based model and a cycle-based
//! DRAMSim2-style baseline — with identical traffic. This trait is the
//! pull-style interface both implement, so generators, testers and the
//! system model are generic over the controller.

use dramctrl_kernel::Tick;
use dramctrl_stats::Report;

use crate::activity::ActivityStats;
use crate::packet::{MemCmd, MemRequest, MemResponse};
use crate::spec::MemSpec;

/// Why a controller refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// No queue space; retry after progress.
    Full,
    /// The request can never fit the controller's queues.
    TooLarge,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Full => write!(f, "controller queue full"),
            Rejected::TooLarge => write!(f, "request larger than controller queues"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Counters shared by all controller implementations, used by the
/// validation figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommonStats {
    /// Read requests accepted.
    pub reads_accepted: u64,
    /// Write requests accepted.
    pub writes_accepted: u64,
    /// Read bursts serviced by the DRAM.
    pub rd_bursts: u64,
    /// Write bursts serviced by the DRAM.
    pub wr_bursts: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bursts that hit an open row.
    pub row_hits: u64,
    /// Row activations.
    pub activates: u64,
    /// Accumulated data-bus busy time.
    pub bus_busy: Tick,
    /// Sum of per-read-burst latencies inside the controller, in ticks
    /// (divide by `rd_bursts` for the mean — see
    /// [`avg_read_lat`](CommonStats::avg_read_lat)).
    pub read_lat_sum: f64,
}

impl CommonStats {
    /// Data-bus utilisation over `[0, now]`.
    pub fn bus_utilisation(&self, now: Tick) -> f64 {
        if now == 0 {
            0.0
        } else {
            self.bus_busy as f64 / now as f64
        }
    }

    /// Mean read latency inside the controller, in ticks.
    pub fn avg_read_lat(&self) -> f64 {
        if self.rd_bursts == 0 {
            0.0
        } else {
            self.read_lat_sum / self.rd_bursts as f64
        }
    }

    /// The activity between an earlier snapshot and this one — gem5-style
    /// windowed statistics (paper Section II-E: reset and output numbers
    /// at arbitrary points in time). All counters and sums subtract, so
    /// derived rates (hit rate, mean latency) describe the window alone.
    ///
    /// # Panics
    /// Panics in debug builds if `base` is not an earlier snapshot of the
    /// same controller (counters would go backwards).
    pub fn since(&self, base: &CommonStats) -> CommonStats {
        debug_assert!(self.rd_bursts >= base.rd_bursts);
        debug_assert!(self.wr_bursts >= base.wr_bursts);
        CommonStats {
            reads_accepted: self.reads_accepted - base.reads_accepted,
            writes_accepted: self.writes_accepted - base.writes_accepted,
            rd_bursts: self.rd_bursts - base.rd_bursts,
            wr_bursts: self.wr_bursts - base.wr_bursts,
            bytes_read: self.bytes_read - base.bytes_read,
            bytes_written: self.bytes_written - base.bytes_written,
            row_hits: self.row_hits - base.row_hits,
            activates: self.activates - base.activates,
            bus_busy: self.bus_busy - base.bus_busy,
            read_lat_sum: self.read_lat_sum - base.read_lat_sum,
        }
    }

    /// Row-hit rate over all serviced bursts.
    pub fn page_hit_rate(&self) -> f64 {
        let bursts = self.rd_bursts + self.wr_bursts;
        if bursts == 0 {
            0.0
        } else {
            self.row_hits as f64 / bursts as f64
        }
    }
}

/// A pull-driven DRAM controller model.
///
/// The protocol: offer requests with [`try_send`](Controller::try_send)
/// (respecting [`Rejected::Full`] backpressure), ask for the next internal
/// event time with [`next_event`](Controller::next_event), and execute up
/// to a tick with [`advance_to`](Controller::advance_to), which yields
/// responses. All `now` arguments must be non-decreasing.
pub trait Controller {
    /// Offers a request at time `now`.
    ///
    /// # Errors
    /// [`Rejected::Full`] when queues lack space (retry later) and
    /// [`Rejected::TooLarge`] when the request can never fit.
    fn try_send(&mut self, req: MemRequest, now: Tick) -> Result<(), Rejected>;

    /// Whether a request would currently be accepted.
    fn can_accept(&self, cmd: MemCmd, addr: u64, size: u32) -> bool;

    /// The tick of the next internal event, if any work is pending.
    fn next_event(&self) -> Option<Tick>;

    /// Executes all internal events up to and including `limit`, appending
    /// responses that became ready to `out`.
    fn advance_to(&mut self, limit: Tick, out: &mut Vec<MemResponse>);

    /// Runs until all queued requests have been serviced, returning the
    /// idle tick.
    fn drain(&mut self, out: &mut Vec<MemResponse>) -> Tick;

    /// Whether all request queues are empty.
    fn is_idle(&self) -> bool;

    /// The device specification behind this controller.
    fn spec(&self) -> &MemSpec;

    /// Cross-model statistics snapshot.
    fn common_stats(&self) -> CommonStats;

    /// Activity summary for the power model over `[0, now]`.
    fn activity(&mut self, now: Tick) -> ActivityStats;

    /// Full statistics report at time `now`.
    fn report(&self, prefix: &str, now: Tick) -> Report;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_stats_rates() {
        let s = CommonStats {
            rd_bursts: 3,
            wr_bursts: 1,
            row_hits: 2,
            bus_busy: 400,
            ..Default::default()
        };
        assert_eq!(s.page_hit_rate(), 0.5);
        assert_eq!(s.bus_utilisation(800), 0.5);
        assert_eq!(CommonStats::default().page_hit_rate(), 0.0);
        assert_eq!(CommonStats::default().bus_utilisation(0), 0.0);
    }

    #[test]
    fn rejected_displays() {
        assert_eq!(Rejected::Full.to_string(), "controller queue full");
        assert!(Rejected::TooLarge.to_string().contains("larger"));
    }
}
