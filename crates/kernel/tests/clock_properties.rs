//! Randomised (seeded, deterministic) tests for clock-domain arithmetic —
//! the conversions the cycle-based model relies on for its
//! nanosecond-to-cycle tables.

use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::{tick, Clock};

const CASES: usize = 512;

/// ceil_edge is idempotent, aligned, and never earlier than the input.
#[test]
fn ceil_edge_properties() {
    let mut rng = Rng::seed_from_u64(0xC10C_0001);
    for _ in 0..CASES {
        let period = rng.gen_range(1..10_000);
        let t = rng.gen_range(0..1 << 40);
        let clk = Clock::from_period(period);
        let e = clk.ceil_edge(t);
        assert!(e >= t);
        assert!(e - t < period);
        assert_eq!(e % period, 0);
        assert_eq!(clk.ceil_edge(e), e);
    }
}

/// floor and ceil bracket the input by less than one period.
#[test]
fn floor_ceil_bracket() {
    let mut rng = Rng::seed_from_u64(0xC10C_0002);
    for _ in 0..CASES {
        let period = rng.gen_range(1..10_000);
        // Half the cases exactly on an edge so the f == c branch is hit.
        let t = if rng.gen_bool() {
            rng.gen_range(0..1 << 40)
        } else {
            rng.gen_range(0..1 << 40) / period * period
        };
        let clk = Clock::from_period(period);
        let (f, c) = (clk.floor_edge(t), clk.ceil_edge(t));
        assert!(f <= t && t <= c);
        assert!(c - f < 2 * period);
        if t % period == 0 {
            assert_eq!(f, c);
        }
    }
}

/// Cycle round trips: to_cycles(cycles(n)) == n, and the ceiling count
/// always covers the duration.
#[test]
fn cycle_round_trip() {
    let mut rng = Rng::seed_from_u64(0xC10C_0003);
    for _ in 0..CASES {
        let period = rng.gen_range(1..10_000);
        let n = rng.gen_range(0..1_000_000);
        let t = rng.gen_range(0..1 << 40);
        let clk = Clock::from_period(period);
        assert_eq!(clk.to_cycles(clk.cycles(n)), n);
        assert!(clk.cycles(clk.to_cycles_ceil(t)) >= t);
        assert!(clk.cycles(clk.to_cycles(t)) <= t);
    }
}

/// Tick conversions: ns round trips through ticks at ps resolution.
#[test]
fn ns_round_trip() {
    let mut rng = Rng::seed_from_u64(0xC10C_0004);
    for _ in 0..CASES {
        let ns = rng.gen_range(0..1_000_000_000);
        let t = tick::from_ns(ns as f64);
        assert_eq!(t, ns * tick::NS);
        assert_eq!(tick::to_ns(t), ns as f64);
    }
}

#[test]
fn frequency_period_inverses() {
    for mhz in [200.0, 666.666_666, 800.0, 1_600.0] {
        let clk = Clock::from_frequency_mhz(mhz);
        let back = clk.frequency_hz() / 1e6;
        assert!((back - mhz).abs() / mhz < 1e-3, "{mhz} -> {back}");
    }
}
