//! Property-based tests for clock-domain arithmetic — the conversions the
//! cycle-based model relies on for its nanosecond-to-cycle tables.

use dramctrl_kernel::{tick, Clock};
use proptest::prelude::*;

proptest! {
    /// ceil_edge is idempotent, aligned, and never earlier than the input.
    #[test]
    fn ceil_edge_properties(period in 1u64..10_000, t in 0u64..(1 << 40)) {
        let clk = Clock::from_period(period);
        let e = clk.ceil_edge(t);
        prop_assert!(e >= t);
        prop_assert!(e - t < period);
        prop_assert_eq!(e % period, 0);
        prop_assert_eq!(clk.ceil_edge(e), e);
    }

    /// floor and ceil bracket the input by less than one period.
    #[test]
    fn floor_ceil_bracket(period in 1u64..10_000, t in 0u64..(1 << 40)) {
        let clk = Clock::from_period(period);
        let (f, c) = (clk.floor_edge(t), clk.ceil_edge(t));
        prop_assert!(f <= t && t <= c);
        prop_assert!(c - f < 2 * period);
        if t % period == 0 {
            prop_assert_eq!(f, c);
        }
    }

    /// Cycle round trips: to_cycles(cycles(n)) == n, and the ceiling count
    /// always covers the duration.
    #[test]
    fn cycle_round_trip(period in 1u64..10_000, n in 0u64..1_000_000, t in 0u64..(1 << 40)) {
        let clk = Clock::from_period(period);
        prop_assert_eq!(clk.to_cycles(clk.cycles(n)), n);
        prop_assert!(clk.cycles(clk.to_cycles_ceil(t)) >= t);
        prop_assert!(clk.cycles(clk.to_cycles(t)) <= t);
    }

    /// Tick conversions: ns round trips through ticks at ps resolution.
    #[test]
    fn ns_round_trip(ns in 0u64..1_000_000_000) {
        let t = tick::from_ns(ns as f64);
        prop_assert_eq!(t, ns * tick::NS);
        prop_assert_eq!(tick::to_ns(t), ns as f64);
    }
}

#[test]
fn frequency_period_inverses() {
    for mhz in [200.0, 666.666_666, 800.0, 1_600.0] {
        let clk = Clock::from_frequency_mhz(mhz);
        let back = clk.frequency_hz() / 1e6;
        assert!((back - mhz).abs() / mhz < 1e-3, "{mhz} -> {back}");
    }
}
