//! Deterministic hashing for simulation-state indices.
//!
//! The standard library's `HashMap` seeds its hasher randomly per process,
//! which makes *iteration order* differ from run to run. Simulation indices
//! must never let such an order leak into scheduling decisions, and the
//! safest way to guarantee that — and to keep two controllers bit-identical
//! under differential testing — is a fixed-seed hasher: same keys, same
//! table layout, same behaviour, every run.
//!
//! [`DetHasher`] is an FxHash-style multiply-rotate hasher (the scheme
//! rustc itself uses for its interned maps): not DoS-resistant, but fast on
//! the small integer keys (addresses, bank/row ids) these indices use.
//!
//! # Example
//! ```
//! use dramctrl_kernel::hash::DetMap;
//!
//! let mut m: DetMap<u64, u32> = DetMap::default();
//! m.insert(0x80, 1);
//! assert_eq!(m.get(&0x80), Some(&1));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (a truncated golden-ratio constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-seed, deterministic [`Hasher`].
///
/// Identical key sequences produce identical hashes in every process, so
/// maps built on it lay out (and iterate) identically across runs.
#[derive(Debug, Clone, Default)]
pub struct DetHasher {
    hash: u64,
}

impl DetHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`DetHasher`].
pub type DetState = BuildHasherDefault<DetHasher>;

/// A `HashMap` with deterministic (fixed-seed) hashing.
pub type DetMap<K, V> = HashMap<K, V, DetState>;

/// A `HashSet` with deterministic (fixed-seed) hashing.
pub type DetSet<K> = HashSet<K, DetState>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        DetState::default().hash_one(v)
    }

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&(3u32, 7u64)), hash_of(&(3u32, 7u64)));
        assert_eq!(hash_of(&"row"), hash_of(&"row"));
    }

    #[test]
    fn different_inputs_differ() {
        // Not a cryptographic guarantee, but these must not all collide.
        let hs: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let distinct: std::collections::BTreeSet<_> = hs.iter().collect();
        assert_eq!(distinct.len(), hs.len());
    }

    #[test]
    fn map_iteration_is_reproducible() {
        let build = || {
            let mut m: DetMap<u64, u64> = DetMap::default();
            for i in 0..1_000 {
                m.insert(i * 0x9e37, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn byte_writes_match_chunked_words() {
        // write() must be stable regardless of how the input splits.
        let mut a = DetHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = DetHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
