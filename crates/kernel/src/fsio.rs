//! Crash-safe filesystem primitives shared by every artifact writer.
//!
//! Two durability patterns cover everything the simulators write:
//!
//! - [`write_atomic`]: whole-file artifacts (reports, traces, checkpoints)
//!   are written to a temporary sibling, fsync'd, then renamed over the
//!   destination. A crash at any point leaves either the old file or the
//!   new one — never a torn half of each.
//! - [`DurableAppender`]: append-only journals get every record flushed
//!   and fsync'd before the append returns, so a record that was reported
//!   as committed survives the process dying on the very next instruction.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Writes `contents` to `path` atomically: the data lands in a temporary
/// file in the same directory (same filesystem, so the rename is atomic),
/// is fsync'd, and is then renamed over `path`. On Unix the parent
/// directory is fsync'd too, making the rename itself durable.
///
/// # Errors
/// Any I/O error from creating, writing, syncing or renaming the
/// temporary file; the temporary is removed on failure.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(file_name);
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp_path = match dir {
        Some(d) => d.join(&tmp),
        None => std::path::PathBuf::from(&tmp),
    };

    let result = (|| {
        let mut f = File::create(&tmp_path)?;
        f.write_all(contents.as_ref())?;
        f.sync_all()?;
        std::fs::rename(&tmp_path, path)?;
        if let Some(d) = dir {
            sync_dir(d)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

/// Fsyncs a directory so a rename inside it is durable. Windows cannot
/// open directories for syncing; the rename is still atomic there.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// An append-only file whose every appended record is durable before the
/// append returns: written, flushed and fsync'd.
#[derive(Debug)]
pub struct DurableAppender {
    file: File,
}

impl DurableAppender {
    /// Creates the file (truncating any previous content) and makes the
    /// creation itself durable by syncing the parent directory.
    ///
    /// # Errors
    /// Any I/O error from creating or syncing.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let file = File::create(path)?;
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            sync_dir(dir)?;
        }
        Ok(Self { file })
    }

    /// Opens an existing file for appending.
    ///
    /// # Errors
    /// Any I/O error from opening.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self { file })
    }

    /// Appends `line` plus a newline, then fsyncs. When this returns `Ok`,
    /// the record is on disk.
    ///
    /// # Errors
    /// Any I/O error from writing or syncing.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dramctrl-fsio-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let d = tmp_dir("atomic");
        let p = d.join("out.json");
        write_atomic(&p, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "first");
        write_atomic(&p, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "second");
        // No stray temporaries survive a successful write.
        let stray: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "out.json")
            .collect();
        assert!(stray.is_empty(), "leftover files: {stray:?}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn write_atomic_relative_path_in_cwd_works() {
        let d = tmp_dir("rel");
        let p = d.join("nested").join("out.txt");
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        write_atomic(&p, b"data".as_slice()).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"data");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn appender_accumulates_lines() {
        let d = tmp_dir("append");
        let p = d.join("j.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();
        a.append_line("one").unwrap();
        a.append_line("two").unwrap();
        drop(a);
        let mut b = DurableAppender::append_to(&p).unwrap();
        b.append_line("three").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\nthree\n");
        std::fs::remove_dir_all(&d).unwrap();
    }
}
