//! Crash-safe filesystem primitives shared by every artifact writer.
//!
//! Two durability patterns cover everything the simulators write:
//!
//! - [`write_atomic`]: whole-file artifacts (reports, traces, checkpoints)
//!   are written to a temporary sibling, fsync'd, then renamed over the
//!   destination. A crash at any point leaves either the old file or the
//!   new one — never a torn half of each.
//! - [`DurableAppender`]: append-only journals get every record flushed
//!   and fsync'd before the append returns, so a record that was reported
//!   as committed survives the process dying on the very next instruction.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::time::{Duration, Instant};

/// Writes `contents` to `path` atomically: the data lands in a temporary
/// file in the same directory (same filesystem, so the rename is atomic),
/// is fsync'd, and is then renamed over `path`. On Unix the parent
/// directory is fsync'd too, making the rename itself durable.
///
/// # Errors
/// Any I/O error from creating, writing, syncing or renaming the
/// temporary file; the temporary is removed on failure.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(file_name);
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp_path = match dir {
        Some(d) => d.join(&tmp),
        None => std::path::PathBuf::from(&tmp),
    };

    let result = (|| {
        let mut f = File::create(&tmp_path)?;
        f.write_all(contents.as_ref())?;
        f.sync_all()?;
        std::fs::rename(&tmp_path, path)?;
        if let Some(d) = dir {
            sync_dir(d)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

/// Fsyncs a directory so a rename inside it is durable. Windows cannot
/// open directories for syncing; the rename is still atomic there.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// An append-only file whose every appended record is durable before the
/// append returns: written, flushed and fsync'd.
///
/// # Group commit
///
/// [`set_group_commit`](Self::set_group_commit) trades the
/// every-append fsync for one fsync per time window: appends landing
/// within the window after the last sync only `write(2)` their bytes and
/// mark the appender dirty; the first append past the window (or an
/// explicit [`sync`](Self::sync), or drop) flushes the whole batch with
/// a single fsync. A crash can then lose up to one window of *tail*
/// records — never reorder or tear earlier ones — which is exactly the
/// failure the campaign journal's resume already handles: lost tail jobs
/// simply re-run. Default is off (sync every append).
#[derive(Debug)]
pub struct DurableAppender {
    file: File,
    /// `None`: fsync on every append. `Some(w)`: fsync at most once per
    /// `w`, batching intervening appends.
    group_window: Option<Duration>,
    /// When the batch being accumulated started (first unsynced append).
    batch_start: Option<Instant>,
}

impl DurableAppender {
    /// Creates the file (truncating any previous content) and makes the
    /// creation itself durable by syncing the parent directory.
    ///
    /// # Errors
    /// Any I/O error from creating or syncing.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let file = File::create(path)?;
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            sync_dir(dir)?;
        }
        Ok(Self {
            file,
            group_window: None,
            batch_start: None,
        })
    }

    /// Opens an existing file for appending.
    ///
    /// # Errors
    /// Any I/O error from opening.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file,
            group_window: None,
            batch_start: None,
        })
    }

    /// Enables (`Some(window)`) or disables (`None`) group commit.
    /// Disabling flushes nothing by itself — call [`sync`](Self::sync)
    /// first if a batch may be pending and you need it durable *now*;
    /// otherwise the next append syncs it.
    pub fn set_group_commit(&mut self, window: Option<Duration>) {
        self.group_window = window;
    }

    /// Appends `line` plus a newline. Without group commit (the default)
    /// the record is fsync'd before this returns; with it, the record is
    /// on disk no later than the first append after the current window
    /// closes, or the next explicit [`sync`](Self::sync).
    ///
    /// # Errors
    /// Any I/O error from writing or syncing.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        match self.group_window {
            None => self.sync(),
            Some(window) => {
                let start = *self.batch_start.get_or_insert_with(Instant::now);
                if start.elapsed() >= window {
                    self.sync()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Appends `line` plus a newline *without* forcing a sync: the bytes
    /// hit the file (a complete line, so a reader never sees a torn
    /// record from a live process) and the appender is marked dirty. The
    /// caller batches several of these and then calls
    /// [`commit_batch`](Self::commit_batch) — one fsync covers them all.
    ///
    /// # Errors
    /// Any I/O error from writing.
    pub fn append_line_deferred(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.batch_start.get_or_insert_with(Instant::now);
        Ok(())
    }

    /// Closes a batch of [`append_line_deferred`](Self::append_line_deferred)
    /// calls: fsyncs now if the appender is dirty — *unless* a group-commit
    /// window is set and still open, in which case the batch stays pending
    /// and rides the window's sync. Batching and group commit share the one
    /// dirty flag (`batch_start`), so they compose without double
    /// buffering: the wider interval wins, and a single fsync covers
    /// everything written since the last one.
    ///
    /// # Errors
    /// Any I/O error from syncing.
    pub fn commit_batch(&mut self) -> io::Result<()> {
        match (self.batch_start, self.group_window) {
            (None, _) => Ok(()),
            (Some(start), Some(window)) if start.elapsed() < window => Ok(()),
            _ => self.sync(),
        }
    }

    /// Whether appended bytes are still awaiting their fsync — a batch
    /// opened by [`append_line_deferred`](Self::append_line_deferred) or
    /// an open group-commit window. On-disk lines are complete either
    /// way; pending only means a crash could lose the tail.
    pub fn has_pending_batch(&self) -> bool {
        self.batch_start.is_some()
    }

    /// Fsyncs now, closing any open group-commit batch. A no-op when
    /// nothing is pending is still just one cheap fsync.
    ///
    /// # Errors
    /// Any I/O error from syncing.
    pub fn sync(&mut self) -> io::Result<()> {
        self.batch_start = None;
        self.file.sync_data()
    }
}

impl Drop for DurableAppender {
    fn drop(&mut self) {
        // Best effort: don't let an open batch die with the handle. Errors
        // are unreportable here; the crash contract already tolerates a
        // lost tail.
        if self.batch_start.is_some() {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dramctrl-fsio-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let d = tmp_dir("atomic");
        let p = d.join("out.json");
        write_atomic(&p, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "first");
        write_atomic(&p, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "second");
        // No stray temporaries survive a successful write.
        let stray: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "out.json")
            .collect();
        assert!(stray.is_empty(), "leftover files: {stray:?}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn write_atomic_relative_path_in_cwd_works() {
        let d = tmp_dir("rel");
        let p = d.join("nested").join("out.txt");
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        write_atomic(&p, b"data".as_slice()).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"data");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn group_commit_batches_then_syncs_on_demand() {
        let d = tmp_dir("group");
        let p = d.join("g.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();
        // A generous window: none of these appends should sync themselves.
        a.set_group_commit(Some(Duration::from_secs(3600)));
        a.append_line("one").unwrap();
        a.append_line("two").unwrap();
        // The bytes are written (visible) even before the batch syncs...
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\n");
        // ...and an explicit sync closes the batch.
        a.sync().unwrap();
        // A zero window degenerates to sync-every-append.
        a.set_group_commit(Some(Duration::ZERO));
        a.append_line("three").unwrap();
        // Turning it off restores the default contract.
        a.set_group_commit(None);
        a.append_line("four").unwrap();
        drop(a);
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "one\ntwo\nthree\nfour\n"
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn batched_commit_composes_with_group_commit_wider_interval_wins() {
        let d = tmp_dir("batch-group");
        let p = d.join("b.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();

        // No group window: commit_batch is the batch's commit point.
        a.append_line_deferred("one").unwrap();
        a.append_line_deferred("two").unwrap();
        assert!(a.has_pending_batch());
        a.commit_batch().unwrap();
        assert!(!a.has_pending_batch());

        // A window wider than the batch cadence supersedes the per-batch
        // sync: the batch stays pending and rides the window — one shared
        // dirty flag, no double buffering.
        a.set_group_commit(Some(Duration::from_secs(3600)));
        a.append_line_deferred("three").unwrap();
        a.commit_batch().unwrap();
        assert!(
            a.has_pending_batch(),
            "an open group window must defer the batch sync"
        );
        // The lines are complete and visible even while pending.
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\nthree\n");
        // An explicit sync closes the window's batch.
        a.sync().unwrap();
        assert!(!a.has_pending_batch());

        // An already-elapsed window: the batch sync wins again.
        a.set_group_commit(Some(Duration::ZERO));
        a.append_line_deferred("four").unwrap();
        a.commit_batch().unwrap();
        assert!(
            !a.has_pending_batch(),
            "a closed window syncs with the batch"
        );
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "one\ntwo\nthree\nfour\n"
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn appender_accumulates_lines() {
        let d = tmp_dir("append");
        let p = d.join("j.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();
        a.append_line("one").unwrap();
        a.append_line("two").unwrap();
        drop(a);
        let mut b = DurableAppender::append_to(&p).unwrap();
        b.append_line("three").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\nthree\n");
        std::fs::remove_dir_all(&d).unwrap();
    }
}
