//! Crash-safe filesystem primitives shared by every artifact writer.
//!
//! Two durability patterns cover everything the simulators write:
//!
//! - [`write_atomic`]: whole-file artifacts (reports, traces, checkpoints)
//!   are written to a temporary sibling, fsync'd, then renamed over the
//!   destination. A crash at any point leaves either the old file or the
//!   new one — never a torn half of each.
//! - [`DurableAppender`]: append-only journals get every record flushed
//!   and fsync'd before the append returns, so a record that was reported
//!   as committed survives the process dying on the very next instruction.
//!
//! Both primitives route every durability operation through the
//! [`fault`] injection layer, so a test (or the chaos explorer) can make
//! any write, fsync or rename fail with `ENOSPC`/`EIO`, tear a write in
//! half, or kill the process — deterministically, at the Nth matching
//! operation.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use fault::DurOp;

/// Distinguishes temp files created by concurrent threads of one process
/// writing the same destination path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the data lands in a temporary
/// file in the same directory (same filesystem, so the rename is atomic),
/// is fsync'd, and is then renamed over `path`. On Unix the parent
/// directory is fsync'd too, making the rename itself durable.
///
/// # Errors
/// Any I/O error from creating, writing, syncing or renaming the
/// temporary file; the temporary is removed on failure.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(file_name);
    // Pid alone is not enough: two threads of one process writing the
    // same path would race on a shared temp sibling. A per-process
    // counter makes every in-flight temp name unique.
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp_path = match dir {
        Some(d) => d.join(&tmp),
        None => std::path::PathBuf::from(&tmp),
    };

    let result = (|| {
        fault::check(DurOp::Create, path)?;
        let mut f = File::create(&tmp_path)?;
        let bytes = contents.as_ref();
        fault::checked_write(&mut f, bytes, path)?;
        fault::check(DurOp::Fsync, path)?;
        f.sync_all()?;
        fault::check(DurOp::Rename, path)?;
        std::fs::rename(&tmp_path, path)?;
        if let Some(d) = dir {
            sync_dir(d)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

/// Fsyncs a directory so a rename inside it is durable. Windows cannot
/// open directories for syncing; the rename is still atomic there.
fn sync_dir(dir: &Path) -> io::Result<()> {
    fault::check(DurOp::DirSync, dir)?;
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// An append-only file whose every appended record is durable before the
/// append returns: written, flushed and fsync'd.
///
/// # Group commit
///
/// [`set_group_commit`](Self::set_group_commit) trades the
/// every-append fsync for one fsync per time window: appends landing
/// within the window after the last sync only `write(2)` their bytes and
/// mark the appender dirty; the first append past the window (or an
/// explicit [`sync`](Self::sync), or drop) flushes the whole batch with
/// a single fsync. A crash can then lose up to one window of *tail*
/// records — never reorder or tear earlier ones — which is exactly the
/// failure the campaign journal's resume already handles: lost tail jobs
/// simply re-run. Default is off (sync every append).
#[derive(Debug)]
pub struct DurableAppender {
    file: File,
    /// Where the file lives — kept for fault-injection path filters.
    path: std::path::PathBuf,
    /// `None`: fsync on every append. `Some(w)`: fsync at most once per
    /// `w`, batching intervening appends.
    group_window: Option<Duration>,
    /// When the batch being accumulated started (first unsynced append).
    batch_start: Option<Instant>,
}

impl DurableAppender {
    /// Creates the file (truncating any previous content) and makes the
    /// creation itself durable by syncing the parent directory.
    ///
    /// # Errors
    /// Any I/O error from creating or syncing.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        fault::check(DurOp::Create, path)?;
        let file = File::create(path)?;
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            sync_dir(dir)?;
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            group_window: None,
            batch_start: None,
        })
    }

    /// Opens an existing file for appending.
    ///
    /// # Errors
    /// Any I/O error from opening.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        fault::check(DurOp::Create, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            group_window: None,
            batch_start: None,
        })
    }

    /// Enables (`Some(window)`) or disables (`None`) group commit.
    /// Disabling flushes nothing by itself — call [`sync`](Self::sync)
    /// first if a batch may be pending and you need it durable *now*;
    /// otherwise the next append syncs it.
    pub fn set_group_commit(&mut self, window: Option<Duration>) {
        self.group_window = window;
    }

    /// Appends `line` plus a newline. Without group commit (the default)
    /// the record is fsync'd before this returns; with it, the record is
    /// on disk no later than the first append after the current window
    /// closes, or the next explicit [`sync`](Self::sync).
    ///
    /// # Errors
    /// Any I/O error from writing or syncing.
    pub fn append_line(&mut self, line: &str) -> io::Result<()> {
        fault::checked_write(&mut self.file, line.as_bytes(), &self.path)?;
        self.file.write_all(b"\n")?;
        match self.group_window {
            None => self.sync(),
            Some(window) => {
                let start = *self.batch_start.get_or_insert_with(Instant::now);
                if start.elapsed() >= window {
                    self.sync()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Appends `line` plus a newline *without* forcing a sync: the bytes
    /// hit the file (a complete line, so a reader never sees a torn
    /// record from a live process) and the appender is marked dirty. The
    /// caller batches several of these and then calls
    /// [`commit_batch`](Self::commit_batch) — one fsync covers them all.
    ///
    /// # Errors
    /// Any I/O error from writing.
    pub fn append_line_deferred(&mut self, line: &str) -> io::Result<()> {
        fault::checked_write(&mut self.file, line.as_bytes(), &self.path)?;
        self.file.write_all(b"\n")?;
        self.batch_start.get_or_insert_with(Instant::now);
        Ok(())
    }

    /// Closes a batch of [`append_line_deferred`](Self::append_line_deferred)
    /// calls: fsyncs now if the appender is dirty — *unless* a group-commit
    /// window is set and still open, in which case the batch stays pending
    /// and rides the window's sync. Batching and group commit share the one
    /// dirty flag (`batch_start`), so they compose without double
    /// buffering: the wider interval wins, and a single fsync covers
    /// everything written since the last one.
    ///
    /// # Errors
    /// Any I/O error from syncing.
    pub fn commit_batch(&mut self) -> io::Result<()> {
        match (self.batch_start, self.group_window) {
            (None, _) => Ok(()),
            (Some(start), Some(window)) if start.elapsed() < window => Ok(()),
            _ => self.sync(),
        }
    }

    /// Whether appended bytes are still awaiting their fsync — a batch
    /// opened by [`append_line_deferred`](Self::append_line_deferred) or
    /// an open group-commit window. On-disk lines are complete either
    /// way; pending only means a crash could lose the tail.
    pub fn has_pending_batch(&self) -> bool {
        self.batch_start.is_some()
    }

    /// Fsyncs now, closing any open group-commit batch. A no-op when
    /// nothing is pending is still just one cheap fsync.
    ///
    /// # Errors
    /// Any I/O error from syncing.
    pub fn sync(&mut self) -> io::Result<()> {
        self.batch_start = None;
        fault::check(DurOp::Fsync, &self.path)?;
        self.file.sync_data()
    }
}

impl Drop for DurableAppender {
    fn drop(&mut self) {
        // Best effort: don't let an open batch die with the handle. Errors
        // are unreportable here; the crash contract already tolerates a
        // lost tail.
        if self.batch_start.is_some() {
            let _ = self.file.sync_data();
        }
    }
}

pub mod fault {
    //! Deterministic storage-fault injection for every durability
    //! operation in this module (and therefore for everything built on
    //! it: campaign journals, snapshots, the serve store).
    //!
    //! A [`FaultPlan`] is a list of rules. Each rule names an action
    //! (`enospc`, `eio`, `short`, `crash`), optional filters (`op=`,
    //! `path=` substring) and an optional window (`at=N`, `from=N`,
    //! `to=M` over the rule's own 1-based match count, or `gate=FILE`
    //! which keeps the rule live only while `FILE` exists — the handle
    //! that lets a test clear a fault on a *running* daemon). Plans are
    //! armed in-process with [`arm`] (scoped by the returned guard, so
    //! parallel tests compose as long as they filter by path) or for a
    //! whole process tree via the `DRAMCTRL_FAULT_PLAN` environment
    //! variable.
    //!
    //! Grammar, rules separated by `;`, fields by `,`:
    //!
    //! ```text
    //! enospc,op=fsync,path=accept.jsonl,at=3
    //! crash,at=17
    //! eio,op=write,from=2,to=4
    //! enospc,gate=/tmp/gate-file
    //! short,op=write,path=journal,at=5
    //! ```
    //!
    //! Determinism: rules fire on their own match counters, never on
    //! wall-clock or randomness, so the Nth durability op of a
    //! deterministic workload is the same op every run. The disarmed
    //! fast path is one relaxed atomic load plus one relaxed increment
    //! of the global op counter ([`op_count`]) — it never changes any
    //! output byte, preserving the zero-perturbation discipline.
    //!
    //! `crash` terminates the process with exit code
    //! [`CRASH_EXIT_CODE`], the same code the journal's historical
    //! `DRAMCTRL_TEST_KILL_AFTER_APPENDS` hook uses (that hook now
    //! routes through [`crash_now`] too).

    use std::io::{self, Write};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Exit code used by injected crashes — distinguishable from a panic
    /// (101) and from clean exits, and shared with the legacy
    /// kill-after-appends hook so existing crash-safety CI keeps working.
    pub const CRASH_EXIT_CODE: i32 = 86;

    /// The durability operations a fault can attach to.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum DurOp {
        /// Creating (or opening for append) a durable file.
        Create,
        /// Writing payload bytes.
        Write,
        /// fsync / fdatasync of a file.
        Fsync,
        /// Atomic rename over the destination.
        Rename,
        /// fsync of a parent directory.
        DirSync,
    }

    impl DurOp {
        /// Stable lower-case name used by the plan grammar and reports.
        pub fn name(self) -> &'static str {
            match self {
                DurOp::Create => "create",
                DurOp::Write => "write",
                DurOp::Fsync => "fsync",
                DurOp::Rename => "rename",
                DurOp::DirSync => "dirsync",
            }
        }

        fn parse(s: &str) -> Result<Self, String> {
            Ok(match s {
                "create" => DurOp::Create,
                "write" => DurOp::Write,
                "fsync" => DurOp::Fsync,
                "rename" => DurOp::Rename,
                "dirsync" => DurOp::DirSync,
                other => return Err(format!("unknown op {other:?}")),
            })
        }
    }

    /// What an armed rule does when it fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Fail with `ENOSPC` (disk full).
        Enospc,
        /// Fail with `EIO` (generic I/O error).
        Eio,
        /// Write only half the payload, then fail with `ENOSPC` —
        /// produces a real torn record on disk. On non-write ops this
        /// degenerates to plain `ENOSPC`.
        Short,
        /// Kill the process with [`CRASH_EXIT_CODE`] before the op runs.
        Crash,
    }

    impl Action {
        fn parse(s: &str) -> Result<Self, String> {
            Ok(match s {
                "enospc" => Action::Enospc,
                "eio" => Action::Eio,
                "short" => Action::Short,
                "crash" => Action::Crash,
                other => return Err(format!("unknown action {other:?}")),
            })
        }
    }

    /// One injection rule: action + filters + firing window.
    #[derive(Debug, Clone)]
    pub struct FaultRule {
        action: Action,
        /// Only ops of this kind match (`None`: all ops).
        op: Option<DurOp>,
        /// Only paths whose UTF-8 form contains this substring match.
        path_substr: Option<String>,
        /// Rule is live only while this file exists.
        gate: Option<std::path::PathBuf>,
        /// 1-based first match that fires (`at=`/`from=`).
        from: u64,
        /// 1-based last match that fires (`at=`/`to=`), inclusive.
        to: u64,
    }

    impl FaultRule {
        fn parse(spec: &str) -> Result<Self, String> {
            let mut fields = spec.split(',').map(str::trim);
            let action = Action::parse(fields.next().unwrap_or(""))?;
            let mut rule = FaultRule {
                action,
                op: None,
                path_substr: None,
                gate: None,
                from: 1,
                to: u64::MAX,
            };
            for field in fields {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got {field:?}"))?;
                let num = || {
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("{key}= wants a number, got {value:?}"))
                };
                match key {
                    "op" => rule.op = Some(DurOp::parse(value)?),
                    "path" => rule.path_substr = Some(value.to_owned()),
                    "gate" => rule.gate = Some(std::path::PathBuf::from(value)),
                    "at" => {
                        rule.from = num()?;
                        rule.to = rule.from;
                    }
                    "from" => rule.from = num()?,
                    "to" => rule.to = num()?,
                    other => return Err(format!("unknown field {other:?} in {spec:?}")),
                }
            }
            if rule.from == 0 {
                return Err(format!("match counts are 1-based in {spec:?}"));
            }
            Ok(rule)
        }
    }

    /// A parsed, not-yet-armed set of fault rules.
    #[derive(Debug, Clone, Default)]
    pub struct FaultPlan {
        rules: Vec<FaultRule>,
    }

    impl FaultPlan {
        /// Parses a plan from the `;`-separated grammar described in the
        /// module docs. Empty specs yield an empty (no-op) plan.
        ///
        /// # Errors
        /// A description of the first malformed rule.
        pub fn parse(spec: &str) -> Result<Self, String> {
            let rules = spec
                .split(';')
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .map(FaultRule::parse)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Self { rules })
        }

        /// Number of rules in the plan.
        pub fn len(&self) -> usize {
            self.rules.len()
        }

        /// Whether the plan has no rules (a no-op when armed).
        pub fn is_empty(&self) -> bool {
            self.rules.is_empty()
        }
    }

    /// One armed rule plus its private match counter.
    #[derive(Debug)]
    struct ActiveRule {
        guard_id: u64,
        rule: FaultRule,
        matches: u64,
    }

    /// Fast path: false ⇒ `check` costs two relaxed atomics and no lock.
    static ARMED: AtomicBool = AtomicBool::new(false);
    /// Every durability op ever checked in this process, armed or not —
    /// the crash-point explorer sizes its matrix from this.
    static OPS: AtomicU64 = AtomicU64::new(0);
    static NEXT_GUARD: AtomicU64 = AtomicU64::new(1);

    fn rules() -> &'static Mutex<Vec<ActiveRule>> {
        static RULES: OnceLock<Mutex<Vec<ActiveRule>>> = OnceLock::new();
        RULES.get_or_init(|| {
            let mut initial = Vec::new();
            if let Ok(spec) = std::env::var("DRAMCTRL_FAULT_PLAN") {
                // A malformed plan must not be silently ignored: the
                // test believes faults are armed.
                let plan = FaultPlan::parse(&spec)
                    .unwrap_or_else(|e| panic!("bad DRAMCTRL_FAULT_PLAN {spec:?}: {e}"));
                for rule in plan.rules {
                    initial.push(ActiveRule {
                        guard_id: 0,
                        rule,
                        matches: 0,
                    });
                }
            }
            if !initial.is_empty() {
                ARMED.store(true, Ordering::Relaxed);
            }
            Mutex::new(initial)
        })
    }

    /// Disarms the rules of a dropped [`arm`] guard. Env-armed rules
    /// (guard id 0) live for the whole process.
    #[derive(Debug)]
    pub struct FaultGuard {
        id: u64,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            let mut rules = rules().lock().unwrap();
            rules.retain(|r| r.guard_id != self.id);
            ARMED.store(!rules.is_empty(), Ordering::Relaxed);
        }
    }

    /// Arms `plan` in-process, *adding* its rules to whatever is already
    /// armed; the rules live until the returned guard drops. Parallel
    /// tests stay independent by filtering on their own temp paths.
    pub fn arm(plan: FaultPlan) -> FaultGuard {
        let id = NEXT_GUARD.fetch_add(1, Ordering::Relaxed);
        let mut rules = rules().lock().unwrap();
        for rule in plan.rules {
            rules.push(ActiveRule {
                guard_id: id,
                rule,
                matches: 0,
            });
        }
        ARMED.store(!rules.is_empty(), Ordering::Relaxed);
        FaultGuard { id }
    }

    /// Parses and arms in one step.
    ///
    /// # Errors
    /// A description of the first malformed rule.
    pub fn arm_str(spec: &str) -> Result<FaultGuard, String> {
        Ok(arm(FaultPlan::parse(spec)?))
    }

    /// Total durability operations checked by this process so far
    /// (armed or not). A deterministic workload always reports the same
    /// count, which is exactly what the crash-point explorer enumerates.
    pub fn op_count() -> u64 {
        OPS.load(Ordering::Relaxed)
    }

    /// Terminates the process the way an injected crash does: exit code
    /// [`CRASH_EXIT_CODE`], stdout flushed so a harness reading our
    /// progress lines sees everything acknowledged before the "power
    /// cut".
    pub fn crash_now() -> ! {
        let _ = io::stdout().flush();
        std::process::exit(CRASH_EXIT_CODE)
    }

    fn injected(kind: i32, what: &str, op: DurOp, path: &Path) -> io::Error {
        let base = io::Error::from_raw_os_error(kind);
        io::Error::new(
            base.kind(),
            format!("injected {what} at {} {}", op.name(), path.display()),
        )
    }

    #[cfg(unix)]
    const ENOSPC: i32 = 28;
    #[cfg(unix)]
    const EIO: i32 = 5;
    #[cfg(not(unix))]
    const ENOSPC: i32 = 112;
    #[cfg(not(unix))]
    const EIO: i32 = 1117;

    /// Consults the armed plan for `op` on `path`: returns the action of
    /// the first rule whose filters, gate and window all match (also
    /// bumping that rule's match counter), or `None`. An un-windowed
    /// matching rule keeps firing until disarmed.
    fn fire(op: DurOp, path: &Path) -> Option<Action> {
        OPS.fetch_add(1, Ordering::Relaxed);
        // The env-var plan loads inside `rules()`, which nothing calls
        // until a plan is armed in-process — so force that one-time load
        // here, or `ARMED` would short-circuit an env-armed process
        // forever. After the first call this is a single atomic load.
        static ENV_INIT: std::sync::Once = std::sync::Once::new();
        ENV_INIT.call_once(|| {
            let _ = rules();
        });
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let mut rules = rules().lock().unwrap();
        let text = path.to_string_lossy();
        for active in rules.iter_mut() {
            let r = &active.rule;
            if r.op.is_some_and(|want| want != op) {
                continue;
            }
            if r.path_substr.as_deref().is_some_and(|s| !text.contains(s)) {
                continue;
            }
            if r.gate.as_deref().is_some_and(|g| !g.exists()) {
                continue;
            }
            active.matches += 1;
            if active.matches >= active.rule.from && active.matches <= active.rule.to {
                return Some(active.rule.action);
            }
        }
        None
    }

    /// Gate for non-write durability ops: fails (or crashes) if an armed
    /// rule fires, else lets the real operation proceed.
    ///
    /// # Errors
    /// The injected `ENOSPC`/`EIO` when a rule fires.
    pub fn check(op: DurOp, path: &Path) -> io::Result<()> {
        match fire(op, path) {
            None => Ok(()),
            Some(Action::Crash) => crash_now(),
            Some(Action::Eio) => Err(injected(EIO, "eio", op, path)),
            Some(Action::Enospc | Action::Short) => Err(injected(ENOSPC, "enospc", op, path)),
        }
    }

    /// Gate for payload writes: on `short` it writes the first half of
    /// `bytes` for real before failing, leaving a genuinely torn record
    /// for recovery code to face.
    ///
    /// # Errors
    /// The injected `ENOSPC`/`EIO` when a rule fires, or a real error
    /// from the underlying write.
    pub fn checked_write(file: &mut impl Write, bytes: &[u8], path: &Path) -> io::Result<()> {
        match fire(DurOp::Write, path) {
            None => file.write_all(bytes),
            Some(Action::Crash) => crash_now(),
            Some(Action::Eio) => Err(injected(EIO, "eio", DurOp::Write, path)),
            Some(Action::Enospc) => Err(injected(ENOSPC, "enospc", DurOp::Write, path)),
            Some(Action::Short) => {
                file.write_all(&bytes[..bytes.len() / 2])?;
                Err(injected(ENOSPC, "short write", DurOp::Write, path))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dramctrl-fsio-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let d = tmp_dir("atomic");
        let p = d.join("out.json");
        write_atomic(&p, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "first");
        write_atomic(&p, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "second");
        // No stray temporaries survive a successful write.
        let stray: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "out.json")
            .collect();
        assert!(stray.is_empty(), "leftover files: {stray:?}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn write_atomic_relative_path_in_cwd_works() {
        let d = tmp_dir("rel");
        let p = d.join("nested").join("out.txt");
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        write_atomic(&p, b"data".as_slice()).unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"data");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn group_commit_batches_then_syncs_on_demand() {
        let d = tmp_dir("group");
        let p = d.join("g.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();
        // A generous window: none of these appends should sync themselves.
        a.set_group_commit(Some(Duration::from_secs(3600)));
        a.append_line("one").unwrap();
        a.append_line("two").unwrap();
        // The bytes are written (visible) even before the batch syncs...
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\n");
        // ...and an explicit sync closes the batch.
        a.sync().unwrap();
        // A zero window degenerates to sync-every-append.
        a.set_group_commit(Some(Duration::ZERO));
        a.append_line("three").unwrap();
        // Turning it off restores the default contract.
        a.set_group_commit(None);
        a.append_line("four").unwrap();
        drop(a);
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "one\ntwo\nthree\nfour\n"
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn batched_commit_composes_with_group_commit_wider_interval_wins() {
        let d = tmp_dir("batch-group");
        let p = d.join("b.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();

        // No group window: commit_batch is the batch's commit point.
        a.append_line_deferred("one").unwrap();
        a.append_line_deferred("two").unwrap();
        assert!(a.has_pending_batch());
        a.commit_batch().unwrap();
        assert!(!a.has_pending_batch());

        // A window wider than the batch cadence supersedes the per-batch
        // sync: the batch stays pending and rides the window — one shared
        // dirty flag, no double buffering.
        a.set_group_commit(Some(Duration::from_secs(3600)));
        a.append_line_deferred("three").unwrap();
        a.commit_batch().unwrap();
        assert!(
            a.has_pending_batch(),
            "an open group window must defer the batch sync"
        );
        // The lines are complete and visible even while pending.
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\nthree\n");
        // An explicit sync closes the window's batch.
        a.sync().unwrap();
        assert!(!a.has_pending_batch());

        // An already-elapsed window: the batch sync wins again.
        a.set_group_commit(Some(Duration::ZERO));
        a.append_line_deferred("four").unwrap();
        a.commit_batch().unwrap();
        assert!(
            !a.has_pending_batch(),
            "a closed window syncs with the batch"
        );
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "one\ntwo\nthree\nfour\n"
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn appender_accumulates_lines() {
        let d = tmp_dir("append");
        let p = d.join("j.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();
        a.append_line("one").unwrap();
        a.append_line("two").unwrap();
        drop(a);
        let mut b = DurableAppender::append_to(&p).unwrap();
        b.append_line("three").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\nthree\n");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn concurrent_write_atomic_to_one_path_never_collides() {
        let d = tmp_dir("race");
        let p = d.join("shared.json");
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..20 {
                        write_atomic(&p, format!("writer-{t}-{i}")).unwrap();
                    }
                });
            }
        });
        // Whoever won last, the file is a complete record and no temp
        // sibling survived the race.
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("writer-"), "{text:?}");
        let stray: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "shared.json")
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn fault_plan_grammar_rejects_nonsense() {
        for bad in [
            "explode",
            "enospc,at=zero",
            "enospc,op=telepathy",
            "crash,at=0",
            "enospc,window",
        ] {
            assert!(fault::FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(fault::FaultPlan::parse("").unwrap().is_empty());
        assert_eq!(
            fault::FaultPlan::parse("enospc,op=fsync,at=3; crash,path=x")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn injected_enospc_fails_write_atomic_and_preserves_old_contents() {
        let d = tmp_dir("fault-enospc");
        let p = d.join("report.json");
        write_atomic(&p, "good").unwrap();
        let _g = fault::arm_str("enospc,op=fsync,path=fault-enospc").unwrap();
        let err = write_atomic(&p, "doomed").unwrap_err();
        assert!(err.to_string().contains("injected enospc"), "{err}");
        drop(_g);
        // Old contents intact, failed temp cleaned up, and after disarm
        // the same write succeeds.
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "good");
        assert_eq!(std::fs::read_dir(&d).unwrap().count(), 1);
        write_atomic(&p, "better").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "better");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn short_write_tears_an_append_mid_record() {
        let d = tmp_dir("fault-short");
        let p = d.join("j.jsonl");
        let mut a = DurableAppender::create(&p).unwrap();
        a.append_line("whole-record-1").unwrap();
        let g = fault::arm_str("short,op=write,path=fault-short").unwrap();
        let err = a.append_line("whole-record-2").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        drop(g);
        // Half the record and no newline: a genuinely torn tail.
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "whole-record-1\nwhole-r"
        );
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn at_window_fires_exactly_once_then_heals() {
        let d = tmp_dir("fault-window");
        let p = d.join("j.jsonl");
        let _g = fault::arm_str("eio,op=write,path=fault-window,at=3").unwrap();
        let mut a = DurableAppender::create(&p).unwrap();
        a.append_line("one").unwrap();
        a.append_line("two").unwrap();
        let err = a.append_line("three").unwrap_err();
        assert!(err.to_string().contains("injected eio"), "{err}");
        a.append_line("four").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "one\ntwo\nfour\n");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn gate_rule_faults_only_while_gate_file_exists() {
        let d = tmp_dir("fault-gate");
        let gate = d.join("gate");
        let p = d.join("j.jsonl");
        let spec = format!(
            "enospc,op=fsync,path=fault-gate,gate={}",
            gate.to_str().unwrap()
        );
        let _g = fault::arm_str(&spec).unwrap();
        let mut a = DurableAppender::create(&p).unwrap();
        a.append_line("before").unwrap();
        std::fs::write(&gate, "").unwrap();
        assert!(a
            .append_line("while-gated")
            .unwrap_err()
            .to_string()
            .contains("enospc"));
        std::fs::remove_file(&gate).unwrap();
        a.append_line("after").unwrap();
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn op_count_grows_with_every_durability_op() {
        let d = tmp_dir("fault-count");
        let before = fault::op_count();
        // create(tmp) + write + fsync + rename + dirsync = 5 ops, though
        // parallel tests may add their own — only monotonicity and a
        // lower bound are portable assertions.
        write_atomic(d.join("x"), "x").unwrap();
        assert!(fault::op_count() >= before + 5);
        std::fs::remove_dir_all(&d).unwrap();
    }
}
