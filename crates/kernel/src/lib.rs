//! Discrete-event simulation kernel for the `dramctrl` simulator family.
//!
//! The kernel is deliberately tiny: simulated time ([`Tick`], one tick equals
//! one picosecond, as in gem5), clock-domain helpers ([`Clock`]) and a
//! deterministic [`EventQueue`]. Components built on top of the kernel are
//! *event-based*: they only execute when something changes and otherwise skip
//! ahead to the next interesting point in time. This is the modelling
//! technique at the heart of the paper this project reproduces
//! ("Simulating DRAM controllers for future system architecture
//! exploration", ISPASS 2014, Section II-D): rather than updating DRAM state
//! cycle by cycle, the controller schedules a handful of events and computes
//! state transitions from timestamps.
//!
//! # Example
//!
//! ```
//! use dramctrl_kernel::{EventQueue, tick};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(tick::from_ns(5.0), Ev::Pong);
//! q.schedule(tick::from_ns(1.0), Ev::Ping);
//! assert_eq!(q.pop(), Some((tick::from_ns(1.0), Ev::Ping)));
//! assert_eq!(q.pop(), Some((tick::from_ns(5.0), Ev::Pong)));
//! assert_eq!(q.pop(), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
mod clock;
mod event;
pub mod fsio;
pub mod hash;
pub mod rng;
pub mod snap;
pub mod tick;

pub use clock::Clock;
pub use event::{EventQueue, SimStall};
pub use tick::Tick;
