use crate::tick::{Tick, S};

/// A clock domain: converts between cycles and [`Tick`]s and aligns times to
/// clock edges.
///
/// DRAM interfaces and cycle-based controller models are clocked; the
/// event-based controller largely works in raw ticks but still needs the
/// memory-bus clock period (`tCK`) to express burst durations.
///
/// # Example
/// ```
/// use dramctrl_kernel::Clock;
///
/// // DDR3-1333: 666 MHz bus clock (tCK = 1.5 ns).
/// let clk = Clock::from_frequency_mhz(666.666_666);
/// assert_eq!(clk.period(), 1_500);
/// assert_eq!(clk.cycles(4), 6_000);
/// // Align an arbitrary tick up to the next clock edge.
/// assert_eq!(clk.ceil_edge(6_001), 7_500);
/// assert_eq!(clk.ceil_edge(6_000), 6_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    period: Tick,
}

impl Clock {
    /// Creates a clock with the given period in ticks (picoseconds).
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn from_period(period: Tick) -> Self {
        assert!(period > 0, "clock period must be non-zero");
        Self { period }
    }

    /// Creates a clock from a frequency in MHz, rounding the period to the
    /// nearest picosecond.
    ///
    /// # Panics
    /// Panics if the frequency is not positive or exceeds 1 THz.
    pub fn from_frequency_mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive");
        let period = (1e6 / mhz).round() as Tick;
        assert!(period > 0, "clock frequency above 1 THz is not supported");
        Self { period }
    }

    /// The clock period in ticks.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// The clock frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        S as f64 / self.period as f64
    }

    /// Duration of `n` cycles in ticks.
    pub fn cycles(&self, n: u64) -> Tick {
        n * self.period
    }

    /// Number of *whole* cycles elapsed at `t` (floor).
    pub fn to_cycles(&self, t: Tick) -> u64 {
        t / self.period
    }

    /// Number of cycles needed to cover `t` (ceiling). Used to convert
    /// nanosecond timing parameters to cycle counts in the cycle-based model.
    pub fn to_cycles_ceil(&self, t: Tick) -> u64 {
        t.div_ceil(self.period)
    }

    /// Rounds `t` up to the next clock edge (identity if already aligned).
    pub fn ceil_edge(&self, t: Tick) -> Tick {
        t.div_ceil(self.period) * self.period
    }

    /// Rounds `t` down to the previous clock edge.
    pub fn floor_edge(&self, t: Tick) -> Tick {
        (t / self.period) * self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tick;

    #[test]
    fn frequency_round_trip() {
        let clk = Clock::from_frequency_mhz(800.0);
        assert_eq!(clk.period(), 1_250);
        assert!((clk.frequency_hz() - 800e6).abs() < 1.0);
    }

    #[test]
    fn cycle_arithmetic() {
        let clk = Clock::from_period(1_500);
        assert_eq!(clk.cycles(0), 0);
        assert_eq!(clk.cycles(10), 15_000);
        assert_eq!(clk.to_cycles(15_000), 10);
        assert_eq!(clk.to_cycles(15_001), 10);
        assert_eq!(clk.to_cycles_ceil(15_001), 11);
        assert_eq!(clk.to_cycles_ceil(15_000), 10);
    }

    #[test]
    fn edge_alignment() {
        let clk = Clock::from_period(1_000);
        assert_eq!(clk.ceil_edge(0), 0);
        assert_eq!(clk.ceil_edge(1), 1_000);
        assert_eq!(clk.ceil_edge(1_000), 1_000);
        assert_eq!(clk.floor_edge(1_999), 1_000);
    }

    #[test]
    fn ddr3_1333_timings_in_cycles() {
        // tRCD = 13.75 ns at tCK = 1.5 ns is 10 cycles (9.17 rounded up).
        let clk = Clock::from_frequency_mhz(666.666_666);
        assert_eq!(clk.to_cycles_ceil(tick::from_ns(13.75)), 10);
    }

    #[test]
    #[should_panic(expected = "clock period must be non-zero")]
    fn zero_period_panics() {
        let _ = Clock::from_period(0);
    }
}
