//! Versioned, dependency-free binary snapshots for crash-safe simulation.
//!
//! A snapshot is a flat little-endian byte stream behind a fixed header:
//!
//! | offset | bytes | field                                     |
//! |--------|-------|-------------------------------------------|
//! | 0      | 4     | magic `"DCKP"`                            |
//! | 4      | 4     | format version (`u32`, currently 1)       |
//! | 8      | 8     | configuration fingerprint (`u64`)         |
//! | 16     | …     | component state, written by [`SnapState`] |
//!
//! The fingerprint is a hash of the *configuration* the state was captured
//! under (device spec, policies, workload parameters, seeds). Restoring
//! against a different configuration would silently diverge, so
//! [`SnapReader::new`] refuses a mismatched fingerprint loudly instead.
//!
//! The format deliberately has no self-describing field tags: every
//! component writes and reads its fields in one fixed order, and the
//! version number in the header is bumped whenever any component's layout
//! changes. That keeps snapshots byte-deterministic (the same state always
//! serialises to the same bytes) and the code dependency-free.

use std::fmt;

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: [u8; 4] = *b"DCKP";

/// Current snapshot format version. Bump on any layout change — there is
/// deliberately no cross-version migration, only loud rejection.
pub const SNAP_VERSION: u32 = 1;

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The snapshot was written by a different format version.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// The snapshot was captured under a different configuration.
    Fingerprint {
        /// Fingerprint the restoring configuration hashes to.
        expected: u64,
        /// Fingerprint found in the header.
        found: u64,
    },
    /// The buffer ended before the expected state did.
    Truncated,
    /// A decoded value violated an invariant of the component being
    /// restored.
    Corrupt(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a dramctrl checkpoint (bad magic)"),
            SnapError::Version { found } => write!(
                f,
                "checkpoint format version {found} is not the supported version {SNAP_VERSION}"
            ),
            SnapError::Fingerprint { expected, found } => write!(
                f,
                "checkpoint was taken under a different configuration \
                 (fingerprint {found:#018x}, this configuration is {expected:#018x})"
            ),
            SnapError::Truncated => write!(f, "checkpoint is truncated"),
            SnapError::Corrupt(why) => write!(f, "checkpoint is corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a over `bytes`: the configuration fingerprint hash. Stable across
/// platforms and processes; not cryptographic (a checkpoint is trusted
/// input, the fingerprint only guards against honest mistakes).
#[must_use]
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialises component state into a snapshot byte stream.
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Starts a snapshot for a configuration hashing to `fingerprint`.
    #[must_use]
    pub fn new(fingerprint: u64) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&SNAP_MAGIC);
        buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        Self { buf }
    }

    /// Finishes the snapshot and returns its bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` bit-exactly (`to_bits`), so restored floating-point
    /// statistics reproduce byte-identical reports.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.bool(true);
                self.u64(v);
            }
            None => self.bool(false),
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Deserialises component state from a snapshot byte stream, validating
/// the header first.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Opens `buf`, checking magic, version and the configuration
    /// fingerprint against `expected_fingerprint`.
    ///
    /// # Errors
    /// Returns the specific [`SnapError`] for a bad magic, an unsupported
    /// version or a fingerprint mismatch.
    pub fn new(buf: &'a [u8], expected_fingerprint: u64) -> Result<Self, SnapError> {
        let mut r = Self { buf, pos: 0 };
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = r.u8()?;
        }
        if magic != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAP_VERSION {
            return Err(SnapError::Version { found: version });
        }
        let found = r.u64()?;
        if found != expected_fingerprint {
            return Err(SnapError::Fingerprint {
                expected: expected_fingerprint,
                found,
            });
        }
        Ok(r)
    }

    /// Whether every byte has been consumed — a restore that leaves bytes
    /// behind read a snapshot of something else.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("length {v} exceeds usize")))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Corrupt(format!("bool byte {other}"))),
        }
    }

    /// Reads a bit-exact `f64`.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Corrupt("string is not UTF-8".into()))
    }
}

/// A component whose dynamic state can be captured into a snapshot and
/// restored into a freshly constructed instance.
///
/// The contract is split deliberately: *configuration* is rebuilt by the
/// caller (construct the component from its `Config` first), then
/// `restore_state` overwrites the dynamic state. After a restore the
/// component must behave byte-identically to the instance that was saved —
/// same future event order, same statistics, same random streams.
pub trait SnapState {
    /// Appends this component's dynamic state to `w`.
    fn save_state(&self, w: &mut SnapWriter);

    /// Overwrites this component's dynamic state from `r`.
    ///
    /// # Errors
    /// Returns a [`SnapError`] if the stream is truncated or violates one
    /// of the component's invariants.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

impl<T: SnapState + ?Sized> SnapState for Box<T> {
    fn save_state(&self, w: &mut SnapWriter) {
        (**self).save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        (**self).restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = SnapWriter::new(7);
        w.u8(0xAB);
        w.u16(0xCDEF);
        w.u32(123);
        w.u64(u64::MAX);
        w.u128(1 << 100);
        w.usize(42);
        w.bool(true);
        w.bool(false);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.opt_u64(Some(5));
        w.opt_u64(None);
        w.str("héllo");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes, 7).unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xCDEF);
        assert_eq!(r.u32().unwrap(), 123);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        // Bit-exact floats: -0.0 and NaN survive with their exact bits.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.opt_u64().unwrap(), Some(5));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn header_is_validated() {
        let bytes = SnapWriter::new(1).into_bytes();
        assert!(SnapReader::new(&bytes, 1).is_ok());
        assert_eq!(
            SnapReader::new(&bytes, 2).map(|_| ()).unwrap_err(),
            SnapError::Fingerprint {
                expected: 2,
                found: 1
            },
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            SnapReader::new(&bad_magic, 1),
            Err(SnapError::BadMagic)
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            SnapReader::new(&bad_version, 1),
            Err(SnapError::Version { .. })
        ));

        assert!(matches!(
            SnapReader::new(&bytes[..10], 1),
            Err(SnapError::Truncated)
        ));
    }

    #[test]
    fn truncation_and_corruption_are_detected() {
        let mut w = SnapWriter::new(0);
        w.u64(9);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 1], 0).unwrap();
        assert_eq!(r.u64(), Err(SnapError::Truncated));

        let mut w = SnapWriter::new(0);
        w.u8(7); // not a valid bool
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, 0).unwrap();
        assert!(matches!(r.bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        // The canonical FNV-1a 64 test vector.
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn error_messages_name_the_cause() {
        let msg = SnapError::Fingerprint {
            expected: 1,
            found: 2,
        }
        .to_string();
        assert!(msg.contains("different configuration"));
        assert!(SnapError::Truncated.to_string().contains("truncated"));
    }
}
