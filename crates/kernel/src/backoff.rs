//! Shared retry pacing: capped exponential backoff, in two flavours.
//!
//! Every retry loop in the workspace used to hand-roll the same three
//! lines (`delay = (delay * 2).min(cap)`), each with its own constants
//! and its own off-by-one about when the doubling happens. This module
//! is the single implementation:
//!
//! * [`Backoff`] — a stateful schedule for loops that retry against an
//!   external resource (a failing store, a dead daemon). The caller
//!   sleeps for [`Backoff::next_delay`], and calls [`Backoff::reset`]
//!   when the resource shows signs of life so the next outage starts
//!   from the short end again.
//! * [`deterministic_ms`] — a stateless exponential-with-jitter delay
//!   derived from `(seed, attempt)` and never from the wall clock, for
//!   the executor's job-retry path where reproducibility matters more
//!   than desynchronisation.
//!
//! ```
//! use std::time::Duration;
//! use dramctrl_kernel::backoff::Backoff;
//!
//! let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2));
//! assert_eq!(b.next_delay(), Duration::from_millis(50));
//! assert_eq!(b.next_delay(), Duration::from_millis(100));
//! b.reset();
//! assert_eq!(b.next_delay(), Duration::from_millis(50));
//! ```

use std::time::Duration;

use crate::rng::splitmix64;

/// A capped exponential backoff schedule: `start, 2·start, 4·start, …`
/// saturating at `max`.
#[derive(Debug, Clone)]
pub struct Backoff {
    start: Duration,
    max: Duration,
    next: Duration,
}

impl Backoff {
    /// A schedule beginning at `start` and doubling up to `max`.
    #[must_use]
    pub fn new(start: Duration, max: Duration) -> Self {
        Self {
            start,
            max,
            next: start,
        }
    }

    /// The delay to sleep before the next attempt. Advances the
    /// schedule: the following call returns double this, capped.
    pub fn next_delay(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(self.max);
        d
    }

    /// The delay [`Backoff::next_delay`] would return, without
    /// advancing the schedule. Useful for logging `retry_in_ms`.
    #[must_use]
    pub fn current(&self) -> Duration {
        self.next
    }

    /// Restarts the schedule from `start`. Call on progress — a
    /// successful write, a delivered event — so an outage that ends
    /// and recurs is probed promptly rather than at the old cap.
    pub fn reset(&mut self) {
        self.next = self.start;
    }
}

/// Deterministic exponential backoff with jitter, in milliseconds:
/// `base · 2^min(attempt-1, 6)` plus a jitter of up to half that,
/// derived purely from `(seed, attempt)` — never from the wall clock or
/// a thread id — so retries pace identically across runs and worker
/// counts. `attempt` counts from 1 (the first failure). A `base_ms` of
/// zero disables the delay entirely.
#[must_use]
pub fn deterministic_ms(base_ms: u64, seed: u64, attempt: u32) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let expo = base_ms.saturating_mul(1 << (attempt.saturating_sub(1)).min(6));
    let mut state = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let jitter = splitmix64(&mut state) % (expo / 2 + 1);
    expo + jitter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2));
        let mut seen = Vec::new();
        for _ in 0..8 {
            seen.push(b.next_delay().as_millis() as u64);
        }
        assert_eq!(seen, [50, 100, 200, 400, 800, 1600, 2000, 2000]);
    }

    #[test]
    fn reset_on_progress_restarts_schedule() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(2));
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.current(), Duration::from_secs(2));
        b.reset();
        assert_eq!(b.current(), Duration::from_millis(100));
        assert_eq!(b.next_delay(), Duration::from_millis(100));
        assert_eq!(b.next_delay(), Duration::from_millis(200));
    }

    #[test]
    fn current_does_not_advance() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2));
        assert_eq!(b.current(), Duration::from_millis(50));
        assert_eq!(b.current(), Duration::from_millis(50));
        assert_eq!(b.next_delay(), Duration::from_millis(50));
        assert_eq!(b.current(), Duration::from_millis(100));
    }

    #[test]
    fn start_above_max_saturates_immediately() {
        let mut b = Backoff::new(Duration::from_secs(5), Duration::from_secs(2));
        assert_eq!(b.next_delay(), Duration::from_secs(5));
        assert_eq!(b.next_delay(), Duration::from_secs(2));
    }

    #[test]
    fn deterministic_is_repeatable_and_exponential() {
        let a1 = deterministic_ms(100, 42, 1);
        let a2 = deterministic_ms(100, 42, 1);
        assert_eq!(a1, a2, "same (seed, attempt) must give the same delay");
        // Base grows 2x per attempt; jitter is bounded by half the base,
        // so each attempt's delay lies in [expo, 1.5*expo].
        for attempt in 1..=8u32 {
            let expo = 100u64 * (1 << (attempt - 1).min(6));
            let d = deterministic_ms(100, 42, attempt);
            assert!(d >= expo && d <= expo + expo / 2, "attempt {attempt}: {d}");
        }
        // Different seeds de-correlate the jitter.
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|s| deterministic_ms(100, s, 3)).collect();
        assert!(spread.len() > 1, "jitter must depend on the seed");
    }

    #[test]
    fn deterministic_zero_base_disables_delay() {
        for attempt in 1..=4 {
            assert_eq!(deterministic_ms(0, 7, attempt), 0);
        }
    }
}
