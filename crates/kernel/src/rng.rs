//! A small, deterministic pseudo-random number generator.
//!
//! The simulator family needs reproducible randomness (traffic generators,
//! workload models, randomised tests) without pulling in an external crate:
//! the same seed must produce the same stream on every platform, toolchain
//! and — crucially for the campaign engine — every worker-thread count.
//!
//! The implementation is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 so that consecutive integer seeds yield well-decorrelated
//! streams.
//!
//! # Example
//!
//! ```
//! use dramctrl_kernel::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(0..10) < 10);
//! let x = a.gen_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of SplitMix64 — used for seeding and for hashing job indices
/// into decorrelated per-job seeds.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.s = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// A uniform draw from `range` (debiased by rejection sampling).
    ///
    /// # Panics
    /// Panics when the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Rejection-sample the top of the u64 space to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// A uniform draw from the inclusive `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    pub fn gen_range_inclusive(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range_inclusive: empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        self.gen_range(lo..hi + 1)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// The raw xoshiro256** state, for checkpointing. A generator rebuilt
    /// with [`from_state`](Self::from_state) continues the exact stream.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by
    /// [`state`](Self::state).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(0..7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U(0,1) is 0.5; loose bound to stay robust.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = Rng::seed_from_u64(99);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_decorrelates_consecutive_seeds() {
        let mut a = 1u64;
        let mut b = 2u64;
        let (x, y) = (splitmix64(&mut a), splitmix64(&mut b));
        assert_ne!(x, y);
        assert_ne!(x ^ y, 1, "not a trivial xor relation");
    }
}
