use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::tick::Tick;

/// A deterministic discrete-event queue.
///
/// Events are ordered by tick; events scheduled for the same tick are
/// delivered in insertion order (FIFO). This tie-break makes simulations
/// reproducible regardless of heap internals.
///
/// The queue tracks the current simulated time: popping an event advances
/// `now()` to the event's tick. Scheduling in the past is a logic error and
/// panics (in both debug and release builds) — an event-based model must
/// never rewind time.
///
/// # Example
/// ```
/// use dramctrl_kernel::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(100, "b");
/// q.schedule(100, "c"); // same tick: FIFO order
/// q.schedule(50, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
/// assert_eq!(order, vec![(50, "a"), (100, "b"), (100, "c")]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Tick,
    /// Optional watchdog: latest tick the simulation is allowed to reach.
    budget: Option<Tick>,
}

/// A diagnosed no-progress condition: the simulation holds outstanding
/// work but no event that could retire it, or it ran past its tick
/// budget. Raised by [`EventQueue::check_progress`] so drivers fail with
/// a state summary instead of hanging silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStall {
    /// Simulated time at which the stall was detected.
    pub at: Tick,
    /// A component state summary (queue depths, bus state, …) supplied by
    /// the caller for the diagnostic.
    pub detail: String,
}

impl std::fmt::Display for SimStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation stalled at tick {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for SimStall {}

#[derive(Debug)]
struct Entry<E> {
    tick: Tick,
    seq: u64,
    event: E,
}

// Min-heap ordering on (tick, seq): BinaryHeap is a max-heap, so reverse.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.tick, other.seq).cmp(&(self.tick, self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue with `now() == 0`.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            budget: None,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before the heap reallocates. Components with a known bound on
    /// outstanding events (e.g. a controller's queue depths) should
    /// pre-size the heap so the hot path never grows it.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: 0,
            budget: None,
        }
    }

    /// Arms (or disarms, with `None`) the watchdog: once `now()` passes
    /// `budget`, [`check_progress`](Self::check_progress) reports a
    /// [`SimStall`]. Off by default.
    pub fn set_tick_budget(&mut self, budget: Option<Tick>) {
        self.budget = budget;
    }

    /// The no-progress guard. Returns a [`SimStall`] when the component
    /// holds `outstanding > 0` items of work but no event is pending (the
    /// simulation would hang), or when the armed tick budget has been
    /// exceeded (the simulation is live-locked or runaway). `detail` is
    /// evaluated lazily, only on a stall, to render the component's state
    /// summary.
    pub fn check_progress(
        &self,
        outstanding: usize,
        detail: impl FnOnce() -> String,
    ) -> Result<(), SimStall> {
        if outstanding > 0 && self.heap.is_empty() {
            return Err(SimStall {
                at: self.now,
                detail: format!(
                    "{outstanding} outstanding item(s) but no event scheduled; {}",
                    detail()
                ),
            });
        }
        if let Some(budget) = self.budget {
            if self.now > budget {
                return Err(SimStall {
                    at: self.now,
                    detail: format!("tick budget {budget} exceeded; {}", detail()),
                });
            }
        }
        Ok(())
    }

    /// The current simulated time (the tick of the last popped event).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than `now()`.
    pub fn schedule(&mut self, at: Tick, event: E) {
        assert!(
            at >= self.now,
            "scheduling in the past: at={} now={}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            tick: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: Tick, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// The tick of the earliest pending event, if any.
    pub fn peek_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.tick)
    }

    /// Removes and returns the earliest event, advancing `now()` to its tick.
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.tick >= self.now);
        self.now = entry.tick;
        Some((entry.tick, entry.event))
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `limit`. Leaves `now()` untouched otherwise.
    pub fn pop_until(&mut self, limit: Tick) -> Option<(Tick, E)> {
        if self.peek_tick()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events; `now()` is preserved.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Returns the queue to its just-constructed state — no pending
    /// events, `now() == 0`, sequence counter rewound, watchdog disarmed
    /// — while keeping the heap's allocation.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = 0;
        self.budget = None;
    }

    /// Appends the queue's full state — current time, the sequence
    /// counter, the watchdog budget and every pending entry — to a
    /// snapshot. Entries are written in pop order, i.e. sorted by
    /// `(tick, seq)`; since that pair totally orders delivery, a queue
    /// rebuilt from them pops identically to this one. `enc` serialises
    /// one event payload.
    pub fn save_state(
        &self,
        w: &mut crate::snap::SnapWriter,
        mut enc: impl FnMut(&mut crate::snap::SnapWriter, &E),
    ) {
        w.u64(self.now);
        w.u64(self.seq);
        w.opt_u64(self.budget);
        let mut entries: Vec<&Entry<E>> = self.heap.iter().collect();
        entries.sort_by_key(|e| (e.tick, e.seq));
        w.usize(entries.len());
        for e in entries {
            w.u64(e.tick);
            w.u64(e.seq);
            enc(w, &e.event);
        }
    }

    /// Replaces the queue's state with one previously captured by
    /// [`save_state`](Self::save_state). `dec` deserialises one event
    /// payload.
    ///
    /// # Errors
    /// Returns a [`SnapError`](crate::snap::SnapError) on a truncated
    /// stream, a failing `dec`, or entries that violate the queue's
    /// ordering invariants (an entry before `now`, or a pending `seq` at
    /// or beyond the sequence counter).
    pub fn restore_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
        mut dec: impl FnMut(&mut crate::snap::SnapReader<'_>) -> Result<E, crate::snap::SnapError>,
    ) -> Result<(), crate::snap::SnapError> {
        use crate::snap::SnapError;
        let now = r.u64()?;
        let seq = r.u64()?;
        let budget = r.opt_u64()?;
        let n = r.usize()?;
        let mut heap = BinaryHeap::with_capacity(n.max(self.heap.capacity()));
        for _ in 0..n {
            let tick = r.u64()?;
            let entry_seq = r.u64()?;
            if tick < now {
                return Err(SnapError::Corrupt(format!(
                    "pending event at tick {tick} is before now {now}"
                )));
            }
            if entry_seq >= seq {
                return Err(SnapError::Corrupt(format!(
                    "pending event seq {entry_seq} is at or beyond the counter {seq}"
                )));
            }
            let event = dec(r)?;
            heap.push(Entry {
                tick,
                seq: entry_seq,
                event,
            });
        }
        self.heap = heap;
        self.seq = seq;
        self.now = now;
        self.budget = budget;
        Ok(())
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pop_advances_now() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.schedule(20, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 10);
        q.pop();
        assert_eq!(q.now(), 20);
    }

    #[test]
    fn fifo_within_same_tick() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    #[should_panic(expected = "scheduling in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.schedule(30, "b");
        assert_eq!(q.pop_until(20), Some((10, "a")));
        assert_eq!(q.pop_until(20), None);
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop_until(30), Some((30, "b")));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        q.pop();
        q.schedule_in(5, "y");
        assert_eq!(q.pop(), Some((105, "y")));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert_eq!(q.now(), 0);
        assert!(q.is_empty());
        q.schedule(3, "x");
        assert_eq!(q.pop(), Some((3, "x")));
    }

    #[test]
    fn watchdog_detects_no_progress_and_budget() {
        let mut q = EventQueue::new();
        // Idle and empty: fine.
        q.check_progress(0, || unreachable!("detail not rendered"))
            .unwrap();
        // Outstanding work with no event: stall.
        let err = q.check_progress(3, || "readq=3".to_owned()).unwrap_err();
        assert_eq!(err.at, 0);
        assert!(err.detail.contains("3 outstanding"));
        assert!(err.detail.contains("readq=3"));
        assert!(format!("{err}").contains("stalled at tick 0"));
        // Pending event: no stall even with outstanding work.
        q.schedule(10, ());
        q.check_progress(3, || unreachable!()).unwrap();
        // Budget watchdog fires once now passes the budget.
        q.set_tick_budget(Some(5));
        q.pop();
        let err = q.check_progress(0, || "bus=idle".to_owned()).unwrap_err();
        assert_eq!(err.at, 10);
        assert!(err.detail.contains("tick budget 5 exceeded"));
        q.set_tick_budget(None);
        q.check_progress(0, || unreachable!()).unwrap();
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_tick(), None);
    }

    /// Randomised (seeded, deterministic) case generator: vectors of
    /// ticks in `[0, 1000)` with lengths in `[1, max_len)`.
    fn random_tick_vecs(seed: u64, cases: usize, max_len: u64) -> Vec<Vec<Tick>> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..cases)
            .map(|_| {
                let len = rng.gen_range(1..max_len);
                (0..len).map(|_| rng.gen_range(0..1_000)).collect()
            })
            .collect()
    }

    /// Events always come out in non-decreasing tick order, and events
    /// with equal ticks come out in insertion order.
    #[test]
    fn ordering_invariant() {
        for ticks in random_tick_vecs(0xE0E0, 256, 200) {
            let mut q = EventQueue::new();
            for (i, &t) in ticks.iter().enumerate() {
                q.schedule(t, i);
            }
            let mut prev: Option<(Tick, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((pt, pi)) = prev {
                    assert!(t >= pt);
                    if t == pt {
                        assert!(i > pi);
                    }
                }
                prev = Some((t, i));
            }
        }
    }

    /// A queue restored from a snapshot pops the exact same stream as the
    /// original — including FIFO tie-breaks and the watchdog budget.
    #[test]
    fn snapshot_round_trip_preserves_pop_order() {
        use crate::snap::{SnapReader, SnapWriter};
        for ticks in random_tick_vecs(0xBEEF, 64, 100) {
            let mut q = EventQueue::new();
            q.set_tick_budget(Some(5_000));
            for (i, &t) in ticks.iter().enumerate() {
                q.schedule(t, i as u64);
            }
            // Pop a few to move `now` and the counter off their defaults.
            for _ in 0..ticks.len() / 3 {
                q.pop();
            }

            let mut w = SnapWriter::new(0);
            q.save_state(&mut w, |w, e| w.u64(*e));
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes, 0).unwrap();
            let mut restored: EventQueue<u64> = EventQueue::new();
            restored.restore_state(&mut r, |r| r.u64()).unwrap();
            assert!(r.is_exhausted());

            assert_eq!(restored.now(), q.now());
            assert_eq!(restored.len(), q.len());
            // Future scheduling interleaves identically (same seq counter).
            q.schedule_in(1, 999);
            restored.schedule_in(1, 999);
            let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
            let b: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn snapshot_rejects_corrupt_entries() {
        use crate::snap::{SnapError, SnapReader, SnapWriter};
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop(); // now = 10
        let mut w = SnapWriter::new(0);
        // Hand-craft: an entry at tick 5, before now=10.
        w.u64(10); // now
        w.u64(7); // seq counter
        w.opt_u64(None);
        w.usize(1);
        w.u64(5); // tick < now
        w.u64(0);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, 0).unwrap();
        let err = q.restore_state(&mut r, |_| Ok(())).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)));
    }

    /// now() equals the tick of the last popped event.
    #[test]
    fn now_tracks_pops() {
        for ticks in random_tick_vecs(0x1111, 256, 50) {
            let mut q = EventQueue::new();
            for &t in &ticks {
                q.schedule(t, ());
            }
            let mut max_seen = 0;
            while let Some((t, ())) = q.pop() {
                max_seen = max_seen.max(t);
                assert_eq!(q.now(), t);
            }
            assert_eq!(q.now(), max_seen);
        }
    }
}
