//! Simulated time.
//!
//! One [`Tick`] is one picosecond, following gem5's convention. A `u64` tick
//! counter wraps after ~213 days of simulated time at picosecond resolution,
//! which is far beyond any realistic simulation; arithmetic is therefore done
//! with plain (checked-in-debug) `u64` operations.

/// Simulated time in picoseconds.
pub type Tick = u64;

/// One picosecond.
pub const PS: Tick = 1;
/// One nanosecond.
pub const NS: Tick = 1_000;
/// One microsecond.
pub const US: Tick = 1_000_000;
/// One millisecond.
pub const MS: Tick = 1_000_000_000;
/// One second.
pub const S: Tick = 1_000_000_000_000;

/// The maximum representable tick, used as "never".
pub const MAX: Tick = Tick::MAX;

/// Converts a (possibly fractional) number of nanoseconds to ticks,
/// rounding to the nearest picosecond.
///
/// # Example
/// ```
/// use dramctrl_kernel::tick;
/// assert_eq!(tick::from_ns(13.75), 13_750);
/// ```
pub fn from_ns(ns: f64) -> Tick {
    debug_assert!(ns >= 0.0, "negative durations are not representable");
    (ns * NS as f64).round() as Tick
}

/// Converts a (possibly fractional) number of microseconds to ticks.
///
/// # Example
/// ```
/// use dramctrl_kernel::tick;
/// assert_eq!(tick::from_us(7.8), 7_800_000);
/// ```
pub fn from_us(us: f64) -> Tick {
    debug_assert!(us >= 0.0, "negative durations are not representable");
    (us * US as f64).round() as Tick
}

/// Converts ticks to fractional nanoseconds (for reporting).
pub fn to_ns(t: Tick) -> f64 {
    t as f64 / NS as f64
}

/// Converts ticks to fractional microseconds (for reporting).
pub fn to_us(t: Tick) -> f64 {
    t as f64 / US as f64
}

/// Converts ticks to fractional seconds (for reporting).
pub fn to_s(t: Tick) -> f64 {
    t as f64 / S as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        assert_eq!(from_ns(1.0), NS);
        assert_eq!(from_ns(0.001), PS);
        assert_eq!(to_ns(from_ns(35.0)), 35.0);
    }

    #[test]
    fn fractional_ns_rounds_to_ps() {
        // tCK of DDR3-1333 is 1.5 ns; half a cycle is 750 ps.
        assert_eq!(from_ns(0.75), 750);
        // Rounding, not truncation.
        assert_eq!(from_ns(0.0006), 1);
        assert_eq!(from_ns(0.0004), 0);
    }

    #[test]
    fn us_conversions() {
        assert_eq!(from_us(1.0), US);
        assert_eq!(from_us(7.8), 7_800 * NS);
        assert!((to_us(MS) - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn to_s_of_one_second() {
        assert_eq!(to_s(S), 1.0);
    }
}
