//! Degraded-mode and hostile-client tests: a daemon whose store starts
//! failing writes must shed admissions (never die), keep serving what it
//! has, and recover by itself when the store heals — with every byte it
//! ever acknowledges identical to an unfaulted run. Clients that idle,
//! send unbounded lines, or stop reading are evicted, not accumulated.
//!
//! All fault rules filter on this test's own temp store path, so
//! parallel tests (and the reference runs) never see each other's
//! faults.

use dramctrl_bench::run_job;
use dramctrl_campaign::{run_campaign_journaled, Campaign, CampaignJournal, ExecutorConfig};
use dramctrl_kernel::fsio::fault;
use dramctrl_serve::proto;
use dramctrl_serve::wire::Value;
use dramctrl_serve::{Client, Listener, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-degraded-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn campaign(name: &str) -> Campaign {
    Campaign::new(name, 42)
        .read_pcts([0, 50, 100])
        .requests([5_000])
}

/// What a standalone journaled sweep of `c` produces — both the report
/// lines and the journal file itself (the byte-identity references).
fn reference(c: &Campaign, dir: &PathBuf) -> (String, String) {
    std::fs::create_dir_all(dir).unwrap();
    let jpath = dir.join("ref.jsonl");
    let mut j = CampaignJournal::create(&jpath, c).unwrap();
    let report = run_campaign_journaled(c, &ExecutorConfig::serial(), &mut j, run_job).to_jsonl();
    (report, std::fs::read_to_string(&jpath).unwrap())
}

/// Daemon on an ephemeral TCP port with a quantum so large no unit ever
/// pauses — no checkpoint writes, so a store-wide fault filter only ever
/// hits the accept log, the journals and the recovery probe.
fn spawn(cfg: ServeConfig) -> (String, Server) {
    let server = Server::open(cfg).expect("open store");
    server.start_scheduler();
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            let _ = server.serve(&listener);
        });
    }
    (addr, server)
}

fn collect_records(client: &mut Client, id: &str) -> String {
    let mut out = std::collections::BTreeMap::new();
    client
        .watch(id, |v, line| {
            if v.get("event").and_then(Value::as_str) == Some("record") {
                let i = v.get("index").and_then(Value::as_u64).unwrap() as usize;
                out.insert(i, proto::record_data(line).unwrap().to_owned());
            }
        })
        .unwrap();
    out.into_values().map(|l| l + "\n").collect()
}

/// Like [`collect_records`], but rides through evictions: a fresh
/// connection per retry, replayed history deduped by unit index.
fn collect_records_resilient(addr: &str, id: &str) -> String {
    let mut out = std::collections::BTreeMap::new();
    Client::watch_with_reconnect(addr, id, |v, line| {
        if v.get("event").and_then(Value::as_str) == Some("record") {
            let i = v.get("index").and_then(Value::as_u64).unwrap() as usize;
            out.insert(i, proto::record_data(line).unwrap().to_owned());
        }
    })
    .unwrap();
    out.into_values().map(|l| l + "\n").collect()
}

fn wait_until(what: &str, timeout: Duration, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn faulting_store_sheds_submits_and_daemon_recovers_without_restart() {
    let root = tmp("shed");
    let store = root.join("store");
    let mut cfg = ServeConfig::new(&store);
    cfg.quantum = 1_000_000;
    let (addr, server) = spawn(cfg);
    let c = campaign("sweep");
    let (want, _) = reference(&c, &root.join("ref"));

    // Healthy baseline: a submit+watch round trip works and matches the
    // standalone run byte for byte.
    let mut client = Client::connect(&addr).unwrap();
    let (id1, _) = client.submit("alice", 0, &c).unwrap();
    assert_eq!(collect_records(&mut client, &id1), want);
    assert!(server.health().is_ok());

    // Break every durable write under this store.
    let guard = fault::arm_str(&format!("enospc,path={}", store.display())).unwrap();

    // The first submit trips over the store and flips the daemon into
    // degraded mode; it and every later submit shed with a
    // store-unavailable rejection — no panic, no exit.
    for _ in 0..2 {
        let err = Client::connect(&addr)
            .unwrap()
            .submit("bob", 0, &c)
            .unwrap_err();
        assert!(err.to_string().contains("store unavailable"), "{err}");
    }

    // Degraded is visible: health 503 body, gauge at 1 — while reads
    // (status, completed-job watch) keep working from memory.
    let body = server.health().unwrap_err();
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(server
        .metrics_exposition()
        .contains("dramctrl_store_degraded 1"));
    assert_eq!(collect_records(&mut client, &id1), want);
    client.status().unwrap();

    // Heal the store: the scheduler's backoff retry recovers on its own.
    drop(guard);
    wait_until("store recovery", Duration::from_secs(10), || {
        server.health().is_ok()
    });
    let text = server.metrics_exposition();
    assert!(text.contains("dramctrl_store_degraded 0"), "{text}");
    assert!(
        !text.contains("dramctrl_store_retries_total 0"),
        "at least one retry was recorded:\n{text}"
    );

    // Post-recovery submits work and are still byte-exact.
    let mut after = Client::connect(&addr).unwrap();
    let (id2, _) = after.submit("bob", 0, &c).unwrap();
    assert_eq!(collect_records(&mut after, &id2), want);
}

#[test]
fn torn_commit_parks_the_outcome_and_recovery_lands_it_byte_identically() {
    let root = tmp("parked");
    let store = root.join("store");
    let mut cfg = ServeConfig::new(&store);
    cfg.quantum = 1_000_000;
    let (addr, server) = spawn(cfg);
    let c = campaign("sweep");
    let (want, want_journal) = reference(&c, &root.join("ref"));

    // Writes under this store, in order: accept line (1), journal
    // header (2), then one commit per unit. Tear exactly the first
    // commit mid-record; the window heals everything after it, so the
    // daemon's own retry loop recovers with no outside help.
    let _guard = fault::arm_str(&format!(
        "short,op=write,path={},from=3,to=3",
        store.display()
    ))
    .unwrap();

    let mut client = Client::connect(&addr).unwrap();
    let (id, _) = client.submit("alice", 0, &c).unwrap();
    // The watch rides through the fault: the unit's outcome is parked,
    // recovery truncates the torn journal bytes, re-commits, and the
    // stream continues — no record lost, none duplicated.
    assert_eq!(collect_records(&mut client, &id), want);

    // The journal on disk is byte-identical to an unfaulted standalone
    // run: the torn tail left by the short write is gone.
    let journal = std::fs::read_to_string(store.join(&id).join("journal.jsonl")).unwrap();
    assert_eq!(journal, want_journal, "torn bytes must not survive");

    wait_until("degraded exit", Duration::from_secs(10), || {
        server.health().is_ok()
    });
    let text = server.metrics_exposition();
    assert!(text.contains("dramctrl_store_degraded 0"), "{text}");
}

#[test]
fn idle_clients_are_evicted_at_the_read_deadline() {
    let root = tmp("idle");
    let mut cfg = ServeConfig::new(root.join("store"));
    cfg.client_timeout = Some(Duration::from_millis(250));
    let (addr, server) = spawn(cfg);

    let stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"hello\""), "{line}");

    // Send nothing. The daemon must hang up on us at the deadline.
    let started = Instant::now();
    line.clear();
    let n = reader.read_line(&mut line).unwrap();
    assert_eq!(n, 0, "daemon closed the idle connection, got {line:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "eviction took {:?}",
        started.elapsed()
    );
    wait_until("eviction counter", Duration::from_secs(5), || {
        server
            .metrics_exposition()
            .lines()
            .any(|l| l.starts_with("dramctrl_clients_evicted_total") && !l.ends_with(" 0"))
    });
}

#[test]
fn oversized_command_lines_get_an_error_then_the_boot() {
    let root = tmp("oversized");
    let (addr, _server) = spawn(ServeConfig::new(root.join("store")));

    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();

    // Just over the 1 MiB command bound (small enough to fit in socket
    // buffers even though the daemon stops reading at the bound).
    let huge = vec![b'x'; (1 << 20) + 64];
    stream.write_all(&huge).unwrap();
    stream.write_all(b"\n").unwrap();

    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"error\"") && line.contains("exceeds"),
        "{line}"
    );
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).unwrap(),
        0,
        "connection must be dropped after an oversized line"
    );
}

#[test]
fn a_watcher_that_stops_reading_does_not_wedge_the_scheduler() {
    let root = tmp("deaf");
    let store = root.join("store");
    let mut cfg = ServeConfig::new(&store);
    cfg.quantum = 200; // many progress events per unit
    cfg.client_timeout = Some(Duration::from_millis(500));
    cfg.subscriber_buffer = 2; // tiny outbound buffer
    let (addr, _server) = spawn(cfg);
    let c = campaign("sweep");
    let (want, _) = reference(&c, &root.join("ref"));

    // A "deaf" watcher: subscribes, then never reads a byte. Its
    // bounded buffer fills (or its socket write times out) and it is
    // evicted — while a healthy watcher on the same job still
    // assembles a complete, byte-exact stream. The healthy watcher
    // goes through `watch_with_reconnect`: with a cap-2 buffer even a
    // briefly descheduled reader can be evicted mid-burst (commit =
    // record + progress + maybe done, back to back), and the contract
    // we care about is that resuming always yields the full gap- and
    // dup-free record set.
    let mut submitter = Client::connect(&addr).unwrap();
    let (id, _) = submitter.submit("alice", 0, &c).unwrap();
    let mut deaf = std::net::TcpStream::connect(&addr).unwrap();
    {
        let mut r = BufReader::new(deaf.try_clone().unwrap());
        let mut l = String::new();
        r.read_line(&mut l).unwrap(); // hello
    }
    writeln!(deaf, "{{\"cmd\":\"watch\",\"id\":\"{id}\"}}").unwrap();
    // Keep the socket open but never read it.

    assert_eq!(collect_records_resilient(&addr, &id), want);

    // Prove the daemon is still fully alive after the deaf client.
    let mut again = Client::connect(&addr).unwrap();
    let (id2, _) = again.submit("alice", 0, &c).unwrap();
    assert_eq!(collect_records_resilient(&addr, &id2), want);
    drop(deaf);
}
