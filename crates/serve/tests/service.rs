//! End-to-end service tests: a real daemon on a real socket, asserting
//! the two acceptance properties — streamed results byte-identical to a
//! standalone campaign run, and restart-on-the-same-store resuming
//! without re-running or losing committed work.

use dramctrl_bench::run_job;
use dramctrl_campaign::{
    run_campaign_journaled, Campaign, CampaignJournal, ExecutorConfig, JobRecord,
};
use dramctrl_serve::proto;
use dramctrl_serve::wire::Value;
use dramctrl_serve::{Client, Listener, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A campaign small enough to finish quickly but with enough requests
/// that the 1 000-request default quantum actually preempts.
fn campaign(name: &str) -> Campaign {
    Campaign::new(name, 42)
        .read_pcts([0, 50, 100])
        .requests([5_000])
}

/// Starts a daemon on an ephemeral TCP port; returns its address.
fn spawn_daemon(store: PathBuf, quantum: u64) -> String {
    let mut cfg = ServeConfig::new(store);
    cfg.quantum = quantum;
    let server = Server::open(cfg).expect("open store");
    server.start_scheduler();
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    std::thread::spawn(move || {
        let _ = server.serve(&listener);
    });
    addr
}

/// The reference: what a standalone journaled CLI sweep of `c` produces.
fn reference_jsonl(c: &Campaign, dir: &PathBuf) -> String {
    std::fs::create_dir_all(dir).unwrap();
    let mut j = CampaignJournal::create(dir.join("ref.jsonl"), c).unwrap();
    run_campaign_journaled(c, &ExecutorConfig::serial(), &mut j, run_job).to_jsonl()
}

#[test]
fn served_records_are_byte_identical_to_standalone_run() {
    let root = tmp("bytes");
    let addr = spawn_daemon(root.join("store"), 1_000);
    let c = campaign("sweep");
    let want = reference_jsonl(&c, &root.join("ref"));

    let mut client = Client::connect(&addr).unwrap();
    let (id, total) = client.submit("alice", 0, &c).unwrap();
    assert_eq!(total, 3);

    // Collect streamed record lines in index order.
    let mut records = vec![None; total];
    let summary = client
        .watch(&id, |v, line| {
            if v.get("event").and_then(Value::as_str) == Some("record") {
                let i = v.get("index").and_then(Value::as_u64).unwrap() as usize;
                let data = proto::record_data(line).expect("record payload").to_owned();
                records[i] = Some(data);
            }
        })
        .unwrap();
    assert_eq!(summary.ok, 3);
    assert_eq!(summary.failed, 0);

    let got: String = records
        .into_iter()
        .map(|r| r.expect("every unit streamed") + "\n")
        .collect();
    assert_eq!(
        got, want,
        "streamed records == standalone sweep, byte for byte"
    );
}

#[test]
fn two_tenants_interleave_and_both_match_standalone() {
    let root = tmp("tenants");
    let addr = spawn_daemon(root.join("store"), 500);
    let ca = campaign("alice-sweep");
    let cb = campaign("bob-sweep");
    let want_a = reference_jsonl(&ca, &root.join("ref-a"));
    let want_b = reference_jsonl(&cb, &root.join("ref-b"));

    let mut ka = Client::connect(&addr).unwrap();
    let mut kb = Client::connect(&addr).unwrap();
    let (ia, _) = ka.submit("alice", 0, &ca).unwrap();
    let (ib, _) = kb.submit("bob", 0, &cb).unwrap();

    let collect = |client: &mut Client, id: &str| {
        let mut out = std::collections::BTreeMap::new();
        client
            .watch(id, |v, line| {
                if v.get("event").and_then(Value::as_str) == Some("record") {
                    let i = v.get("index").and_then(Value::as_u64).unwrap() as usize;
                    out.insert(i, proto::record_data(line).unwrap().to_owned());
                }
            })
            .unwrap();
        out.into_values().map(|l| l + "\n").collect::<String>()
    };
    // Watch concurrently: both jobs are in flight at once.
    let got_b = std::thread::scope(|s| {
        let h = s.spawn(|| collect(&mut kb, &ib));
        let got_a = collect(&mut ka, &ia);
        assert_eq!(got_a, want_a, "tenant A sees a byte-exact sweep");
        h.join().unwrap()
    });
    assert_eq!(got_b, want_b, "tenant B sees a byte-exact sweep");
}

#[test]
fn restart_resumes_committed_work_without_rerunning() {
    let root = tmp("restart");
    let store = root.join("store");
    let c = campaign("sweep");
    let want = reference_jsonl(&c, &root.join("ref"));

    // Phase 1: hand-craft the store a daemon would leave behind if
    // SIGKILL'd after committing exactly one unit — an accepted job, a
    // journal with one record, and a stale checkpoint for the unit that
    // was in flight. (The process-level kill of a live daemon is
    // exercised in the CLI e2e test.)
    let id = {
        let (mut js, _) = dramctrl_serve::JobStore::open(&store).unwrap();
        let stored = js.accept("alice", 0, &c).unwrap();
        let dir = js.job_dir(&stored.id);
        let mut journal = CampaignJournal::create(dir.join("journal.jsonl"), &c).unwrap();
        let unit0 = &c.expand()[0];
        journal
            .commit(&JobRecord {
                job: unit0.clone(),
                outcome: dramctrl_campaign::JobOutcome::Completed {
                    metrics: run_job(unit0),
                    attempts: 1,
                },
            })
            .unwrap();
        // A checkpoint left behind for the already-committed unit: the
        // kind of junk a SIGKILL strands. Recovery must delete it.
        std::fs::write(dir.join("unit-000000.snap"), b"stale").unwrap();
        stored.id
    };
    let journal = store.join(&id).join("journal.jsonl");
    let committed_before = std::fs::read_to_string(&journal).unwrap();

    // Phase 2: a daemon opened on that store recovers, re-queues the
    // job, and finishes the remaining units — committed lines untouched,
    // nothing duplicated, nothing lost.
    let addr2 = spawn_daemon(store.clone(), 1_000);
    let mut client2 = Client::connect(&addr2).unwrap();
    let mut records = std::collections::BTreeMap::new();
    let summary = client2
        .watch(&id, |v, line| {
            if v.get("event").and_then(Value::as_str) == Some("record") {
                let i = v.get("index").and_then(Value::as_u64).unwrap() as usize;
                records.insert(i, proto::record_data(line).unwrap().to_owned());
            }
        })
        .unwrap();
    assert_eq!(summary.ok + summary.failed, 3);

    let after = std::fs::read_to_string(&journal).unwrap();
    assert!(
        after.starts_with(&committed_before),
        "restart never rewrites committed journal lines"
    );
    let got: String = records.into_values().map(|l| l + "\n").collect();
    assert_eq!(got, want, "resumed results == uninterrupted standalone run");
    assert!(
        !store.join(&id).join("unit-000000.snap").exists(),
        "recovery deletes checkpoints of committed units"
    );
}

#[test]
fn admission_control_rejects_with_reason_and_version_gate_refuses() {
    let root = tmp("admission");
    let store = root.join("store");
    let mut cfg = ServeConfig::new(store);
    cfg.max_jobs = 1;
    let server = Server::open(cfg).unwrap();
    // No scheduler: jobs stay active, so the second submit must bounce.
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            let _ = server.serve(&listener);
        });
    }

    let mut client = Client::connect(&addr).unwrap();
    client.submit("alice", 0, &campaign("first")).unwrap();
    let err = client.submit("alice", 0, &campaign("second")).unwrap_err();
    assert!(err.to_string().contains("queue full"), "{err}");

    // A daemon speaking a different protocol is refused at connect.
    let fake = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = fake.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let (mut s, _) = fake.accept().unwrap();
        let line = dramctrl_serve::VersionInfo::current().hello_line();
        writeln!(
            s,
            "{}",
            line.replace(
                &format!("\"proto\":{}", dramctrl_serve::PROTO_VERSION),
                "\"proto\":999"
            )
        )
        .unwrap();
    });
    let err = Client::connect(&fake_addr).unwrap_err();
    assert!(err.to_string().contains("protocol"), "{err}");
}

#[test]
fn status_reports_the_job_table() {
    let root = tmp("status");
    let addr = spawn_daemon(root.join("store"), 1_000);
    let mut client = Client::connect(&addr).unwrap();
    let (id, _) = client.submit("alice", 0, &campaign("sweep")).unwrap();
    client.watch(&id, |_, _| {}).unwrap();
    let status = client.status().unwrap();
    let jobs = status.get("jobs").and_then(Value::as_arr).unwrap();
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("id").and_then(Value::as_str), Some(id.as_str()));
    assert_eq!(jobs[0].get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(jobs[0].get("done").and_then(Value::as_u64), Some(3));
}

#[test]
fn observed_jobs_stream_stats_and_epochs() {
    let root = tmp("observed");
    let addr = spawn_daemon(root.join("store"), 1_000);
    let c = Campaign::new("obs", 9).read_pcts([50]).requests([2_000]);
    let want = reference_jsonl(&c, &root.join("ref"));

    let mut client = Client::connect(&addr).unwrap();
    let (id, _) = client.submit("alice", 1_000_000, &c).unwrap();
    let mut stats = None;
    let mut epochs = None;
    let mut record = None;
    client
        .watch(&id, |v, line| {
            match v.get("event").and_then(Value::as_str) {
                Some("stats") => stats = v.get("text").and_then(Value::as_str).map(str::to_owned),
                Some("epochs") => epochs = v.get("text").and_then(Value::as_str).map(str::to_owned),
                Some("record") => record = proto::record_data(line).map(str::to_owned),
                _ => {}
            }
        })
        .unwrap();
    let stats = stats.expect("stats streamed");
    assert!(
        stats.contains("\"prefix\""),
        "stats is the stable report JSON"
    );
    let epochs = epochs.expect("epoch series streamed");
    assert!(epochs.lines().count() >= 1, "at least one epoch line");
    // Zero perturbation: the observed unit's record matches the
    // unobserved standalone run byte for byte.
    assert_eq!(record.unwrap() + "\n", want);

    // Artifacts also landed server-side, next to the journal.
    let dir = root.join("store").join(&id);
    for ext in ["stats.json", "epochs.jsonl", "epochs.csv", "trace.json"] {
        assert!(
            dir.join(format!("unit-000000.{ext}")).exists(),
            "missing {ext}"
        );
    }

    // A watch after completion replays the same artifacts from disk.
    let mut late = Client::connect(&addr).unwrap();
    let mut replayed_stats = None;
    late.watch(&id, |v, _| {
        if v.get("event").and_then(Value::as_str) == Some("stats") {
            replayed_stats = v.get("text").and_then(Value::as_str).map(str::to_owned);
        }
    })
    .unwrap();
    assert_eq!(replayed_stats.as_deref(), Some(stats.as_str()));
}

/// Like [`spawn_daemon`], but also starts the read-only HTTP
/// observability listener and returns the [`Server`] handle.
fn spawn_daemon_http(store: PathBuf, quantum: u64) -> (String, String, Server) {
    let mut cfg = ServeConfig::new(store);
    cfg.quantum = quantum;
    let server = Server::open(cfg).expect("open store");
    server.start_scheduler();
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            let _ = server.serve(&listener);
        });
    }
    let http = Listener::bind("127.0.0.1:0").expect("bind http");
    let http_addr = http.local_addr();
    {
        let server = server.clone();
        std::thread::spawn(move || {
            let _ = dramctrl_serve::serve_http(&server, &http);
        });
    }
    (addr, http_addr, server)
}

/// One raw HTTP/1.1 exchange; returns (status, head, body).
fn http_request(addr: &str, verb: &str, path: &str) -> (u16, String, String) {
    use std::io::Read;
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(
        s,
        "{verb} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head.to_owned(), body.to_owned())
}

#[test]
fn http_endpoints_expose_metrics_health_and_jobs() {
    let root = tmp("http");
    let (addr, http, _server) = spawn_daemon_http(root.join("store"), 500);
    let mut client = Client::connect(&addr).unwrap();
    let (id, total) = client.submit("alice", 0, &campaign("sweep")).unwrap();
    client.watch(&id, |_, _| {}).unwrap();

    let (code, head, body) = http_request(&http, "GET", "/metrics");
    assert_eq!(code, 200);
    assert!(head.contains("text/plain"), "{head}");
    dramctrl_obs::metrics::validate_exposition(&body).expect("well-formed exposition");
    for needle in [
        "dramctrl_admission_total{result=\"accepted\"} 1",
        &format!("dramctrl_tenant_served_units_total{{tenant=\"alice\"}} {total}"),
        "dramctrl_store_fsync_seconds_count{op=\"commit\"}",
        "dramctrl_store_fsync_seconds_count{op=\"accept\"}",
        "dramctrl_executor_units_per_second",
        "dramctrl_sched_preemptions_total",
        "dramctrl_sched_wait_seconds_count",
    ] {
        assert!(body.contains(needle), "missing {needle} in:\n{body}");
    }

    let (code, head, body) = http_request(&http, "GET", "/metrics.json");
    assert_eq!(code, 200);
    assert!(head.contains("application/json"), "{head}");
    assert!(body.starts_with("{\"families\":["), "{body}");

    let (code, _, body) = http_request(&http, "GET", "/jobs");
    assert_eq!(code, 200);
    assert!(
        body.contains(&format!("\"id\":\"{id}\"")) && body.contains("\"tenants\":"),
        "{body}"
    );

    let (code, _, body) = http_request(&http, "GET", "/healthz");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (code, _, _) = http_request(&http, "GET", "/nope");
    assert_eq!(code, 404);
    let (code, _, _) = http_request(&http, "POST", "/metrics");
    assert_eq!(code, 405);
}

#[test]
fn healthz_reports_unwritable_store_as_503() {
    let root = tmp("health");
    let store = root.join("store");
    let (_addr, http, _server) = spawn_daemon_http(store.clone(), 1_000);
    let (code, _, _) = http_request(&http, "GET", "/healthz");
    assert_eq!(code, 200);

    // Yank the store out from under the daemon: the probe write fails,
    // so the endpoint must flip to 503 (and recover when the directory
    // comes back).
    std::fs::remove_dir_all(&store).unwrap();
    let (code, _, body) = http_request(&http, "GET", "/healthz");
    assert_eq!(code, 503, "{body}");
    assert!(body.contains("\"status\":\"unwritable\""), "{body}");
    std::fs::create_dir_all(&store).unwrap();
    let (code, _, _) = http_request(&http, "GET", "/healthz");
    assert_eq!(code, 200);
}

#[test]
fn concurrent_scrapes_never_perturb_streamed_records() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let root = tmp("zero-perturb");
    let (addr, http, _server) = spawn_daemon_http(root.join("store"), 500);
    let c = campaign("sweep");
    let want = reference_jsonl(&c, &root.join("ref"));

    let mut client = Client::connect(&addr).unwrap();
    let (id, total) = client.submit("alice", 0, &c).unwrap();

    // Hammer /metrics from another thread for the whole run.
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let scraper = {
        let (stop, http) = (stop.clone(), http.clone());
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (code, _, _) = http_request(&http, "GET", "/metrics");
                assert_eq!(code, 200);
                n += 1;
            }
            n
        })
    };

    let mut records = vec![None; total];
    client
        .watch(&id, |v, line| {
            if v.get("event").and_then(Value::as_str) == Some("record") {
                let i = v.get("index").and_then(Value::as_u64).unwrap() as usize;
                records[i] = Some(proto::record_data(line).unwrap().to_owned());
            }
        })
        .unwrap();
    stop.store(true, Ordering::Relaxed);
    assert!(scraper.join().unwrap() >= 1, "scraper never ran");

    let got: String = records
        .into_iter()
        .map(|r| r.expect("every unit streamed") + "\n")
        .collect();
    assert_eq!(got, want, "scraped run == unscraped standalone run");
}

#[test]
fn preemption_counter_matches_independent_slice_replay() {
    use dramctrl_bench::{run_job_slice, SliceOutcome};
    let root = tmp("preempt");
    let quantum = 700;
    let (addr, _http, server) = spawn_daemon_http(root.join("store"), quantum);
    let c = campaign("sweep");
    let mut client = Client::connect(&addr).unwrap();
    let (id, _) = client.submit("alice", 0, &c).unwrap();
    client.watch(&id, |_, _| {}).unwrap();

    let text = server.metrics_exposition();
    let got: u64 = text
        .lines()
        .find(|l| l.starts_with("dramctrl_sched_preemptions_total "))
        .and_then(|l| l.rsplit(' ').next()?.parse().ok())
        .expect("preemption counter present");

    // Replay each unit through the same slicing rule the scheduler uses
    // (first target = quantum, then injected + quantum) and count pauses.
    // Slicing is simulation-deterministic, so the counts must agree.
    let replay = root.join("replay");
    std::fs::create_dir_all(&replay).unwrap();
    let mut want = 0u64;
    for (i, unit) in c.expand().iter().enumerate() {
        let ckpt = replay.join(format!("u{i}.snap"));
        let mut target = quantum;
        loop {
            match run_job_slice(unit, &ckpt, Some(target)) {
                SliceOutcome::Done(_) => break,
                SliceOutcome::Paused { injected } => {
                    want += 1;
                    target = injected + quantum;
                }
            }
        }
    }
    assert!(want >= 1, "quantum too large to preempt at all");
    assert_eq!(got, want, "daemon preemptions == slice-replay preemptions");
}

#[test]
fn hello_is_first_line_on_every_connection() {
    let root = tmp("hello");
    let addr = spawn_daemon(root.join("store"), 1_000);
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Value::parse(line.trim()).unwrap();
    assert_eq!(v.get("event").and_then(Value::as_str), Some("hello"));
    assert_eq!(
        v.get("proto").and_then(Value::as_u64),
        Some(u64::from(dramctrl_serve::PROTO_VERSION))
    );
}

#[test]
fn sharded_submit_runs_only_the_residue_class_byte_identically() {
    let root = tmp("shard");
    let addr = spawn_daemon(root.join("store"), 1_000);
    let c = campaign("sweep");
    let want = reference_jsonl(&c, &root.join("ref"));

    let mut client = Client::connect(&addr).unwrap();
    let (id, total) = client.submit_sharded("alice", 0, &c, Some((1, 3))).unwrap();
    assert_eq!(total, 1, "accepted total is the shard size");
    let mut streamed = Vec::new();
    let summary = client
        .watch(&id, |v, line| {
            if v.get("event").and_then(Value::as_str) == Some("record") {
                let i = v.get("index").and_then(Value::as_u64).unwrap() as usize;
                streamed.push((i, proto::record_data(line).unwrap().to_owned()));
            }
        })
        .unwrap();
    assert_eq!((summary.ok, summary.failed), (1, 0));
    let [(index, data)] = streamed.as_slice() else {
        panic!("expected exactly one record, got {streamed:?}");
    };
    assert_eq!(*index, 1, "only the shard's residue class runs");
    assert_eq!(
        data,
        want.lines().nth(1).unwrap(),
        "shard record bytes == the full run's bytes for that index"
    );
    // Malformed shard fields are rejected at submission, not run.
    let err = client
        .submit_sharded("alice", 0, &c, Some((3, 3)))
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn retain_gc_evicts_oldest_finished_jobs_and_spares_the_rest() {
    use dramctrl_campaign::JobOutcome;
    let root = tmp("retain");
    let store = root.join("store");
    let c = Campaign::new("gc-sweep", 42).read_pcts([0]).requests([500]);

    // Hand-craft a store with two finished jobs and one incomplete job.
    let ids: Vec<String> = {
        let (mut js, _) = dramctrl_serve::JobStore::open(&store).unwrap();
        (0..3)
            .map(|k| {
                let stored = js.accept("alice", 0, &c).unwrap();
                let dir = js.job_dir(&stored.id);
                let mut journal = CampaignJournal::create(dir.join("journal.jsonl"), &c).unwrap();
                if k < 2 {
                    let unit = &c.expand()[0];
                    journal
                        .commit(&JobRecord {
                            job: unit.clone(),
                            outcome: JobOutcome::Completed {
                                metrics: run_job(unit),
                                attempts: 1,
                            },
                        })
                        .unwrap();
                }
                stored.id
            })
            .collect()
    };

    // Startup GC with --retain 1: the OLDEST finished job goes; the
    // newest finished job and the incomplete one stay.
    let mut cfg = ServeConfig::new(store.clone());
    cfg.retain = Some(1);
    let server = Server::open(cfg).unwrap();
    server.start_scheduler();
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    std::thread::spawn(move || {
        let _ = server.serve(&listener);
    });
    assert!(
        !store.join(&ids[0]).exists(),
        "oldest finished job evicted at startup"
    );
    assert!(store.join(&ids[1]).exists());
    assert!(
        store.join(&ids[2]).exists(),
        "running/queued jobs are never GC'd"
    );

    // The recovered incomplete job finishes; its completion triggers
    // another GC pass which now evicts ids[1]. The pass runs just after
    // the done event broadcasts, so poll status for the counter.
    let mut client = Client::connect(&addr).unwrap();
    client.watch(&ids[2], |_, _| {}).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let status = client.status().unwrap();
        let evicted = status
            .get("gc_evicted")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if evicted >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "gc_evicted never reached 2: {}",
            status.encode()
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(!store.join(&ids[1]).exists());
    assert!(store.join(&ids[2]).exists(), "newest finished job retained");
}
