//! Drives the `chaos` crash-point explorer end to end: every durability
//! operation of the journaled-campaign and serve-store workloads gets a
//! process crash, and recovery must be byte-identical to a never-crashed
//! run. Also checks the loud-refusal contract for corrupted checkpoints.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-chaos-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn explore(mode: &str) -> (bool, String, String) {
    let dir = tmp(mode);
    let report = dir.join("report.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(["explore", "--mode", mode, "--report"])
        .arg(&report)
        .arg("--dir")
        .arg(dir.join("work"))
        .env_remove("DRAMCTRL_FAULT_PLAN")
        .output()
        .expect("running chaos explorer");
    let report_text = std::fs::read_to_string(&report).unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);
    (
        out.status.success(),
        report_text,
        format!(
            "{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        ),
    )
}

#[test]
fn every_campaign_crash_point_recovers_byte_identically() {
    let (ok, report, log) = explore("campaign");
    assert!(ok, "explorer failed:\n{log}");
    let lines: Vec<&str> = report.lines().collect();
    assert!(
        lines.len() >= 10,
        "suspiciously few crash points ({}):\n{log}",
        lines.len()
    );
    for line in &lines {
        assert!(line.contains("\"ok\":true"), "{line}\n{log}");
        assert!(line.contains("\"crash_exit\":86"), "{line}");
    }
}

#[test]
fn every_store_crash_point_recovers_byte_identically_and_acks_survive() {
    let (ok, report, log) = explore("store");
    assert!(ok, "explorer failed:\n{log}");
    let lines: Vec<&str> = report.lines().collect();
    assert!(lines.len() >= 10, "suspiciously few crash points:\n{log}");
    for line in &lines {
        assert!(line.contains("\"ok\":true"), "{line}\n{log}");
    }
    // Late crash points land after the accept and the first commit were
    // both acked (the final commit's own ack can never precede the last
    // op), so the ack-survival check ran against real acked work, not
    // vacuously.
    let last = lines.last().unwrap();
    assert!(line_acked(last) >= 2, "{last}");
}

fn line_acked(line: &str) -> u64 {
    line.split("\"acked\":")
        .nth(1)
        .and_then(|r| r.split(',').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

#[test]
fn corrupted_checkpoints_are_refused_loudly_not_misread() {
    use dramctrl_campaign::Campaign;
    let dir = tmp("torn-snap");
    let c = Campaign::new("snap", 3).read_pcts([50]).requests([5_000]);
    let unit = &c.expand()[0];
    let snap = dir.join("unit.snap");

    // A checkpoint that is garbage from byte 0.
    std::fs::write(&snap, b"not a snapshot at all").unwrap();
    let garbage = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dramctrl_bench::run_job_slice(unit, &snap, Some(1_000));
    }));
    let msg = panic_text(garbage.expect_err("garbage checkpoint must be refused"));
    assert!(msg.contains("checkpoint"), "unhelpful refusal: {msg}");

    // A real checkpoint torn in half (as if a non-atomic writer died):
    // must also be refused loudly, never half-restored.
    let _ = std::fs::remove_file(&snap);
    match dramctrl_bench::run_job_slice(unit, &snap, Some(1_000)) {
        dramctrl_bench::SliceOutcome::Paused { .. } => {}
        dramctrl_bench::SliceOutcome::Done(_) => panic!("quantum too large: never paused"),
    }
    let whole = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &whole[..whole.len() / 2]).unwrap();
    let torn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dramctrl_bench::run_job_slice(unit, &snap, None);
    }));
    let msg = panic_text(torn.expect_err("torn checkpoint must be refused"));
    assert!(msg.contains("checkpoint"), "unhelpful refusal: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::new()
    }
}
