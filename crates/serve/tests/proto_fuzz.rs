//! Seeded protocol fuzz: deterministic garbage thrown at the wire
//! parser and at a live daemon socket. The contract under test is
//! narrow and absolute — for any byte sequence a client sends, the
//! daemon answers with an `error` event or drops the connection; it
//! never panics, never aborts, and the scheduler keeps serving honest
//! clients throughout.
//!
//! Everything is driven by the workspace's own `Rng` (xoshiro256**),
//! so a failure reproduces from the seed printed in the assert.

use dramctrl_campaign::Campaign;
use dramctrl_kernel::rng::Rng;
use dramctrl_serve::proto::campaign_to_wire;
use dramctrl_serve::wire::Value;
use dramctrl_serve::{Client, Listener, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 0xD1A6_C7B1;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-fuzz-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Well-formed command lines to mutate. `shutdown` is deliberately
/// absent: the daemon under test runs in-process, and an accidental
/// clean shutdown would kill the test harness, not prove anything.
fn base_lines() -> Vec<String> {
    let c = Campaign::new("fuzz", 9).read_pcts([0, 100]).requests([100]);
    vec![
        Value::Obj(vec![
            ("cmd".to_owned(), Value::Str("submit".to_owned())),
            ("tenant".to_owned(), Value::Str("fuzz".to_owned())),
            ("epochs".to_owned(), Value::num(0u64)),
            ("campaign".to_owned(), campaign_to_wire(&c)),
        ])
        .encode(),
        "{\"cmd\":\"status\"}".to_owned(),
        "{\"cmd\":\"watch\",\"id\":\"job-9999\"}".to_owned(),
        "{\"cmd\":\"submit\",\"tenant\":\"fuzz\"}".to_owned(),
    ]
}

/// A few random byte-level mutations: truncate, flip, insert, duplicate
/// a slice, or drop a slice. Newlines are scrubbed so the result stays
/// one protocol line.
fn mutate(rng: &mut Rng, base: &str) -> Vec<u8> {
    let mut b = base.as_bytes().to_vec();
    for _ in 0..=rng.gen_range(0..4) {
        if b.is_empty() {
            break;
        }
        let len = b.len() as u64;
        match rng.gen_range(0..5) {
            0 => b.truncate(rng.gen_range(0..len) as usize),
            1 => {
                let i = rng.gen_range(0..len) as usize;
                b[i] = (rng.next_u64() & 0xff) as u8;
            }
            2 => {
                let i = rng.gen_range(0..len + 1) as usize;
                for _ in 0..rng.gen_range(1..8) {
                    b.insert(i, (rng.next_u64() & 0x7f) as u8);
                }
            }
            3 => {
                let i = rng.gen_range(0..len) as usize;
                let j = rng.gen_range(i as u64..len) as usize + 1;
                let slice: Vec<u8> = b[i..j].to_vec();
                b.extend_from_slice(&slice);
            }
            _ => {
                let i = rng.gen_range(0..len) as usize;
                let j = rng.gen_range(i as u64..len) as usize + 1;
                b.drain(i..j);
            }
        }
    }
    b.retain(|&x| x != b'\n' && x != b'\r');
    b
}

/// Picks one base line and mutates it.
fn mutate_one(rng: &mut Rng, bases: &[String]) -> Vec<u8> {
    let i = rng.gen_range(0..bases.len() as u64) as usize;
    mutate(rng, &bases[i])
}

/// Unstructured noise — full byte range, newline-scrubbed.
fn garbage(rng: &mut Rng) -> Vec<u8> {
    (0..rng.gen_range(0..300))
        .map(|_| {
            let x = (rng.next_u64() & 0xff) as u8;
            if x == b'\n' || x == b'\r' {
                b' '
            } else {
                x
            }
        })
        .collect()
}

/// Structured nasties the byte mutators rarely stumble into.
fn nasty(rng: &mut Rng) -> Vec<u8> {
    match rng.gen_range(0..6) {
        0 => "[".repeat(50_000).into_bytes(), // hostile nesting
        1 => "{\"a\":".repeat(20_000).into_bytes(),
        2 => {
            let mut v = b"{\"cmd\":\"submit\",\"campaign\":\"".to_vec();
            v.extend(vec![b'A'; 100_000]);
            v // string never terminated
        }
        3 => b"{\"cmd\":9,\"cmd\":\"status\",\"cmd\":null}".to_vec(),
        4 => "{\"cmd\":\"watch\",\"id\":\"\\ud800\"}".into(), // lone surrogate
        _ => {
            let mut v = b"\xff\xfe{\"cmd\":\"status\"}".to_vec();
            v.extend_from_slice("{\"cmd\":\"статус\"}💥".as_bytes());
            v
        }
    }
}

/// The parser half: no input may panic it, and whatever it accepts
/// must round-trip stably (parse → encode → parse → same value).
#[test]
fn wire_parser_survives_seeded_garbage_and_round_trips() {
    let mut rng = Rng::seed_from_u64(SEED);
    let bases = base_lines();
    for i in 0..20_000u64 {
        let raw = match rng.gen_range(0..10) {
            0..=5 => mutate_one(&mut rng, &bases),
            6..=8 => garbage(&mut rng),
            _ => nasty(&mut rng),
        };
        let text = String::from_utf8_lossy(&raw);
        if let Ok(v) = Value::parse(&text) {
            let encoded = v.encode();
            let again = Value::parse(&encoded)
                .unwrap_or_else(|e| panic!("iteration {i}: re-parse of {encoded:?} failed: {e}"));
            assert_eq!(again, v, "iteration {i}: unstable round-trip");
        }
    }
}

fn spawn_daemon(store: &PathBuf) -> String {
    let mut cfg = ServeConfig::new(store);
    // Short deadline so a fuzz case that wedges a handler fails the
    // test quickly instead of after the default 30 s.
    cfg.client_timeout = Some(Duration::from_secs(5));
    let server = Server::open(cfg).expect("open store");
    server.start_scheduler();
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    std::thread::spawn(move || {
        let _ = server.serve(&listener);
    });
    addr
}

/// One hostile connection: send `payloads` (each already a full line or
/// a deliberate fragment), then close the write half and drain whatever
/// the daemon answers. Returns what it said. A read timeout here means
/// the daemon wedged — that is the one unacceptable outcome.
fn hostile_conn(addr: &str, payloads: &[Vec<u8>], terminate: bool) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    for p in payloads {
        if s.write_all(p).is_err() {
            break; // daemon already dropped us — a legal outcome
        }
        if terminate && s.write_all(b"\n").is_err() {
            break;
        }
    }
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    match s.read_to_string(&mut out) {
        Ok(_) => out,
        // Reset mid-read is a drop, not a wedge.
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => out,
        Err(e) => panic!("daemon wedged on hostile input: {e}"),
    }
}

#[test]
fn daemon_survives_malformed_truncated_and_interleaved_clients() {
    let root = tmp("daemon");
    let addr = spawn_daemon(&root.join("store"));
    let mut rng = Rng::seed_from_u64(SEED ^ 0xF00D);
    let bases = base_lines();

    // A healthy round trip first, so the final liveness check compares
    // against a daemon that demonstrably worked before the abuse.
    // (The client is dropped right away: the daemon's 5 s read deadline
    // would evict an idle connection while the fuzz loop runs.)
    let c = Campaign::new("fuzz", 9).read_pcts([0, 100]).requests([100]);
    let (id0, total0) = Client::connect(&addr)
        .expect("pre-fuzz connect")
        .submit("alice", 0, &c)
        .expect("pre-fuzz submit");

    // 120 hostile connections: mutated commands, raw noise, structured
    // nasties, and truncated lines (write half a command, hang up).
    for i in 0..120u64 {
        let (payload, terminate) = match rng.gen_range(0..10) {
            0..=4 => (mutate_one(&mut rng, &bases), true),
            5..=6 => (garbage(&mut rng), true),
            7 => (nasty(&mut rng), true),
            // Truncated: a prefix of a valid command, no newline, EOF.
            _ => {
                let i = rng.gen_range(0..bases.len() as u64) as usize;
                let base = &bases[i];
                let cut = rng.gen_range(1..base.len() as u64) as usize;
                (base.as_bytes()[..cut].to_vec(), false)
            }
        };
        let reply = hostile_conn(&addr, std::slice::from_ref(&payload), terminate);
        // Every reply line after the hello must be a well-formed event —
        // the daemon never echoes garbage back.
        for line in reply.lines().skip(1) {
            assert!(
                Value::parse(line).is_ok(),
                "connection {i}: daemon emitted a malformed line {line:?} for input {:?}",
                String::from_utf8_lossy(&payload)
            );
        }
    }

    // Interleaved fragments: eight concurrent connections each dribble
    // a mutated command byte-by-byte-ish in turns, so partial lines from
    // different clients are in flight at once.
    let mut conns: Vec<TcpStream> = (0..8)
        .map(|_| {
            let s = TcpStream::connect(&addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s
        })
        .collect();
    let lines: Vec<Vec<u8>> = (0..conns.len())
        .map(|_| mutate_one(&mut rng, &bases))
        .collect();
    let chunk = 7;
    let mut offset = 0;
    while lines.iter().any(|l| offset < l.len()) {
        for (s, l) in conns.iter_mut().zip(&lines) {
            if offset < l.len() {
                let end = (offset + chunk).min(l.len());
                let _ = s.write_all(&l[offset..end]);
            }
        }
        offset += chunk;
    }
    for s in &mut conns {
        let _ = s.write_all(b"\n");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        match s.read_to_string(&mut out) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("daemon wedged on interleaved input: {e}"),
        }
    }

    // The scheduler must still be alive and correct: the pre-fuzz job
    // finished, and a fresh submit+watch completes every unit.
    let mut records = 0;
    let summary = Client::connect(&addr)
        .expect("post-fuzz connect for the pre-fuzz job")
        .watch(&id0, |v, _| {
            if v.get("event").and_then(Value::as_str) == Some("record") {
                records += 1;
            }
        })
        .expect("post-fuzz watch of pre-fuzz job");
    assert_eq!(summary.ok, total0, "pre-fuzz job lost units");
    assert_eq!(records, total0);

    let mut fresh = Client::connect(&addr).expect("post-fuzz connect");
    let (id1, total1) = fresh.submit("bob", 0, &c).expect("post-fuzz submit");
    let summary = fresh.watch(&id1, |_, _| {}).expect("post-fuzz watch");
    assert_eq!(summary.ok, total1, "scheduler damaged by fuzz traffic");
    assert_eq!(summary.failed, 0);

    // Version-line sanity: the hello survives hostile traffic unchanged.
    let hello = hostile_conn(&addr, &[b"{\"cmd\":\"status\"}".to_vec()], true);
    assert!(hello.contains("\"event\":\"status\""), "{hello}");

    let _ = std::fs::remove_dir_all(&root);
}
