//! Fair multi-tenant scheduling.
//!
//! The daemon runs one work unit (or one preemption quantum of one) at a
//! time, so fairness is entirely a question of *which job goes next*.
//! [`FairQueue`] answers it with two-level round-robin:
//!
//! - **Across tenants**: tenants take turns. A tenant that just ran
//!   rotates to the back, so one tenant's 10,000-job sweep cannot starve
//!   another's single run — the single run waits behind at most one
//!   quantum per competing tenant.
//! - **Within a tenant**: that tenant's jobs also take turns, so two
//!   sweeps from the same tenant interleave instead of running serially.
//!
//! The queue holds job ids only; all job state lives with the server.
//! Re-pushing the id a slice just paused is how a preempted job gets
//! back in line.

use std::collections::VecDeque;

/// Two-level round-robin queue of job ids, fair across tenants.
#[derive(Debug, Default)]
pub struct FairQueue {
    /// Tenant rotation order; front goes next.
    tenants: VecDeque<String>,
    /// Per-tenant job rotation, parallel to `tenants`.
    jobs: Vec<VecDeque<String>>,
}

impl FairQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total queued job entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.iter().map(VecDeque::len).sum()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.iter().all(VecDeque::is_empty)
    }

    /// Per-tenant queue depths, in current rotation order (drained
    /// tenants awaiting pruning report 0). Feeds the status surface and
    /// the per-tenant queue-depth gauges.
    #[must_use]
    pub fn tenant_depths(&self) -> Vec<(String, usize)> {
        self.tenants
            .iter()
            .zip(&self.jobs)
            .map(|(t, ring)| (t.clone(), ring.len()))
            .collect()
    }

    /// Queues `job` for `tenant`. A tenant not currently in rotation
    /// joins at the back; an existing tenant keeps its turn position
    /// (late arrivals don't jump the line).
    pub fn push(&mut self, tenant: &str, job: impl Into<String>) {
        match self.tenants.iter().position(|t| t == tenant) {
            Some(i) => self.jobs[i].push_back(job.into()),
            None => {
                self.tenants.push_back(tenant.to_owned());
                self.jobs.push(VecDeque::from([job.into()]));
            }
        }
    }

    /// Pops the next job id to run: the front tenant's front job. That
    /// tenant rotates to the back of the tenant ring (and the job, if
    /// re-pushed after a pause, to the back of the tenant's ring), so
    /// both levels advance one turn per call.
    pub fn pop(&mut self) -> Option<String> {
        // Skip tenants whose rings have drained; drop them from rotation.
        while let Some(tenant) = self.tenants.pop_front() {
            let mut ring = self.jobs.remove(0);
            if let Some(job) = ring.pop_front() {
                // Back of the rotation, even with an emptied ring: a
                // re-push (paused slice) then lands in the tenant's
                // existing turn slot instead of resetting its position.
                // A ring still empty on the next pass is pruned here.
                self.tenants.push_back(tenant);
                self.jobs.push(ring);
                return Some(job);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairQueue) -> Vec<String> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn single_tenant_is_fifo_rotation() {
        let mut q = FairQueue::new();
        q.push("a", "j1");
        q.push("a", "j2");
        q.push("a", "j3");
        assert_eq!(drain(&mut q), ["j1", "j2", "j3"]);
        assert!(q.is_empty());
    }

    #[test]
    fn tenants_interleave() {
        let mut q = FairQueue::new();
        q.push("a", "a1");
        q.push("a", "a2");
        q.push("b", "b1");
        q.push("b", "b2");
        assert_eq!(drain(&mut q), ["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn big_sweep_cannot_starve_late_arrival() {
        let mut q = FairQueue::new();
        for i in 0..100 {
            q.push("hog", format!("h{i}"));
        }
        assert_eq!(q.pop().unwrap(), "h0");
        // A second tenant shows up mid-sweep: it waits at most one more
        // hog turn, then the rotation alternates.
        q.push("guest", "g1");
        assert_eq!(q.pop().unwrap(), "h1");
        assert_eq!(q.pop().unwrap(), "g1");
        assert_eq!(q.pop().unwrap(), "h2");
        assert_eq!(q.len(), 97);
    }

    #[test]
    fn repush_after_pause_keeps_rotating() {
        let mut q = FairQueue::new();
        q.push("a", "a1");
        q.push("b", "b1");
        // a1 runs a quantum, pauses, re-queues; b1 must go next.
        let j = q.pop().unwrap();
        assert_eq!(j, "a1");
        q.push("a", j);
        assert_eq!(q.pop().unwrap(), "b1");
        assert_eq!(q.pop().unwrap(), "a1");
        assert!(q.pop().is_none());
    }

    #[test]
    fn tenant_depths_track_rings() {
        let mut q = FairQueue::new();
        q.push("a", "a1");
        q.push("a", "a2");
        q.push("b", "b1");
        assert_eq!(
            q.tenant_depths(),
            [("a".to_string(), 2), ("b".to_string(), 1)]
        );
        q.pop();
        let depths: std::collections::BTreeMap<_, _> = q.tenant_depths().into_iter().collect();
        assert_eq!(depths["a"], 1);
        assert_eq!(depths["b"], 1);
    }

    /// splitmix64: deterministic pseudo-randomness for the churn test.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The fairness bound under churn: when a tenant *not currently in
    /// rotation* pushes a job, at most one job from every other tenant
    /// in rotation runs before that job — the newcomer waits at most one
    /// full turn of the ring, no matter how deep the other rings are.
    #[test]
    fn churn_newcomer_waits_at_most_one_turn() {
        let mut seed = 0xD5A1_C0DE;
        for round in 0..50u32 {
            let mut q = FairQueue::new();
            // Random standing population: tenants t0..t5, random depths.
            let tenants = 2 + (splitmix64(&mut seed) % 4) as usize;
            for t in 0..tenants {
                let depth = 1 + (splitmix64(&mut seed) % 5) as usize;
                for j in 0..depth {
                    q.push(&format!("t{t}"), format!("t{t}-j{j}"));
                }
            }
            // Random churn: pops (tenants leave as rings drain) and
            // re-pushes (paused slices re-queue).
            for _ in 0..(splitmix64(&mut seed) % 20) {
                if splitmix64(&mut seed) % 3 == 0 {
                    if let Some(j) = q.pop() {
                        let tenant = j.split('-').next().unwrap().to_owned();
                        q.push(&tenant, j);
                    }
                } else {
                    q.pop();
                }
            }
            // A new tenant arrives mid-stream.
            let in_rotation: usize = q
                .tenant_depths()
                .iter()
                .filter(|(_, depth)| *depth > 0)
                .count();
            q.push("newcomer", "n-j0");
            let mut other_jobs_before = 0usize;
            loop {
                let Some(j) = q.pop() else {
                    panic!("round {round}: newcomer's job never surfaced");
                };
                if j == "n-j0" {
                    break;
                }
                other_jobs_before += 1;
            }
            assert!(
                other_jobs_before <= in_rotation,
                "round {round}: newcomer waited behind {other_jobs_before} jobs \
                 with only {in_rotation} tenants in rotation"
            );
        }
    }

    #[test]
    fn same_tenant_jobs_interleave() {
        let mut q = FairQueue::new();
        q.push("a", "sweep1-u0");
        q.push("a", "sweep2-u0");
        let first = q.pop().unwrap();
        q.push("a", first.clone());
        let second = q.pop().unwrap();
        assert_ne!(first, second, "two jobs of one tenant take turns");
    }
}
