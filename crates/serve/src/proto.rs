//! The service protocol: line-delimited JSON commands and events, plus
//! the campaign wire codec.
//!
//! Every message is one JSON object on one line. Clients send *commands*
//! (`{"cmd":"submit",...}`); the server sends *events*
//! (`{"event":"accepted",...}`). The server's first line on any
//! connection is the `hello` event carrying every version a client needs
//! to refuse a mismatched daemon: the protocol version, the crate
//! version, the snapshot format version (preemption checkpoints) and the
//! journal format version (the durable job store).
//!
//! Campaign axes travel as their `Display` strings and parse back via
//! `FromStr` — the same round-trip the reports and journals rely on —
//! and numeric tokens are kept raw end to end, so a `u64` campaign seed
//! is never coerced through a float.

use crate::wire::{escape, Value};
use dramctrl::{PagePolicy, SchedPolicy};
use dramctrl_campaign::{Campaign, Model, TrafficPattern, JOURNAL_VERSION};
use dramctrl_kernel::snap::SNAP_VERSION;
use dramctrl_mem::AddrMapping;
use std::fmt::Write as _;

/// Wire protocol version; bumped on any incompatible command or event
/// change. A client refuses a daemon speaking a different version.
/// v2 added the shard-aware submit (`shard_index`/`shard_count`) that
/// distributed dispatch depends on, so the dispatch coordinator's
/// hello check automatically refuses pre-shard daemons.
pub const PROTO_VERSION: u32 = 2;

/// The version tuple a daemon announces in its `hello` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// Wire protocol version ([`PROTO_VERSION`]).
    pub proto: u32,
    /// Crate version (`CARGO_PKG_VERSION` of the serving binary).
    pub crate_version: String,
    /// Snapshot format version (preemption checkpoints).
    pub snap: u32,
    /// Campaign journal format version (the durable job store).
    pub journal: u32,
}

impl VersionInfo {
    /// The versions this build of the service speaks.
    #[must_use]
    pub fn current() -> Self {
        Self {
            proto: PROTO_VERSION,
            crate_version: env!("CARGO_PKG_VERSION").to_owned(),
            snap: SNAP_VERSION,
            journal: JOURNAL_VERSION,
        }
    }

    /// Renders the `hello` event line (no trailing newline).
    #[must_use]
    pub fn hello_line(&self) -> String {
        format!(
            "{{\"event\":\"hello\",\"proto\":{},\"crate\":{},\"snap\":{},\"journal\":{}}}",
            self.proto,
            escape(&self.crate_version),
            self.snap,
            self.journal
        )
    }

    /// Parses a `hello` event line back into the daemon's versions.
    pub fn from_hello(line: &str) -> Result<Self, String> {
        let v = Value::parse(line)?;
        if v.get("event").and_then(Value::as_str) != Some("hello") {
            return Err(format!("expected a hello event, got: {line}"));
        }
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("hello event is missing '{key}'"))
        };
        Ok(Self {
            proto: field("proto")? as u32,
            crate_version: v
                .get("crate")
                .and_then(Value::as_str)
                .ok_or_else(|| "hello event is missing 'crate'".to_owned())?
                .to_owned(),
            snap: field("snap")? as u32,
            journal: field("journal")? as u32,
        })
    }

    /// Checks a daemon's versions against this client's: the protocol and
    /// the snapshot format must match exactly (the crate version is
    /// informational).
    pub fn check_compatible(&self, daemon: &VersionInfo) -> Result<(), String> {
        if daemon.proto != self.proto {
            return Err(format!(
                "daemon speaks protocol v{} but this client speaks v{}; \
                 upgrade the older side (daemon is dramctrl {})",
                daemon.proto, self.proto, daemon.crate_version
            ));
        }
        if daemon.snap != self.snap {
            return Err(format!(
                "daemon uses snapshot format v{} but this client uses v{}; \
                 checkpoints would not interoperate (daemon is dramctrl {})",
                daemon.snap, self.snap, daemon.crate_version
            ));
        }
        Ok(())
    }
}

/// Encodes a campaign for the wire: every axis as an array, enum values
/// as their `Display` strings, numbers as raw tokens.
#[must_use]
pub fn campaign_to_wire(c: &Campaign) -> Value {
    let strings = |it: Vec<String>| Value::Arr(it.into_iter().map(Value::Str).collect());
    let nums = |it: Vec<String>| Value::Arr(it.into_iter().map(Value::Num).collect());
    Value::Obj(vec![
        ("name".to_owned(), Value::Str(c.name.clone())),
        ("seed".to_owned(), Value::num(c.seed)),
        ("devices".to_owned(), strings(c.devices.clone())),
        (
            "models".to_owned(),
            strings(c.models.iter().map(ToString::to_string).collect()),
        ),
        (
            "policies".to_owned(),
            strings(c.policies.iter().map(ToString::to_string).collect()),
        ),
        (
            "scheds".to_owned(),
            strings(c.scheds.iter().map(ToString::to_string).collect()),
        ),
        (
            "mappings".to_owned(),
            strings(c.mappings.iter().map(ToString::to_string).collect()),
        ),
        (
            "channels".to_owned(),
            nums(c.channels.iter().map(ToString::to_string).collect()),
        ),
        (
            "traffic".to_owned(),
            strings(c.traffic.iter().map(ToString::to_string).collect()),
        ),
        (
            "read_pcts".to_owned(),
            nums(c.read_pcts.iter().map(ToString::to_string).collect()),
        ),
        (
            "requests".to_owned(),
            nums(c.request_counts.iter().map(ToString::to_string).collect()),
        ),
        (
            "error_rates".to_owned(),
            nums(c.error_rates.iter().map(|r| format!("{r}")).collect()),
        ),
    ])
}

/// Decodes a wire campaign, validating that every axis is present and
/// non-empty (an empty axis would annihilate the Cartesian product).
pub fn campaign_from_wire(v: &Value) -> Result<Campaign, String> {
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| "campaign is missing 'name'".to_owned())?;
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or_else(|| "campaign is missing a u64 'seed'".to_owned())?;
    fn axis<T, E: std::fmt::Display>(
        v: &Value,
        key: &str,
        parse: impl Fn(&Value) -> Result<T, E>,
    ) -> Result<Vec<T>, String> {
        let items = v
            .get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("campaign is missing the '{key}' axis"))?;
        if items.is_empty() {
            return Err(format!("campaign axis '{key}' is empty"));
        }
        items
            .iter()
            .map(|item| parse(item).map_err(|e| format!("campaign axis '{key}': {e}")))
            .collect()
    }
    let str_of = |item: &Value| -> Result<String, String> {
        item.as_str()
            .map(str::to_owned)
            .ok_or_else(|| "expected a string".to_owned())
    };
    fn parse_as(item: &Value) -> Result<&str, String> {
        item.as_str().ok_or_else(|| "expected a string".to_owned())
    }
    Ok(Campaign::new(name, seed)
        .devices(axis(v, "devices", str_of)?)
        .models(axis(v, "models", |i| parse_as(i)?.parse::<Model>())?)
        .policies(axis(v, "policies", |i| parse_as(i)?.parse::<PagePolicy>())?)
        .scheds(axis(v, "scheds", |i| parse_as(i)?.parse::<SchedPolicy>())?)
        .mappings(axis(v, "mappings", |i| {
            parse_as(i)?.parse::<AddrMapping>()
        })?)
        .channels(axis(v, "channels", |i| {
            i.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "expected a u32".to_owned())
        })?)
        .traffic(axis(v, "traffic", |i| {
            parse_as(i)?.parse::<TrafficPattern>()
        })?)
        .read_pcts(axis(v, "read_pcts", |i| {
            i.as_u64()
                .and_then(|n| u8::try_from(n).ok())
                .filter(|n| *n <= 100)
                .ok_or_else(|| "expected a read percentage 0..=100".to_owned())
        })?)
        .requests(axis(v, "requests", |i| {
            i.as_u64().ok_or_else(|| "expected a u64".to_owned())
        })?)
        .error_rates(axis(v, "error_rates", |i| {
            i.as_f64()
                .filter(|r| r.is_finite() && *r >= 0.0)
                .ok_or_else(|| "expected a non-negative fault rate".to_owned())
        })?))
}

/// Renders a `record` event. `data` must be a rendered
/// [`JobRecord`](dramctrl_campaign::JobRecord) line; it is embedded as
/// raw JSON in the *last* field, so [`record_data`] can slice the exact
/// original bytes back out on the client side.
#[must_use]
pub fn record_event(id: &str, index: usize, data: &str) -> String {
    format!(
        "{{\"event\":\"record\",\"id\":{},\"index\":{index},\"data\":{data}}}",
        escape(id)
    )
}

/// Recovers the embedded record line from a `record` event, byte for
/// byte.
#[must_use]
pub fn record_data(line: &str) -> Option<&str> {
    let start = line.find("\"data\":")? + "\"data\":".len();
    let payload = line.get(start..line.len().checked_sub(1)?)?;
    payload.starts_with('{').then_some(payload)
}

/// Renders a text-artifact event (`stats` or `epochs`): the artifact
/// travels as one escaped string, so multi-line texts (stats JSON is
/// multi-line) fit the one-line-per-message framing.
#[must_use]
pub fn text_event(event: &str, id: &str, index: usize, text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 64);
    write!(
        out,
        "{{\"event\":{},\"id\":{},\"index\":{index},\"text\":",
        escape(event),
        escape(id)
    )
    .expect("writing to String cannot fail");
    crate::wire::escape_into(text, &mut out);
    out.push('}');
    out
}

/// Renders a `progress` event: `done` of `total` units committed.
#[must_use]
pub fn progress_event(id: &str, done: usize, total: usize) -> String {
    format!(
        "{{\"event\":\"progress\",\"id\":{},\"done\":{done},\"total\":{total}}}",
        escape(id)
    )
}

/// Renders the terminal `done` event with outcome counts.
#[must_use]
pub fn done_event(id: &str, ok: usize, failed: usize) -> String {
    format!(
        "{{\"event\":\"done\",\"id\":{},\"ok\":{ok},\"failed\":{failed}}}",
        escape(id)
    )
}

/// Renders an `error` event (command-level failure; the connection
/// stays usable).
#[must_use]
pub fn error_event(reason: &str) -> String {
    format!("{{\"event\":\"error\",\"reason\":{}}}", escape(reason))
}

/// Renders a `rejected` event (admission control refused a submit).
#[must_use]
pub fn rejected_event(reason: &str) -> String {
    format!("{{\"event\":\"rejected\",\"reason\":{}}}", escape(reason))
}

/// Renders an `accepted` event: the job is durably journaled and will
/// run.
#[must_use]
pub fn accepted_event(id: &str, total: usize) -> String {
    format!(
        "{{\"event\":\"accepted\",\"id\":{},\"total\":{total}}}",
        escape(id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_campaign() -> Campaign {
        Campaign::new("wire-test", u64::MAX - 7)
            .models([Model::Event, Model::Cycle])
            .policies([PagePolicy::Open, PagePolicy::ClosedAdaptive])
            .scheds([SchedPolicy::Fcfs, SchedPolicy::FrFcfs])
            .mappings([AddrMapping::RoCoRaBaCh])
            .channels([1, 2])
            .traffic([
                TrafficPattern::Linear {
                    range: 1 << 28,
                    block: 64,
                },
                TrafficPattern::DramAware {
                    stride: 8,
                    banks: 4,
                },
            ])
            .read_pcts([0, 50, 100])
            .requests([1_000])
            .error_rates([0.0, 2e11])
    }

    #[test]
    fn campaign_round_trips_exactly() {
        let c = toy_campaign();
        let encoded = campaign_to_wire(&c).encode();
        let decoded = campaign_from_wire(&Value::parse(&encoded).unwrap()).unwrap();
        // The expansion — jobs, order, seeds — is what must survive.
        assert_eq!(c.expand(), decoded.expand());
        assert_eq!(
            dramctrl_campaign::campaign_hash(&c),
            dramctrl_campaign::campaign_hash(&decoded),
            "spec hash survives the wire, so journals interoperate"
        );
    }

    #[test]
    fn decode_rejects_bad_campaigns() {
        let ok = campaign_to_wire(&toy_campaign()).encode();
        // Missing axis.
        let v = Value::parse(&ok.replace("\"models\"", "\"modelz\"")).unwrap();
        assert!(campaign_from_wire(&v).unwrap_err().contains("models"));
        // Empty axis.
        let v = Value::parse(&ok.replace("[\"event\",\"cycle\"]", "[]")).unwrap();
        assert!(campaign_from_wire(&v).unwrap_err().contains("empty"));
        // Bad enum value.
        let v = Value::parse(&ok.replace("\"cycle\"", "\"quantum\"")).unwrap();
        assert!(campaign_from_wire(&v).is_err());
        // Read percentage out of range.
        let v = Value::parse(&ok.replace("[0,50,100]", "[0,101]")).unwrap();
        assert!(campaign_from_wire(&v).is_err());
    }

    #[test]
    fn hello_round_trips_and_gates_mismatches() {
        let me = VersionInfo::current();
        let parsed = VersionInfo::from_hello(&me.hello_line()).unwrap();
        assert_eq!(me, parsed);
        assert!(me.check_compatible(&parsed).is_ok());
        let mut other = parsed.clone();
        other.proto += 1;
        assert!(me
            .check_compatible(&other)
            .unwrap_err()
            .contains("protocol"));
        let mut other = parsed;
        other.snap += 1;
        assert!(me
            .check_compatible(&other)
            .unwrap_err()
            .contains("snapshot"));
    }

    #[test]
    fn record_event_payload_is_byte_recoverable() {
        let data = r#"{"campaign":"x","job":3,"metrics":{"a":0.5}}"#;
        let line = record_event("job-0007", 3, data);
        assert_eq!(record_data(&line), Some(data));
        assert!(Value::parse(&line).is_ok(), "event is itself valid JSON");
        assert!(record_data("{\"event\":\"done\"}").is_none());
    }

    #[test]
    fn text_event_carries_multiline_artifacts() {
        let stats = "{\"report\":\"ctrl\",\n\"entries\":[]}\n";
        let line = text_event("stats", "job-0001", 0, stats);
        assert!(!line.contains('\n'), "framing stays one line");
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("text").unwrap().as_str(), Some(stats));
    }
}
