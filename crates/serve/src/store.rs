//! The durable job store: an append-only accept log plus one campaign
//! journal per job.
//!
//! Layout under the store root:
//!
//! ```text
//! store/
//!   accept.jsonl            every accepted job, fsync'd before the ack
//!   evicted.jsonl           GC tombstones: jobs whose dirs are deleted
//!   job-0001/
//!     journal.jsonl         the job's CampaignJournal (unit commit log)
//!     unit-000003.snap      preemption checkpoint of the unit in flight
//!     unit-000002.stats.json   observed-job artifacts (epochs > 0)
//!     unit-000002.epochs.jsonl
//!     unit-000002.trace.json
//! accept.jsonl line: {"id":"job-0001","tenant":"alice","epochs":0,
//!                     "campaign":{...}}           (optionally "shard":[i,n])
//! evicted.jsonl line: {"id":"job-0001"}
//! ```
//!
//! Commit-point ordering is the whole durability story:
//!
//! 1. **Accept**: the accept line is appended and fsync'd *before* the
//!    job's directory and journal are created and *before* the client
//!    sees `accepted`. A torn accept tail therefore belongs to a job
//!    that was never acknowledged — recovery drops it.
//! 2. **Unit done**: artifacts (if any) are written atomically, then the
//!    unit's record is committed to the job journal (append + fsync),
//!    then subscribers are notified. A crash between artifacts and
//!    commit re-runs the unit; artifacts are overwritten bit-identically.
//!
//! Recovery replays the accept log, resumes every job journal (torn
//! tails truncated, keep-first dedup), deletes checkpoints of already
//! committed units, and re-queues every job with uncommitted units. No
//! accepted job is lost; no committed unit re-runs.
//!
//! Garbage collection never rewrites the accept log. Evicting a job
//! appends a tombstone to `evicted.jsonl` (fsync'd) *before* deleting
//! the job directory, so a crash between the two leaves a tombstone
//! whose directory [`open`](JobStore::open) lazily removes — an evicted
//! job can never be resurrected and re-run on restart.

use crate::proto::{campaign_from_wire, campaign_to_wire};
use crate::wire::{escape, Value};
use dramctrl_campaign::Campaign;
use dramctrl_kernel::fsio::DurableAppender;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// One accepted job, as recorded in the accept log.
#[derive(Debug, Clone)]
pub struct StoredJob {
    /// Stable job id (`job-0001`); also the job's directory name.
    pub id: String,
    /// Submitting tenant (fair scheduling is across tenants).
    pub tenant: String,
    /// Epoch-series interval in ticks; `0` runs unobserved.
    pub epochs: u64,
    /// The work itself.
    pub campaign: Campaign,
    /// Residue-class restriction: run only indices `i` with
    /// `i % shard.1 == shard.0`. `None` runs the full campaign.
    pub shard: Option<(u32, u32)>,
}

/// The durable job store.
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
    accept: DurableAppender,
    next_id: u64,
    evicted: BTreeSet<String>,
}

impl JobStore {
    /// Opens (or creates) the store at `root`, returning the store and
    /// every job the accept log records, in acceptance order.
    ///
    /// A torn final line — a crash mid-accept, before any client was
    /// acked — is dropped and truncated away. A corrupt line anywhere
    /// else is a loud error: the store was edited or the disk lied.
    ///
    /// # Errors
    /// I/O errors, or a corrupt accept log.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<(Self, Vec<StoredJob>)> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let evicted = read_evicted(&root)?;
        let log = root.join("accept.jsonl");
        if !log.exists() {
            let accept = DurableAppender::create(&log)?;
            return Ok((
                Self {
                    root,
                    accept,
                    next_id: 1,
                    evicted,
                },
                Vec::new(),
            ));
        }

        let text = std::fs::read_to_string(&log)?;
        let mut jobs = Vec::new();
        let mut valid_len = 0usize;
        for (i, line) in text.split_inclusive('\n').enumerate() {
            if !line.ends_with('\n') {
                break; // Torn tail: never acked, safe to drop.
            }
            let job = parse_accept_line(line.trim_end_matches('\n')).map_err(|why| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("accept log line {} is corrupt: {why}", i + 1),
                )
            })?;
            jobs.push(job);
            valid_len += line.len();
        }
        if valid_len < text.len() {
            let f = std::fs::OpenOptions::new().write(true).open(&log)?;
            f.set_len(valid_len as u64)?;
            f.sync_data()?;
        }
        let next_id = jobs
            .iter()
            .filter_map(|j| j.id.strip_prefix("job-")?.parse::<u64>().ok())
            .max()
            .unwrap_or(0)
            + 1;
        // Tombstoned jobs stay in the accept log (it is append-only) but
        // must not be replayed; a crash between tombstone and directory
        // removal is finished here.
        jobs.retain(|j| {
            if evicted.contains(&j.id) {
                let _ = std::fs::remove_dir_all(root.join(&j.id));
                false
            } else {
                true
            }
        });
        let accept = DurableAppender::append_to(&log)?;
        Ok((
            Self {
                root,
                accept,
                next_id,
                evicted,
            },
            jobs,
        ))
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A job's directory (journal, checkpoints, artifacts).
    #[must_use]
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// Durably accepts a job: assigns the next id, appends the accept
    /// line (fsync'd), and creates the job's directory. Only after this
    /// returns may the client be acked — the ordering that makes a
    /// daemon kill between ack and first unit harmless.
    ///
    /// # Errors
    /// Any I/O error; the job is then *not* accepted.
    pub fn accept(
        &mut self,
        tenant: &str,
        epochs: u64,
        campaign: &Campaign,
    ) -> io::Result<StoredJob> {
        self.accept_sharded(tenant, epochs, campaign, None)
    }

    /// [`accept`](Self::accept) with an optional residue-class shard
    /// restriction, recorded in the accept line so a restarted daemon
    /// resumes the shard (not the full campaign).
    ///
    /// # Errors
    /// Any I/O error; the job is then *not* accepted.
    pub fn accept_sharded(
        &mut self,
        tenant: &str,
        epochs: u64,
        campaign: &Campaign,
        shard: Option<(u32, u32)>,
    ) -> io::Result<StoredJob> {
        let id = format!("job-{:04}", self.next_id);
        let shard_field = shard.map_or(String::new(), |(i, n)| format!("\"shard\":[{i},{n}],"));
        let line = format!(
            "{{\"id\":{},\"tenant\":{},\"epochs\":{},{}\"campaign\":{}}}",
            escape(&id),
            escape(tenant),
            epochs,
            shard_field,
            campaign_to_wire(campaign).encode()
        );
        self.accept.append_line(&line)?;
        self.next_id += 1;
        std::fs::create_dir_all(self.job_dir(&id))?;
        Ok(StoredJob {
            id,
            tenant: tenant.to_owned(),
            epochs,
            campaign: campaign.clone(),
            shard,
        })
    }

    /// Durably evicts a finished job: appends a tombstone to
    /// `evicted.jsonl` (fsync'd) and then deletes the job directory —
    /// journal, checkpoints, artifacts. Tombstone-first ordering means
    /// a crash in between is repaired at the next [`open`](Self::open),
    /// never resurrected. Idempotent for already evicted ids.
    ///
    /// # Errors
    /// Any I/O error writing the tombstone or removing the directory.
    pub fn evict(&mut self, id: &str) -> io::Result<()> {
        if !self.evicted.contains(id) {
            let log = self.root.join("evicted.jsonl");
            let mut appender = if log.exists() {
                DurableAppender::append_to(&log)?
            } else {
                DurableAppender::create(&log)?
            };
            appender.append_line(&format!("{{\"id\":{}}}", escape(id)))?;
            self.evicted.insert(id.to_owned());
        }
        let dir = self.job_dir(id);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        Ok(())
    }

    /// How many jobs have been evicted over the store's lifetime.
    #[must_use]
    pub fn evicted_count(&self) -> usize {
        self.evicted.len()
    }

    /// Repairs the accept log after a failed append: a write that died
    /// partway (`ENOSPC`, a torn short write) can leave unterminated or
    /// garbage bytes at the tail, and the old appender's file position
    /// is now poisoned. Every line that still parses is kept; the file
    /// is truncated to that prefix (fsync'd) and a fresh appender is
    /// opened at the clean end.
    ///
    /// Only the tail can be damaged by a live failure — earlier lines
    /// were validated at [`open`](Self::open) — so stopping at the first
    /// unparsable line never drops an acknowledged job.
    ///
    /// # Errors
    /// Any I/O error from reading, truncating or reopening — the store
    /// is then still unusable and the caller should retry later.
    pub fn repair(&mut self) -> io::Result<()> {
        let log = self.root.join("accept.jsonl");
        let text = std::fs::read_to_string(&log)?;
        let mut valid_len = 0usize;
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') || parse_accept_line(line.trim_end_matches('\n')).is_err() {
                break;
            }
            valid_len += line.len();
        }
        if valid_len < text.len() {
            let f = std::fs::OpenOptions::new().write(true).open(&log)?;
            f.set_len(valid_len as u64)?;
            f.sync_data()?;
        }
        self.accept = DurableAppender::append_to(&log)?;
        Ok(())
    }

    /// Path of a unit's preemption checkpoint inside a job dir.
    #[must_use]
    pub fn unit_snap(job_dir: &Path, index: usize) -> PathBuf {
        job_dir.join(format!("unit-{index:06}.snap"))
    }

    /// Path of a unit's artifact with the given extension
    /// (`stats.json`, `epochs.jsonl`, `trace.json`).
    #[must_use]
    pub fn unit_artifact(job_dir: &Path, index: usize, ext: &str) -> PathBuf {
        job_dir.join(format!("unit-{index:06}.{ext}"))
    }
}

fn parse_accept_line(line: &str) -> Result<StoredJob, String> {
    let v = Value::parse(line)?;
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing 'id'".to_owned())?
        .to_owned();
    let tenant = v
        .get("tenant")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing 'tenant'".to_owned())?
        .to_owned();
    let epochs = v
        .get("epochs")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing 'epochs'".to_owned())?;
    // Optional, so pre-shard accept logs keep parsing.
    let shard = match v.get("shard") {
        None => None,
        Some(s) => {
            let pair = s
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| "'shard' must be a [index, count] pair".to_owned())?;
            let num = |i: usize| {
                pair[i]
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "'shard' members must be u32".to_owned())
            };
            let (idx, n) = (num(0)?, num(1)?);
            if n == 0 || idx >= n {
                return Err(format!("'shard' [{idx},{n}] is out of range"));
            }
            Some((idx, n))
        }
    };
    let campaign = campaign_from_wire(
        v.get("campaign")
            .ok_or_else(|| "missing 'campaign'".to_owned())?,
    )?;
    Ok(StoredJob {
        id,
        tenant,
        epochs,
        campaign,
        shard,
    })
}

/// Reads the eviction tombstone log (if any). Torn tails are ignored:
/// an unterminated tombstone was never fsync-acknowledged, so its job
/// directory is still intact and the job simply survives.
fn read_evicted(root: &Path) -> io::Result<BTreeSet<String>> {
    let log = root.join("evicted.jsonl");
    if !log.exists() {
        return Ok(BTreeSet::new());
    }
    let text = std::fs::read_to_string(&log)?;
    let mut out = BTreeSet::new();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break;
        }
        if let Ok(v) = Value::parse(line.trim_end_matches('\n')) {
            if let Some(id) = v.get("id").and_then(Value::as_str) {
                out.insert(id.to_owned());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dramctrl-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn campaign(name: &str) -> Campaign {
        Campaign::new(name, 7).read_pcts([0, 100]).requests([200])
    }

    #[test]
    fn accept_assigns_ids_and_survives_reopen() {
        let root = tmp("reopen");
        let (mut store, jobs) = JobStore::open(&root).unwrap();
        assert!(jobs.is_empty());
        let a = store.accept("alice", 0, &campaign("a")).unwrap();
        let b = store.accept("bob", 1_000_000, &campaign("b")).unwrap();
        assert_eq!(a.id, "job-0001");
        assert_eq!(b.id, "job-0002");
        assert!(store.job_dir(&a.id).is_dir());
        drop(store);

        let (mut store, jobs) = JobStore::open(&root).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].tenant, "alice");
        assert_eq!(jobs[1].epochs, 1_000_000);
        assert_eq!(jobs[1].campaign.expand(), campaign("b").expand());
        // Ids keep counting, never reuse.
        let c = store.accept("carol", 0, &campaign("c")).unwrap();
        assert_eq!(c.id, "job-0003");
    }

    #[test]
    fn torn_accept_tail_is_dropped_and_truncated() {
        let root = tmp("torn");
        let (mut store, _) = JobStore::open(&root).unwrap();
        store.accept("alice", 0, &campaign("a")).unwrap();
        drop(store);
        let log = root.join("accept.jsonl");
        let good = std::fs::read_to_string(&log).unwrap();
        std::fs::write(&log, format!("{good}{{\"id\":\"job-00")).unwrap();

        let (mut store, jobs) = JobStore::open(&root).unwrap();
        assert_eq!(jobs.len(), 1, "torn line dropped");
        assert_eq!(std::fs::read_to_string(&log).unwrap(), good, "truncated");
        // The next accept gets the id the torn job never durably claimed.
        assert_eq!(
            store.accept("bob", 0, &campaign("b")).unwrap().id,
            "job-0002"
        );
    }

    #[test]
    fn corrupt_interior_line_is_loud() {
        let root = tmp("corrupt");
        let (mut store, _) = JobStore::open(&root).unwrap();
        store.accept("alice", 0, &campaign("a")).unwrap();
        drop(store);
        let log = root.join("accept.jsonl");
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.insert_str(0, "{\"id\":\"mangled\"}\n");
        std::fs::write(&log, text).unwrap();
        let err = JobStore::open(&root).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn repair_truncates_a_torn_append_and_reopens_cleanly() {
        let root = tmp("repair");
        let (mut store, _) = JobStore::open(&root).unwrap();
        store.accept("alice", 0, &campaign("a")).unwrap();
        let log = root.join("accept.jsonl");
        let good = std::fs::read_to_string(&log).unwrap();
        // A live ENOSPC mid-append leaves a half-written line with no
        // newline after the good prefix.
        let mut torn = good.clone();
        torn.push_str("{\"id\":\"job-00");
        std::fs::write(&log, &torn).unwrap();

        store.repair().unwrap();
        assert_eq!(std::fs::read_to_string(&log).unwrap(), good);
        // The reopened appender continues the id sequence: the torn id
        // was never durably claimed.
        let b = store.accept("bob", 0, &campaign("b")).unwrap();
        assert_eq!(b.id, "job-0002");
        let (_, jobs) = JobStore::open(&root).unwrap();
        assert_eq!(jobs.len(), 2);
    }

    #[test]
    fn injected_fault_fails_accept_then_repair_recovers() {
        let root = tmp("fault-accept");
        let (mut store, _) = JobStore::open(&root).unwrap();
        let g = dramctrl_kernel::fsio::fault::arm_str(&format!(
            "short,op=write,path={}",
            root.join("accept.jsonl").to_str().unwrap()
        ))
        .unwrap();
        let err = store.accept("alice", 0, &campaign("a")).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        drop(g);
        store.repair().unwrap();
        // The torn bytes are gone and the store works again.
        let a = store.accept("alice", 0, &campaign("a")).unwrap();
        assert_eq!(a.id, "job-0001");
        let (_, jobs) = JobStore::open(&root).unwrap();
        assert_eq!(jobs.len(), 1);
    }

    #[test]
    fn shard_round_trips_through_accept_log() {
        let root = tmp("shard");
        let (mut store, _) = JobStore::open(&root).unwrap();
        store.accept("alice", 0, &campaign("a")).unwrap();
        let b = store
            .accept_sharded("bob", 0, &campaign("b"), Some((2, 3)))
            .unwrap();
        assert_eq!(b.shard, Some((2, 3)));
        drop(store);
        let (_, jobs) = JobStore::open(&root).unwrap();
        assert_eq!(jobs[0].shard, None);
        assert_eq!(jobs[1].shard, Some((2, 3)));
    }

    #[test]
    fn out_of_range_shard_is_corrupt() {
        let root = tmp("shard-bad");
        let (mut store, _) = JobStore::open(&root).unwrap();
        store
            .accept_sharded("alice", 0, &campaign("a"), Some((1, 2)))
            .unwrap();
        drop(store);
        let log = root.join("accept.jsonl");
        let text = std::fs::read_to_string(&log)
            .unwrap()
            .replace("\"shard\":[1,2]", "\"shard\":[5,2]");
        std::fs::write(&log, text).unwrap();
        let err = JobStore::open(&root).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn evicted_jobs_stay_dead_across_reopen() {
        let root = tmp("evict");
        let (mut store, _) = JobStore::open(&root).unwrap();
        let a = store.accept("alice", 0, &campaign("a")).unwrap();
        let b = store.accept("bob", 0, &campaign("b")).unwrap();
        store.evict(&a.id).unwrap();
        assert!(!store.job_dir(&a.id).exists(), "dir deleted");
        assert!(store.job_dir(&b.id).exists(), "other jobs untouched");
        assert_eq!(store.evicted_count(), 1);
        store.evict(&a.id).unwrap(); // idempotent
        assert_eq!(store.evicted_count(), 1);
        drop(store);

        let (mut store, jobs) = JobStore::open(&root).unwrap();
        assert_eq!(jobs.len(), 1, "tombstoned job not replayed");
        assert_eq!(jobs[0].id, b.id);
        assert_eq!(store.evicted_count(), 1);
        // Ids never reuse: the accept log still remembers job-0001/2.
        let c = store.accept("carol", 0, &campaign("c")).unwrap();
        assert_eq!(c.id, "job-0003");
    }

    #[test]
    fn crash_between_tombstone_and_removal_is_repaired_at_open() {
        let root = tmp("evict-crash");
        let (mut store, _) = JobStore::open(&root).unwrap();
        let a = store.accept("alice", 0, &campaign("a")).unwrap();
        drop(store);
        // Simulate the crash window: tombstone durably written, dir
        // still on disk.
        std::fs::write(
            root.join("evicted.jsonl"),
            format!("{{\"id\":\"{}\"}}\n", a.id),
        )
        .unwrap();
        assert!(root.join(&a.id).exists());
        let (_, jobs) = JobStore::open(&root).unwrap();
        assert!(jobs.is_empty(), "tombstone wins");
        assert!(!root.join(&a.id).exists(), "leftover dir removed");
    }

    #[test]
    fn unit_paths_are_stable() {
        let dir = Path::new("/store/job-0001");
        assert_eq!(
            JobStore::unit_snap(dir, 3),
            Path::new("/store/job-0001/unit-000003.snap")
        );
        assert_eq!(
            JobStore::unit_artifact(dir, 12, "stats.json"),
            Path::new("/store/job-0001/unit-000012.stats.json")
        );
    }
}
