//! A minimal HTTP/1.1 front-end for observability endpoints.
//!
//! The daemon's primary protocol is line-JSON over [`Stream`]; this
//! module adds a *read-only* HTTP listener (`dramctrl serve --http ADDR`)
//! so dashboards, `curl` and a Prometheus scraper can inspect a live
//! daemon without speaking the protocol:
//!
//! | path       | content                                            |
//! |------------|----------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of the daemon registry  |
//! | `/metrics.json` | the same registry as stable JSON              |
//! | `/healthz` | liveness + store writability (503 when unwritable) |
//! | `/jobs`    | JSON job + tenant status (the dashboard's feed)    |
//!
//! Hand-rolled on purpose: the workspace is dependency-free, and the
//! subset needed — parse a request line, drain headers, answer with
//! `Content-Length` and `Connection: close` — is a page of code. The
//! listener reuses [`Listener`], so `--http` accepts the same
//! path-vs-`host:port` addresses as `--listen`.

use crate::net::{read_line_bounded, Listener, Stream};
use crate::server::Server;
use std::io::{self, BufReader, Read, Write};

/// Longest accepted request or header line (bytes). Generous for any
/// real scraper; a bound against a client streaming an endless "line".
const MAX_HTTP_LINE: usize = 16 * 1024;

/// Accept loop for the HTTP listener: one thread per connection,
/// forever. Mirrors [`Server::serve`].
///
/// # Errors
/// Only a broken listener ends the loop.
pub fn serve_http(server: &Server, listener: &Listener) -> io::Result<()> {
    loop {
        let conn = listener.accept()?;
        let this = server.clone();
        std::thread::spawn(move || {
            let _ = handle_http(&this, conn);
        });
    }
}

/// One parsed request: method and path (query strings are ignored).
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
}

/// Reads the request line and drains headers (plus any body announced
/// by `Content-Length`, so a keep-alive client that sent one is not
/// left mid-stream when we close).
fn read_request(reader: &mut BufReader<Stream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if read_line_bounded(reader, &mut line, MAX_HTTP_LINE)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let target = parts.next().unwrap_or("").to_owned();
    let path = target.split('?').next().unwrap_or("").to_owned();
    let mut content_len = 0usize;
    loop {
        let mut header = String::new();
        if read_line_bounded(reader, &mut header, MAX_HTTP_LINE)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_len = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_len > 0 {
        let mut sink = vec![0u8; content_len.min(1 << 20)];
        reader.read_exact(&mut sink)?;
    }
    Ok(Some(Request { method, path }))
}

fn respond(
    writer: &mut Stream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Serves exactly one request on `conn` and closes it.
fn handle_http(server: &Server, conn: Stream) -> io::Result<()> {
    let _guard = server.connection_guard();
    conn.set_read_timeout(server.client_timeout())?;
    conn.set_write_timeout(server.client_timeout())?;
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let Some(req) = read_request(&mut reader)? else {
        return Ok(());
    };
    if req.method != "GET" {
        return respond(
            &mut writer,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    server.metrics().http_requests(&req.path).inc();
    match req.path.as_str() {
        "/metrics" => {
            let body = server.metrics_exposition();
            respond(
                &mut writer,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/metrics.json" => {
            let body = server.metrics_json();
            respond(&mut writer, 200, "OK", "application/json", &body)
        }
        "/healthz" => match server.health() {
            Ok(body) => respond(&mut writer, 200, "OK", "application/json", &body),
            Err(body) => respond(
                &mut writer,
                503,
                "Service Unavailable",
                "application/json",
                &body,
            ),
        },
        "/jobs" => {
            let body = server.jobs_json();
            respond(&mut writer, 200, "OK", "application/json", &body)
        }
        _ => respond(
            &mut writer,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "no such endpoint (try /metrics, /healthz, /jobs)\n",
        ),
    }
}
