//! The wire format: a minimal, dependency-free JSON value.
//!
//! Two properties matter more here than generality:
//!
//! - **Numbers are raw tokens.** A [`Value::Num`] stores the literal
//!   characters from the wire, so a `u64` campaign seed round-trips
//!   losslessly — it is never squeezed through an `f64` (which silently
//!   mangles integers above 2^53).
//! - **Objects preserve insertion order.** Encoding a decoded object
//!   reproduces the original byte sequence for the subset of JSON the
//!   service emits, which keeps record payloads comparable byte for
//!   byte.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (lossless for any integer width).
    Num(String),
    /// A string (decoded — escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one JSON document; trailing non-whitespace is an error.
    /// Nesting deeper than [`MAX_DEPTH`] is refused — the parser is
    /// recursive descent, and a hostile line of a million `[`s must get
    /// an error, not a stack overflow.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// A number value from anything that displays as a JSON number.
    pub fn num(n: impl ToString) -> Value {
        Value::Num(n.to_string())
    }

    /// Object field lookup (first match; `None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number token parsed as `u64`, if this is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace), objects in
    /// insertion order, number tokens verbatim.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// Deepest container nesting [`Value::parse`] accepts. Far beyond any
/// value the protocol emits, far below any stack limit.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at offset {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at offset {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        };
        self.depth -= 1;
        v
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        // Validate the token shape via the float parser, but *store* the
        // raw token so wide integers stay exact.
        raw.parse::<f64>()
            .map_err(|_| format!("bad number {raw:?} at offset {start}"))?;
        Ok(Value::Num(raw.to_owned()))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "truncated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_owned());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // escape in one go. `"` and `\` are ASCII, never
                    // UTF-8 continuation bytes, so a byte-wise scan
                    // stops only on char boundaries — and the input was
                    // a `&str`, so the run is valid UTF-8. (Per-char
                    // consumption here would be O(n²) on long strings —
                    // a hostile megabyte string must cost one pass.)
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a str and the run ends on ASCII"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| "truncated \\u escape".to_owned())?;
            self.pos += 1;
            code = code * 16
                + (b as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("bad hex digit {:?}", b as char))?;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_json() {
        let src = r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5e3}}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.encode(), src);
    }

    #[test]
    fn u64_seeds_survive_unmangled() {
        // 2^63 + 3 — unrepresentable in f64; the raw token must survive.
        let src = r#"{"seed":9223372036854775811}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(9223372036854775811));
        assert_eq!(v.encode(), src);
    }

    #[test]
    fn accessors_and_lookup() {
        let v = Value::parse(r#"{"s":"hi","n":4,"f":0.5,"b":true,"a":[1,2]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert!(v.get("s").unwrap().as_u64().is_none());
    }

    #[test]
    fn escapes_decode_and_encode() {
        let v = Value::parse(r#""tab\t quote\" uA pair😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" uA pair😀"));
        assert_eq!(escape("a\"b\nc\u{1}"), "\"a\\\"b\\nc\\u0001\"");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // Under MAX_DEPTH parses fine...
        let deep = "[".repeat(100) + "1" + &"]".repeat(100);
        assert!(Value::parse(&deep).is_ok());
        // ...a megabyte of brackets is refused with a plain error.
        let hostile = "[".repeat(1 << 20);
        let err = Value::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let mixed = "{\"a\":".repeat(10_000);
        assert!(Value::parse(&mixed).unwrap_err().contains("nesting"));
    }

    #[test]
    fn whitespace_tolerated_on_input() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.encode(), r#"{"a":[1,2]}"#);
    }
}
