//! The always-up simulation daemon: admission control, a fair preemptive
//! scheduler, and crash-safe execution on top of the durable job store.
//!
//! ## Anatomy
//!
//! One **scheduler thread** runs all simulation work, one quantum at a
//! time: it pops the next job from the [`FairQueue`], picks the job's
//! first uncommitted work unit, and runs one slice of it *outside* the
//! state lock (via [`run_job_slice`], which checkpoints and pauses at the
//! first request boundary past the quantum target). **Connection
//! threads** (one per client) only touch state briefly — submit, watch,
//! status — so a 10-million-request unit in flight never blocks a
//! submit, and a competing tenant waits at most one quantum.
//!
//! ## Durability
//!
//! Every state transition commits before it is acknowledged or
//! broadcast:
//!
//! - submit: accept-log fsync → journal created → `accepted` sent;
//! - unit done: artifacts written atomically → journal commit (fsync) →
//!   events broadcast;
//! - preemption: checkpoint written atomically; the journal is untouched.
//!
//! Kill the daemon at any instant and [`Server::open`] rebuilds
//! everything from the store: accepted jobs re-queue, committed units
//! are never re-run, the unit in flight resumes from its checkpoint (or
//! restarts from the last one — re-execution is deterministic, and the
//! journal's keep-first dedup makes the first commit canonical either
//! way). Results are byte-identical to a never-killed run, which is
//! byte-identical to a standalone `dramctrl sweep` of the same campaign.
//!
//! ## Degraded mode
//!
//! A store that stops taking writes (disk full, failing fsyncs) must not
//! kill the daemon. On any store I/O error the daemon enters **degraded
//! mode**: the computed-but-uncommitted unit outcome is parked in
//! memory, the scheduler stops starting new slices, new submits are shed
//! with `rejected reason=store_unavailable`, `/healthz` answers 503 and
//! the `dramctrl_store_degraded` gauge reads 1 — while status, metrics
//! and in-flight `watch` streams keep serving from memory. The
//! scheduler retries the store with bounded exponential backoff
//! ([`STORE_BACKOFF_START`]..[`STORE_BACKOFF_MAX`]): each attempt
//! repairs the accept log (truncating torn bytes), re-resumes the
//! damaged journal (truncating its torn tail), re-commits the parked
//! outcome and probes the store root. The first fully successful
//! attempt exits degraded mode — no restart, no lost unit, and the
//! journal bytes are exactly what an unfaulted run would have written.
//!
//! ## Hostile clients
//!
//! Connections carry read/write deadlines
//! ([`ServeConfig::client_timeout`]): a client that connects and sends
//! nothing, or stops reading its stream, is evicted at the deadline.
//! Command lines are length-bounded, and each watch subscriber rides a
//! bounded outbound buffer ([`ServeConfig::subscriber_buffer`]) — a
//! consumer that falls behind a full buffer is dropped from the
//! broadcast list rather than wedging the scheduler.

use crate::metrics::ServeMetrics;
use crate::net::{read_line_bounded, Listener, Stream};
use crate::proto::{
    accepted_event, campaign_from_wire, done_event, error_event, progress_event, record_event,
    rejected_event, text_event, VersionInfo,
};
use crate::sched::FairQueue;
use crate::store::{JobStore, StoredJob};
use crate::wire::{escape, Value};
use dramctrl_bench::{run_job_observed, run_job_slice, JobArtifacts, SliceOutcome};
use dramctrl_campaign::{CampaignJournal, JobMetrics, JobOutcome, JobRecord, JobSpec};
use dramctrl_kernel::backoff::Backoff;
use dramctrl_kernel::fsio::write_atomic;
use dramctrl_obs::metrics::Gauge;
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the durable job store.
    pub store: PathBuf,
    /// Admission bound: submits are rejected while this many jobs are
    /// still unfinished.
    pub max_jobs: usize,
    /// Preemption quantum in injected requests: a work unit is paused at
    /// the first request boundary at or past this many injections since
    /// its last pause.
    pub quantum: u64,
    /// Per-connection read/write deadline. A client that sends nothing
    /// (or reads nothing) for this long is evicted; `None` disables the
    /// deadline (trusted-network mode).
    pub client_timeout: Option<Duration>,
    /// Outbound event-buffer depth per watch subscriber. A subscriber
    /// whose buffer is full when a broadcast arrives is evicted.
    pub subscriber_buffer: usize,
    /// Store garbage collection: keep at most this many finished jobs
    /// on disk, evicting the oldest (by acceptance order) beyond it at
    /// startup and on every job completion. Running and queued jobs are
    /// never touched. `None` retains everything.
    pub retain: Option<usize>,
}

impl ServeConfig {
    /// Defaults: 8 active jobs, 1 000-request quantum, 30 s client
    /// deadline, 1 024-event subscriber buffers, no GC.
    #[must_use]
    pub fn new(store: impl Into<PathBuf>) -> Self {
        Self {
            store: store.into(),
            max_jobs: 8,
            quantum: 1_000,
            client_timeout: Some(Duration::from_secs(30)),
            subscriber_buffer: 1024,
            retain: None,
        }
    }
}

/// Everything the daemon knows about one job.
struct JobState {
    stored: StoredJob,
    /// The campaign's expanded work units.
    units: Vec<JobSpec>,
    /// The job's durable commit log.
    journal: CampaignJournal,
    /// Panicked attempts of the unit currently in flight.
    failures: u32,
    /// Absolute injection target for the current unit's next slice.
    pause_target: u64,
    /// Live `watch` subscribers (event lines), each behind a bounded
    /// buffer.
    subscribers: Vec<mpsc::SyncSender<String>>,
}

impl JobState {
    /// Whether unit `i` belongs to this job's residue-class shard.
    /// Unsharded jobs own every unit.
    fn in_shard(&self, i: usize) -> bool {
        match self.stored.shard {
            Some((idx, n)) => i % n as usize == idx as usize,
            None => true,
        }
    }

    /// Units this job will actually run: the shard size for sharded
    /// jobs, the full campaign otherwise. This is the `total` clients
    /// see in `accepted`/`progress` events.
    fn total(&self) -> usize {
        match self.stored.shard {
            Some(_) => (0..self.units.len()).filter(|&i| self.in_shard(i)).count(),
            None => self.units.len(),
        }
    }

    fn done(&self) -> usize {
        self.journal
            .completed()
            .keys()
            .filter(|&&i| self.in_shard(i))
            .count()
    }

    fn finished(&self) -> bool {
        self.done() == self.total()
    }

    fn failed(&self) -> usize {
        self.journal
            .completed()
            .iter()
            .filter(|(i, o)| self.in_shard(**i) && o.is_failed())
            .count()
    }

    /// The first uncommitted in-shard unit — the one to run next.
    fn next_unit(&self) -> Option<usize> {
        (0..self.units.len())
            .find(|&i| self.in_shard(i) && !self.journal.completed().contains_key(&i))
    }

    /// Sends `line` to every subscriber, evicting any whose bounded
    /// buffer is full: a watcher that stopped draining must not wedge
    /// the scheduler or grow memory without limit. Disconnected
    /// subscribers are pruned silently (normal hang-up).
    fn broadcast(&mut self, line: &str, m: &ServeMetrics) {
        self.subscribers
            .retain(|s| match s.try_send(line.to_owned()) {
                Ok(()) => true,
                Err(mpsc::TrySendError::Full(_)) => {
                    m.clients_evicted.inc();
                    false
                }
                Err(mpsc::TrySendError::Disconnected(_)) => false,
            });
    }
}

/// Shared daemon state.
struct State {
    store: JobStore,
    jobs: BTreeMap<String, JobState>,
    queue: FairQueue,
    /// When each queued job entered the queue — feeds the scheduler
    /// fairness-lag histogram on its next pick.
    queued_at: BTreeMap<String, Instant>,
    /// Rejected submits per tenant (process lifetime, for status).
    rejects: BTreeMap<String, u64>,
    /// Finished jobs garbage-collected this process lifetime (the
    /// store's tombstone log holds the all-time count).
    gc_evicted: u64,
    /// The (job, unit) the scheduler is running right now, if any.
    running: Option<(String, usize)>,
    /// `Some` while the store is failing writes (degraded mode).
    degraded: Option<Degraded>,
}

/// A unit outcome that is computed but not yet durably committed — the
/// work the scheduler parks when the store starts failing, so recovery
/// never re-runs the simulation.
struct PendingCommit {
    id: String,
    unit: usize,
    outcome: JobOutcome,
    artifacts: Option<JobArtifacts>,
}

/// Degraded-mode bookkeeping: why, since when, the retry schedule, and
/// the parked commit (if the failure struck mid-commit rather than
/// mid-accept).
struct Degraded {
    reason: String,
    since: Instant,
    backoff: Backoff,
    next_retry: Instant,
    pending: Option<PendingCommit>,
}

/// First retry delay after entering degraded mode.
pub const STORE_BACKOFF_START: Duration = Duration::from_millis(50);
/// Retry delays double up to this cap while the store stays broken.
pub const STORE_BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Longest accepted protocol command line (bytes, newline included).
const MAX_CMD_LINE: usize = 1 << 20;

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    metrics: ServeMetrics,
    started: Instant,
}

/// The daemon. Cloneable handle; all state lives behind one mutex.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

/// How many attempts a panicking work unit gets before it is recorded as
/// failed — matches the campaign executor's default, so failure records
/// carry identical `attempts` counts either way.
const MAX_ATTEMPTS: u32 = 2;

impl Server {
    /// Opens the store at `cfg.store`, recovers every journaled job, and
    /// re-queues all unfinished work. Committed units never re-run;
    /// their leftover checkpoints are deleted.
    ///
    /// # Errors
    /// Store or journal I/O and corruption errors.
    pub fn open(cfg: ServeConfig) -> io::Result<Self> {
        let metrics = ServeMetrics::new();
        let (mut store, accepted) = JobStore::open(&cfg.store)?;
        let mut jobs = BTreeMap::new();
        let mut queue = FairQueue::new();
        for stored in accepted {
            let dir = store.job_dir(&stored.id);
            std::fs::create_dir_all(&dir)?;
            // Killed between accept fsync and journal creation (or mid
            // header write): the job is still fully described by the
            // accept line, so `recover` starts it from scratch.
            let jpath = dir.join("journal.jsonl");
            let journal = CampaignJournal::recover(&jpath, &stored.campaign).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("recovering journal for {}: {e}", stored.id),
                )
            })?;
            for &i in journal.completed().keys() {
                let _ = std::fs::remove_file(JobStore::unit_snap(&dir, i));
            }
            let js = JobState {
                units: stored.campaign.expand(),
                journal,
                failures: 0,
                pause_target: cfg.quantum,
                subscribers: Vec::new(),
                stored,
            };
            if !js.finished() {
                queue.push(&js.stored.tenant, js.stored.id.clone());
            }
            jobs.insert(js.stored.id.clone(), js);
        }
        // Startup GC: a store that accumulated finished jobs while the
        // retention limit was lower (or unset) is trimmed before the
        // daemon takes traffic.
        let mut gc_evicted = 0;
        if let Some(retain) = cfg.retain {
            gc_evicted = gc_finished(&mut store, &mut jobs, retain, &metrics);
        }
        let now = Instant::now();
        let queued_at = jobs
            .values()
            .filter(|js| !js.finished())
            .map(|js| (js.stored.id.clone(), now))
            .collect();
        Ok(Self {
            inner: Arc::new(Inner {
                cfg,
                state: Mutex::new(State {
                    store,
                    jobs,
                    queue,
                    queued_at,
                    rejects: BTreeMap::new(),
                    running: None,
                    degraded: None,
                    gc_evicted,
                }),
                work: Condvar::new(),
                metrics,
                started: now,
            }),
        })
    }

    /// The daemon's metric handles (shared registry behind `/metrics`).
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Spawns the scheduler thread (runs for the life of the process).
    pub fn start_scheduler(&self) -> std::thread::JoinHandle<()> {
        let this = self.clone();
        std::thread::Builder::new()
            .name("dramctrl-sched".into())
            .spawn(move || this.scheduler_loop())
            .expect("spawning the scheduler thread")
    }

    /// Accept loop: one thread per connection, forever.
    ///
    /// # Errors
    /// Only a broken listener ends the loop.
    pub fn serve(&self, listener: &Listener) -> io::Result<()> {
        loop {
            let conn = listener.accept()?;
            let this = self.clone();
            std::thread::spawn(move || {
                let _ = this.handle_conn(conn);
            });
        }
    }

    // ----- scheduler ---------------------------------------------------

    fn scheduler_loop(&self) {
        loop {
            // Pick the next (job, unit, quantum target) under the lock.
            let (id, unit, spec, epochs, snap, target) = {
                let mut st = self.lock();
                loop {
                    // Degraded: the store owes us a commit (or at least a
                    // successful probe) before any new simulation work is
                    // worth starting. Retry on the backoff schedule; the
                    // condvar wait keeps the thread cold in between.
                    if let Some(next_retry) = st.degraded.as_ref().map(|d| d.next_retry) {
                        let now = Instant::now();
                        if now < next_retry {
                            let (guard, _) = self
                                .inner
                                .work
                                .wait_timeout(st, next_retry - now)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            st = guard;
                        } else {
                            self.try_store_recovery(&mut st);
                        }
                        continue;
                    }
                    let picked = loop {
                        let Some(id) = st.queue.pop() else {
                            break None;
                        };
                        let Some(js) = st.jobs.get(&id) else { continue };
                        if let Some(unit) = js.next_unit() {
                            break Some((id, unit));
                        }
                    };
                    if let Some((id, unit)) = picked {
                        if let Some(since) = st.queued_at.remove(&id) {
                            self.inner
                                .metrics
                                .sched_wait
                                .observe(since.elapsed().as_secs_f64());
                        }
                        st.running = Some((id.clone(), unit));
                        sync_queue_gauges(&self.inner.metrics, &st);
                        let js = &st.jobs[&id];
                        let dir = st.store.job_dir(&id);
                        break (
                            id.clone(),
                            unit,
                            js.units[unit].clone(),
                            js.stored.epochs,
                            JobStore::unit_snap(&dir, unit),
                            js.pause_target,
                        );
                    }
                    st = self
                        .inner
                        .work
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };

            // Run the slice outside the lock: submits, watches and other
            // tenants' turns are never blocked by simulation work.
            let sliced = catch_unwind(AssertUnwindSafe(|| {
                if epochs > 0 {
                    // Observed units carry probes (not snapshot state), so
                    // they run whole; artifacts ride along.
                    let (m, artifacts) = run_job_observed(&spec, epochs);
                    Unit::Done(m, Some(artifacts))
                } else {
                    match run_job_slice(&spec, &snap, Some(target)) {
                        SliceOutcome::Done(m) => Unit::Done(m, None),
                        SliceOutcome::Paused { injected } => Unit::Paused { injected },
                    }
                }
            }));

            let mut st = self.lock();
            let st = &mut *st; // split-borrow jobs and queue below
            let m = &self.inner.metrics;
            let quantum = self.inner.cfg.quantum;
            st.running = None;
            if !st.jobs.contains_key(&id) {
                continue;
            }
            match sliced {
                Ok(Unit::Paused { injected }) => {
                    m.preemptions.inc();
                    let js = st.jobs.get_mut(&id).expect("checked above");
                    js.pause_target = injected + quantum;
                    requeue(st, &id);
                }
                Ok(Unit::Done(metrics, artifacts)) => {
                    let attempts = st.jobs[&id].failures + 1;
                    let pending = PendingCommit {
                        id: id.clone(),
                        unit,
                        outcome: JobOutcome::Completed { metrics, attempts },
                        artifacts,
                    };
                    self.finish_or_degrade(st, pending);
                }
                Err(payload) => {
                    // A panicked slice restarts its unit from scratch:
                    // the checkpoint may be mid-flight state of the very
                    // attempt that died.
                    let _ = std::fs::remove_file(&snap);
                    let js = st.jobs.get_mut(&id).expect("checked above");
                    js.failures += 1;
                    js.pause_target = quantum;
                    if js.failures >= MAX_ATTEMPTS {
                        let outcome = JobOutcome::Failed {
                            panic_msg: panic_message(payload.as_ref()),
                            attempts: js.failures,
                        };
                        let pending = PendingCommit {
                            id: id.clone(),
                            unit,
                            outcome,
                            artifacts: None,
                        };
                        self.finish_or_degrade(st, pending);
                    } else {
                        requeue(st, &id);
                    }
                }
            }
            sync_queue_gauges(m, st);
        }
    }

    /// Durably finishes a unit, or parks it and enters degraded mode if
    /// the store refuses — either way the computed outcome is never
    /// lost and the simulation never re-runs.
    fn finish_or_degrade(&self, st: &mut State, pending: PendingCommit) {
        if let Err(e) = self.complete_unit(st, &pending, false) {
            self.enter_degraded(st, &e.to_string(), Some(pending));
        }
    }

    /// The durable half of finishing a unit: artifacts → journal commit
    /// → broadcast, then the bookkeeping (checkpoint cleanup, failure
    /// reset, metrics, re-queue). With `repair_journal` the job's
    /// journal is first re-resumed from disk, truncating any torn bytes
    /// the failed append left behind; keep-first dedup then makes the
    /// re-commit idempotent if the record actually survived.
    fn complete_unit(
        &self,
        st: &mut State,
        p: &PendingCommit,
        repair_journal: bool,
    ) -> io::Result<()> {
        let m = &self.inner.metrics;
        let dir = st.store.job_dir(&p.id);
        let Some(js) = st.jobs.get_mut(&p.id) else {
            return Ok(());
        };
        if repair_journal {
            js.journal = CampaignJournal::resume(dir.join("journal.jsonl"), &js.stored.campaign)
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("re-resuming journal for {}: {e}", p.id),
                    )
                })?;
        }
        // Artifacts land (atomically) before the commit: a crash in
        // between re-runs the unit and rewrites them bit-identically.
        if let Some(a) = &p.artifacts {
            write_unit_artifacts(&dir, p.unit, a)?;
        }
        commit_unit(js, p.unit, p.outcome.clone(), p.artifacts.as_ref(), m)?;
        let _ = std::fs::remove_file(JobStore::unit_snap(&dir, p.unit));
        js.failures = 0;
        js.pause_target = self.inner.cfg.quantum;
        m.tenant_served(&js.stored.tenant).inc();
        if p.outcome.is_failed() {
            m.units_failed.inc();
        } else {
            m.units_completed.inc();
            let elapsed = self.inner.started.elapsed().as_secs_f64();
            if elapsed > 0.0 {
                let done = m.units_completed.get() + m.units_failed.get();
                m.units_per_second.set(done as f64 / elapsed);
            }
        }
        requeue(st, &p.id);
        // A completion may push the finished-job count past the
        // retention limit; trim eagerly so disk use stays bounded
        // without a periodic sweep.
        if let Some(retain) = self.inner.cfg.retain {
            if st.jobs.get(&p.id).map_or(true, JobState::finished) {
                st.gc_evicted += gc_finished(&mut st.store, &mut st.jobs, retain, m);
            }
        }
        Ok(())
    }

    /// Flips the daemon into degraded mode (idempotent): records why,
    /// parks the pending commit if one is not already parked, raises the
    /// gauge and wakes the scheduler so it switches to the retry loop.
    fn enter_degraded(&self, st: &mut State, reason: &str, pending: Option<PendingCommit>) {
        self.inner.metrics.store_degraded.set(1.0);
        match st.degraded.as_mut() {
            Some(d) => {
                // Already degraded (e.g. a submit hit the broken store
                // while a commit is parked): never displace the parked
                // commit — the scheduler blocks until it lands, so there
                // is at most one.
                if d.pending.is_none() {
                    d.pending = pending;
                }
            }
            None => {
                dramctrl_obs::log_warn!(
                    "serve", "store degraded; shedding new admissions";
                    "reason" => reason
                );
                let now = Instant::now();
                let mut backoff = Backoff::new(STORE_BACKOFF_START, STORE_BACKOFF_MAX);
                let first = backoff.next_delay();
                st.degraded = Some(Degraded {
                    reason: reason.to_owned(),
                    since: now,
                    backoff,
                    next_retry: now + first,
                    pending,
                });
                self.inner.work.notify_all();
            }
        }
    }

    /// One recovery attempt: repair the accept log, land the parked
    /// commit (through a re-resumed journal), probe the store root.
    /// Full success exits degraded mode; any failure doubles the
    /// backoff (capped) and leaves the parked commit parked.
    fn try_store_recovery(&self, st: &mut State) {
        let m = &self.inner.metrics;
        m.store_retries.inc();
        let result: io::Result<()> = (|| {
            st.store.repair()?;
            let pending = st.degraded.as_mut().and_then(|d| d.pending.take());
            if let Some(p) = pending {
                if let Err(e) = self.complete_unit(st, &p, true) {
                    if let Some(d) = st.degraded.as_mut() {
                        d.pending = Some(p);
                    }
                    return Err(e);
                }
            }
            // An end-to-end writability probe through the same fsio
            // layer real writes use, so injected faults and genuinely
            // full disks agree on when the store is healthy.
            let probe = st.store.root().join(".recovery.probe");
            write_atomic(&probe, b"ok")?;
            std::fs::remove_file(&probe)?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                let was = st.degraded.take();
                m.store_degraded.set(0.0);
                dramctrl_obs::log_info!(
                    "serve", "store recovered; accepting submissions again";
                    "degraded_seconds" => format!(
                        "{:.3}",
                        was.map_or(0.0, |d| d.since.elapsed().as_secs_f64())
                    )
                );
                self.inner.work.notify_all();
            }
            Err(e) => {
                if let Some(d) = st.degraded.as_mut() {
                    let delay = d.backoff.next_delay();
                    d.next_retry = Instant::now() + delay;
                    dramctrl_obs::log_warn!(
                        "serve", "store still failing; backing off";
                        "error" => e, "retry_in_ms" => delay.as_millis()
                    );
                }
            }
        }
    }

    // ----- connections -------------------------------------------------

    fn handle_conn(&self, conn: Stream) -> io::Result<()> {
        let _guard = self.connection_guard();
        // Deadlines are socket options, so they cover the cloned writer
        // too: a client that stops reading its stream blocks the writer
        // only until the write deadline, then the connection dies.
        conn.set_read_timeout(self.inner.cfg.client_timeout)?;
        conn.set_write_timeout(self.inner.cfg.client_timeout)?;
        let mut writer = conn.try_clone()?;
        let mut reader = BufReader::new(conn);
        writeln!(writer, "{}", VersionInfo::current().hello_line())?;
        let mut line = String::new();
        loop {
            line.clear();
            let read = read_line_bounded(&mut reader, &mut line, MAX_CMD_LINE);
            match read {
                Ok(0) => return Ok(()), // client hung up
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // Oversized line: the connection is no longer
                    // line-synchronized, so answer and drop it.
                    self.inner.metrics.clients_evicted.inc();
                    let _ = writeln!(writer, "{}", error_event(&format!("bad command: {e}")));
                    return Err(e);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle past the read deadline: evict.
                    self.inner.metrics.clients_evicted.inc();
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let cmd = match Value::parse(trimmed) {
                Ok(v) => v,
                Err(e) => {
                    writeln!(writer, "{}", error_event(&format!("bad command: {e}")))?;
                    continue;
                }
            };
            match cmd.get("cmd").and_then(Value::as_str) {
                Some("submit") => {
                    let reply = self.submit(&cmd);
                    writeln!(writer, "{reply}")?;
                }
                Some("watch") => {
                    let id = cmd.get("id").and_then(Value::as_str).unwrap_or("");
                    self.watch(id, &mut writer)?;
                }
                Some("status") => {
                    writeln!(writer, "{}", self.status_line())?;
                }
                Some("shutdown") => {
                    // Every accepted job and committed unit is already
                    // durable; there is nothing to flush.
                    writeln!(writer, "{{\"event\":\"bye\"}}")?;
                    let _ = writer.flush();
                    std::process::exit(0);
                }
                other => {
                    let what = other.unwrap_or("<none>");
                    writeln!(writer, "{}", error_event(&format!("unknown cmd '{what}'")))?;
                }
            }
        }
    }

    /// Records one rejected submit (counters + per-tenant status tally)
    /// and renders the rejection event.
    fn reject(&self, st: &mut State, tenant: &str, reason: &str, msg: &str) -> String {
        self.inner.metrics.rejected(reason).inc();
        self.inner.metrics.tenant_rejected(tenant).inc();
        *st.rejects.entry(tenant.to_owned()).or_insert(0) += 1;
        rejected_event(msg)
    }

    /// Admission + durable accept. Returns the event line to send.
    fn submit(&self, cmd: &Value) -> String {
        let tenant = cmd.get("tenant").and_then(Value::as_str).unwrap_or("anon");
        let epochs = cmd.get("epochs").and_then(Value::as_u64).unwrap_or(0);
        let campaign = match cmd
            .get("campaign")
            .ok_or_else(|| "submit is missing 'campaign'".to_owned())
            .and_then(campaign_from_wire)
        {
            Ok(c) => c,
            Err(e) => return self.reject(&mut self.lock(), tenant, "bad_campaign", &e),
        };
        let shard = match parse_shard_fields(cmd) {
            Ok(s) => s,
            Err(e) => return self.reject(&mut self.lock(), tenant, "bad_shard", &e),
        };

        let mut st = self.lock();
        // Degraded store: shed before touching it. The parked commit and
        // the retry loop own the store until it recovers.
        if let Some(d) = &st.degraded {
            let msg = format!("store unavailable: {}", d.reason);
            return self.reject(&mut st, tenant, "store_unavailable", &msg);
        }
        let active = st.jobs.values().filter(|j| !j.finished()).count();
        if active >= self.inner.cfg.max_jobs {
            let msg = format!(
                "queue full: {active} active jobs (limit {})",
                self.inner.cfg.max_jobs
            );
            return self.reject(&mut st, tenant, "queue_full", &msg);
        }
        // The accept-log append inside is the commit point: once it
        // returns, a kill at any later instant still runs this job.
        let fsync_started = Instant::now();
        let stored = match st.store.accept_sharded(tenant, epochs, &campaign, shard) {
            Ok(s) => s,
            Err(e) => {
                // A failed accept is an unhealthy store, not a one-off:
                // degrade so later submits shed instead of re-poking it.
                let msg = format!("store unavailable: {e}");
                self.enter_degraded(&mut st, &e.to_string(), None);
                return self.reject(&mut st, tenant, "store_unavailable", &msg);
            }
        };
        self.inner
            .metrics
            .store_fsync("accept")
            .observe(fsync_started.elapsed().as_secs_f64());
        let dir = st.store.job_dir(&stored.id);
        let journal = match CampaignJournal::create(dir.join("journal.jsonl"), &campaign) {
            Ok(j) => j,
            Err(e) => {
                // The accept line is durable, so recovery (in-process or
                // on restart) re-creates the journal and runs the job.
                let msg = format!("store unavailable: {e}");
                self.enter_degraded(&mut st, &e.to_string(), None);
                return self.reject(&mut st, tenant, "store_unavailable", &msg);
            }
        };
        let js = JobState {
            units: campaign.expand(),
            journal,
            failures: 0,
            pause_target: self.inner.cfg.quantum,
            subscribers: Vec::new(),
            stored,
        };
        let (id, total) = (js.stored.id.clone(), js.total());
        st.queue.push(&js.stored.tenant, id.clone());
        st.queued_at.insert(id.clone(), Instant::now());
        st.jobs.insert(id.clone(), js);
        self.inner.metrics.admission_accepted.inc();
        sync_queue_gauges(&self.inner.metrics, &st);
        drop(st);
        self.inner.work.notify_all();
        accepted_event(&id, total)
    }

    /// Replays a job's committed history, then streams live events until
    /// the job finishes.
    fn watch(&self, id: &str, writer: &mut Stream) -> io::Result<()> {
        let (replay, live) = {
            let mut st = self.lock();
            let dir = st.store.job_dir(id);
            let Some(js) = st.jobs.get_mut(id) else {
                writeln!(writer, "{}", error_event(&format!("no such job '{id}'")))?;
                return Ok(());
            };
            let mut replay = Vec::new();
            let name = js.stored.campaign.name.clone();
            for (&i, outcome) in js.journal.completed() {
                let rec = JobRecord {
                    job: js.units[i].clone(),
                    outcome: outcome.clone(),
                };
                replay.push(record_event(id, i, &rec.render(&name)));
                if js.stored.epochs > 0 {
                    for (event, ext) in [("stats", "stats.json"), ("epochs", "epochs.jsonl")] {
                        if let Ok(text) =
                            std::fs::read_to_string(JobStore::unit_artifact(&dir, i, ext))
                        {
                            replay.push(text_event(event, id, i, &text));
                        }
                    }
                }
            }
            replay.push(progress_event(id, js.done(), js.total()));
            if js.finished() {
                replay.push(done_event(id, js.done() - js.failed(), js.failed()));
                (replay, None)
            } else {
                // Subscribe under the same lock that replayed: commits
                // broadcast under this lock too, so the stream has no
                // gap and no duplicate. The buffer is bounded — fall
                // this far behind and the broadcaster evicts you.
                let (tx, rx) = mpsc::sync_channel(self.inner.cfg.subscriber_buffer);
                js.subscribers.push(tx);
                (replay, Some(rx))
            }
        };
        let streamed = &self.inner.metrics.streamed_bytes;
        for line in replay {
            writeln!(writer, "{line}")?;
            streamed.add(line.len() as u64 + 1);
        }
        if let Some(rx) = live {
            for line in rx {
                let is_done = line.starts_with("{\"event\":\"done\"");
                writeln!(writer, "{line}")?;
                streamed.add(line.len() as u64 + 1);
                if is_done {
                    break;
                }
            }
            // Dropping `rx` unsubscribes: the server's next send fails
            // and the sender is pruned.
        }
        writer.flush()
    }

    fn status_line(&self) -> String {
        let st = self.lock();
        format!("{{\"event\":\"status\",{}}}", jobs_tenants_json(&st))
    }

    // ----- observability surfaces (HTTP + status) ----------------------

    /// The `/jobs` body: job table plus per-tenant rollup.
    #[must_use]
    pub fn jobs_json(&self) -> String {
        let st = self.lock();
        format!("{{{}}}", jobs_tenants_json(&st))
    }

    /// The `/metrics` body: scrape-time gauges refreshed, then the
    /// registry rendered as Prometheus text exposition.
    #[must_use]
    pub fn metrics_exposition(&self) -> String {
        self.refresh_scrape_gauges();
        self.inner.metrics.registry.render_prometheus()
    }

    /// The `/metrics.json` body: the same registry as stable JSON.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.refresh_scrape_gauges();
        self.inner.metrics.registry.render_json()
    }

    fn refresh_scrape_gauges(&self) {
        let m = &self.inner.metrics;
        m.uptime.set(self.inner.started.elapsed().as_secs_f64());
        let st = self.lock();
        let active = st.jobs.values().filter(|j| !j.finished()).count();
        m.jobs_active.set(active as f64);
    }

    /// The `/healthz` probe: reports degraded mode (503) while the store
    /// is failing writes, otherwise checks that the durable store is
    /// writable by writing and removing a probe file in the store root.
    /// `Ok` is the 200 body, `Err` the 503 body.
    ///
    /// # Errors
    /// A JSON body naming the failure when the store is degraded or its
    /// root is unwritable.
    pub fn health(&self) -> Result<String, String> {
        let (root, active) = {
            let st = self.lock();
            if let Some(d) = &st.degraded {
                return Err(format!(
                    "{{\"status\":\"degraded\",\"store\":{},\"reason\":{},\
                     \"degraded_seconds\":{:.3},\"retries\":{}}}",
                    escape(&st.store.root().display().to_string()),
                    escape(&d.reason),
                    d.since.elapsed().as_secs_f64(),
                    self.inner.metrics.store_retries.get(),
                ));
            }
            let active = st.jobs.values().filter(|j| !j.finished()).count();
            (st.store.root().to_path_buf(), active)
        };
        let probe = root.join(".healthz.probe");
        let outcome = std::fs::write(&probe, b"ok").and_then(|()| std::fs::remove_file(&probe));
        match outcome {
            Ok(()) => Ok(format!(
                "{{\"status\":\"ok\",\"store\":{},\"active_jobs\":{},\"uptime_seconds\":{:.3}}}",
                escape(&root.display().to_string()),
                active,
                self.inner.started.elapsed().as_secs_f64(),
            )),
            Err(e) => Err(format!(
                "{{\"status\":\"unwritable\",\"store\":{},\"error\":{}}}",
                escape(&root.display().to_string()),
                escape(&e.to_string()),
            )),
        }
    }

    /// The configured per-connection deadline (shared with the HTTP
    /// front-end).
    pub(crate) fn client_timeout(&self) -> Option<Duration> {
        self.inner.cfg.client_timeout
    }

    /// Bumps the active-connection gauge until the guard drops.
    #[must_use]
    pub(crate) fn connection_guard(&self) -> ConnGuard {
        let gauge = self.inner.metrics.active_connections.clone();
        gauge.inc();
        ConnGuard(gauge)
    }
}

/// Decrements the active-connection gauge on drop.
pub(crate) struct ConnGuard(Gauge);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Renders `"jobs":[...],"tenants":[...]` — shared by the `status`
/// protocol event and the HTTP `/jobs` body. Jobs come straight from
/// the journals (so the view survives restarts); the tenant rollup adds
/// queue depth, the unit in flight, and this process's rejection tally.
fn jobs_tenants_json(st: &State) -> String {
    let depth_vec = st.queue.tenant_depths();
    let depths: BTreeMap<&str, usize> = depth_vec.iter().map(|(t, d)| (t.as_str(), *d)).collect();
    let mut jobs = String::new();
    struct Roll {
        queued: usize,
        active: usize,
        served: usize,
        failed: usize,
        running: Option<(String, usize)>,
    }
    let mut tenants: BTreeMap<&str, Roll> = BTreeMap::new();
    for (id, js) in &st.jobs {
        if !jobs.is_empty() {
            jobs.push(',');
        }
        let running_unit = match &st.running {
            Some((rid, unit)) if rid == id => Some(*unit),
            _ => None,
        };
        jobs.push_str(&format!(
            "{{\"id\":{},\"tenant\":{},\"done\":{},\"failed\":{},\"total\":{},\"state\":{}{}{}}}",
            escape(id),
            escape(&js.stored.tenant),
            js.done(),
            js.failed(),
            js.total(),
            escape(if js.finished() { "done" } else { "active" }),
            match js.stored.shard {
                Some((i, n)) => format!(",\"shard\":\"{i}/{n}\""),
                None => String::new(),
            },
            match running_unit {
                Some(u) => format!(",\"unit\":{u}"),
                None => String::new(),
            },
        ));
        let roll = tenants.entry(&js.stored.tenant).or_insert(Roll {
            queued: 0,
            active: 0,
            served: 0,
            failed: 0,
            running: None,
        });
        roll.active += usize::from(!js.finished());
        roll.served += js.done();
        roll.failed += js.failed();
        if let Some(u) = running_unit {
            roll.running = Some((id.clone(), u));
        }
    }
    for (tenant, depth) in &depths {
        if let Some(roll) = tenants.get_mut(tenant) {
            roll.queued = *depth;
        }
    }
    let mut out = String::new();
    for (tenant, roll) in &tenants {
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"tenant\":{},\"queued\":{},\"active_jobs\":{},\"served\":{},\"failed\":{},\
             \"rejected\":{},\"running\":{}}}",
            escape(tenant),
            roll.queued,
            roll.active,
            roll.served,
            roll.failed,
            st.rejects.get(*tenant).copied().unwrap_or(0),
            match &roll.running {
                Some((id, u)) => format!("{{\"job\":{},\"unit\":{u}}}", escape(id)),
                None => "null".to_owned(),
            },
        ));
    }
    format!(
        "\"jobs\":[{jobs}],\"tenants\":[{out}],\"gc_evicted\":{}",
        st.gc_evicted
    )
}

/// Extracts the optional `shard_index`/`shard_count` pair from a submit
/// command. Both must be present together, `count` must be positive and
/// `index < count` — residue classes outside that range select nothing
/// a client could have meant.
fn parse_shard_fields(cmd: &Value) -> Result<Option<(u32, u32)>, String> {
    let field = |key: &str| -> Result<Option<u32>, String> {
        match cmd.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(Some)
                .ok_or_else(|| format!("'{key}' must be a u32")),
        }
    };
    match (field("shard_index")?, field("shard_count")?) {
        (None, None) => Ok(None),
        (Some(idx), Some(n)) if n > 0 && idx < n => Ok(Some((idx, n))),
        (Some(idx), Some(n)) => Err(format!("shard {idx}/{n} is out of range")),
        _ => Err("shard_index and shard_count must be given together".to_owned()),
    }
}

/// Evicts the oldest finished jobs beyond `retain`, in acceptance order
/// (job ids sort that way). Running and queued jobs are structurally
/// exempt: only `finished()` jobs are candidates. A failed eviction
/// stops the sweep — the next completion retries it.
fn gc_finished(
    store: &mut JobStore,
    jobs: &mut BTreeMap<String, JobState>,
    retain: usize,
    m: &ServeMetrics,
) -> u64 {
    let finished: Vec<String> = jobs
        .values()
        .filter(|j| j.finished())
        .map(|j| j.stored.id.clone())
        .collect();
    let Some(excess) = finished.len().checked_sub(retain).filter(|&e| e > 0) else {
        return 0;
    };
    let mut evicted = 0;
    for id in finished.iter().take(excess) {
        match store.evict(id) {
            Ok(()) => {
                jobs.remove(id);
                m.store_gc.inc();
                evicted += 1;
                dramctrl_obs::log_info!("serve", "gc evicted finished job"; "id" => id);
            }
            Err(e) => {
                dramctrl_obs::log_warn!(
                    "serve", "gc eviction failed; will retry on next completion";
                    "id" => id, "error" => e
                );
                break;
            }
        }
    }
    evicted
}

/// Sets every known tenant's queue-depth gauge (0 when not in
/// rotation), so gauges never go stale when a tenant drains.
fn sync_queue_gauges(m: &ServeMetrics, st: &State) {
    let depths: BTreeMap<String, usize> = st.queue.tenant_depths().into_iter().collect();
    let mut seen = std::collections::BTreeSet::new();
    for js in st.jobs.values() {
        let tenant = js.stored.tenant.as_str();
        if seen.insert(tenant) {
            let depth = depths.get(tenant).copied().unwrap_or(0);
            m.tenant_queue_depth(tenant).set(depth as f64);
        }
    }
}

/// Result of one scheduler slice.
enum Unit {
    Done(JobMetrics, Option<JobArtifacts>),
    Paused { injected: u64 },
}

/// Writes an observed unit's artifacts atomically next to the journal.
///
/// # Errors
/// Store I/O — the caller routes it into degraded mode.
fn write_unit_artifacts(dir: &std::path::Path, unit: usize, a: &JobArtifacts) -> io::Result<()> {
    for (ext, text) in [
        ("stats.json", &a.stats_json),
        ("epochs.jsonl", &a.epochs_jsonl),
        ("epochs.csv", &a.epochs_csv),
        ("trace.json", &a.perfetto_json),
    ] {
        let path = JobStore::unit_artifact(dir, unit, ext);
        write_atomic(&path, text.as_bytes())
            .map_err(|e| io::Error::new(e.kind(), format!("artifact {}: {e}", path.display())))?;
    }
    Ok(())
}

/// Commits one unit's outcome (the durable commit point) and broadcasts
/// the resulting events to subscribers. The commit fsync is timed into
/// the store-fsync histogram; the journal bytes themselves are rendered
/// exactly as before — metrics only watch the clock. Broadcast happens
/// only after the commit lands, so nothing a watcher sees can be lost
/// to a store failure.
///
/// # Errors
/// Journal I/O — the caller parks the outcome and enters degraded mode.
fn commit_unit(
    js: &mut JobState,
    unit: usize,
    outcome: JobOutcome,
    artifacts: Option<&JobArtifacts>,
    m: &ServeMetrics,
) -> io::Result<()> {
    let rec = JobRecord {
        job: js.units[unit].clone(),
        outcome,
    };
    let fsync_started = Instant::now();
    js.journal.commit(&rec)?;
    m.store_fsync("commit")
        .observe(fsync_started.elapsed().as_secs_f64());
    let id = js.stored.id.clone();
    let line = rec.render(&js.stored.campaign.name);
    js.broadcast(&record_event(&id, unit, &line), m);
    if let Some(a) = artifacts {
        js.broadcast(&text_event("stats", &id, unit, &a.stats_json), m);
        js.broadcast(&text_event("epochs", &id, unit, &a.epochs_jsonl), m);
    }
    js.broadcast(&progress_event(&id, js.done(), js.total()), m);
    if js.finished() {
        js.broadcast(&done_event(&id, js.done() - js.failed(), js.failed()), m);
        js.subscribers.clear();
    }
    Ok(())
}

/// Puts an unfinished job back in rotation after its turn.
fn requeue(st: &mut State, id: &str) {
    let Some(js) = st.jobs.get(id) else { return };
    if !js.finished() {
        let tenant = js.stored.tenant.clone();
        st.queue.push(&tenant, id.to_owned());
        st.queued_at
            .entry(id.to_owned())
            .or_insert_with(Instant::now);
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_campaign::Campaign;

    #[test]
    fn broadcast_evicts_full_subscribers_and_prunes_hangups() {
        let dir = std::env::temp_dir().join(format!("dramctrl-serve-bcast-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let c = Campaign::new("b", 1).read_pcts([50]).requests([10]);
        let journal = CampaignJournal::create(dir.join("j.jsonl"), &c).unwrap();
        let mut js = JobState {
            stored: StoredJob {
                id: "job-0001".into(),
                tenant: "t".into(),
                epochs: 0,
                campaign: c.clone(),
                shard: None,
            },
            units: c.expand(),
            journal,
            failures: 0,
            pause_target: 0,
            subscribers: Vec::new(),
        };
        let m = ServeMetrics::new();
        let (tx_full, _rx_never_drained) = mpsc::sync_channel(1);
        let (tx_gone, rx_gone) = mpsc::sync_channel(1);
        drop(rx_gone);
        let (tx_ok, rx_ok) = mpsc::sync_channel(8);
        js.subscribers = vec![tx_full, tx_gone, tx_ok];

        // First broadcast: fills the never-drained buffer, prunes the
        // hang-up (not an eviction), delivers to the healthy one.
        js.broadcast("one", &m);
        assert_eq!(js.subscribers.len(), 2);
        assert_eq!(m.clients_evicted.get(), 0);

        // Second broadcast: the full buffer now evicts its subscriber.
        js.broadcast("two", &m);
        assert_eq!(js.subscribers.len(), 1);
        assert_eq!(m.clients_evicted.get(), 1);
        assert_eq!(rx_ok.try_recv().unwrap(), "one");
        assert_eq!(rx_ok.try_recv().unwrap(), "two");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
