//! `chaos`: the crash-point explorer.
//!
//! Re-runs a deterministic durable workload with a process crash
//! injected at *every* durability operation in turn, then re-runs it
//! once more to recover, and asserts the recovery invariants at each
//! crash point:
//!
//! - the recovered journal (and report / accept log) is **byte-identical**
//!   to a never-crashed run's;
//! - everything acknowledged before the crash is still on disk after it
//!   (complete, parsable lines — committed-before-ack survives);
//! - recovery itself exits cleanly (torn tails truncated, header-less
//!   files recreated, nothing refused that a crash can legally leave).
//!
//! Two workloads are explored:
//!
//! - `campaign`: a journaled campaign run (`CampaignJournal` +
//!   `run_campaign_journaled` + an atomic report write) — the CLI sweep
//!   path;
//! - `store`: a serve-store session (`JobStore::accept`, per-job journal,
//!   unit commits with acks) — the daemon's durable path, minus sockets.
//!
//! The matrix is sized from [`fault::op_count`]: a fault-free reference
//! run reports how many durability ops the workload performs, and the
//! explorer crashes at op 1, 2, … N via `DRAMCTRL_FAULT_PLAN=crash,at=K`
//! in a re-exec of this same binary. Usage:
//!
//! ```text
//! chaos explore [--mode campaign|store|all] [--dir DIR] [--report FILE]
//! chaos campaign --dir DIR     (worker: one campaign session)
//! chaos store --dir DIR        (worker: one store session)
//! ```
//!
//! Exit code: 0 when every crash point recovers byte-identically, 1
//! otherwise. `--report` appends one JSON line per crash point.

use dramctrl_bench::run_job;
use dramctrl_campaign::{merge_journals, Campaign, CampaignJournal, JobOutcome, JobRecord};
use dramctrl_kernel::fsio::{fault, write_atomic};
use dramctrl_serve::JobStore;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// The workload every mode runs: small enough that the crash matrix
/// stays cheap, wide enough (two units) that crash points fall between
/// commits, not just around one.
fn chaos_campaign() -> Campaign {
    Campaign::new("chaos", 7)
        .read_pcts([0, 100])
        .requests([200])
}

// ----- workers ---------------------------------------------------------

/// One campaign session in `dir`: create-or-recover the journal, commit
/// every uncommitted unit serially (ack each), render the report from
/// the journal and write it atomically. Idempotent: the recovery run is
/// the same invocation.
///
/// Commits are serial on purpose — the parallel executor's greedy batch
/// drain makes its *fsync count* timing-dependent, and the explorer
/// needs the same durability-op sequence every run. The bytes are
/// unaffected either way (one renderer, keep-first journal).
fn worker_campaign(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let c = chaos_campaign();
    let jpath = dir.join("journal.jsonl");
    let mut journal = CampaignJournal::recover(&jpath, &c).map_err(|e| e.to_string())?;
    for (i, unit) in c.expand().iter().enumerate() {
        if journal.completed().contains_key(&i) {
            continue;
        }
        let metrics = run_job(unit);
        journal
            .commit(&JobRecord {
                job: unit.clone(),
                outcome: JobOutcome::Completed {
                    metrics,
                    attempts: 1,
                },
            })
            .map_err(|e| e.to_string())?;
        println!("ack commit {i}");
    }
    let report = merge_journals(&c, &[&jpath]).map_err(|e| e.to_string())?;
    write_atomic(dir.join("report.jsonl"), report.to_jsonl().as_bytes())
        .map_err(|e| e.to_string())?;
    println!("ops={}", fault::op_count());
    Ok(())
}

/// One serve-store session in `dir`: repair + accept (ack), per-job
/// journal, one commit per unit (ack each). Idempotent the same way the
/// daemon's restart recovery is: accepted jobs are re-used, committed
/// units are skipped.
fn worker_store(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let c = chaos_campaign();
    let (mut store, accepted) = JobStore::open(dir).map_err(|e| e.to_string())?;
    store.repair().map_err(|e| e.to_string())?;
    let stored = match accepted.into_iter().next() {
        Some(s) => s,
        None => {
            let s = store.accept("chaos", 0, &c).map_err(|e| e.to_string())?;
            println!("ack accept {}", s.id);
            s
        }
    };
    let jdir = store.job_dir(&stored.id);
    std::fs::create_dir_all(&jdir).map_err(|e| e.to_string())?;
    let mut journal =
        CampaignJournal::recover(jdir.join("journal.jsonl"), &c).map_err(|e| e.to_string())?;
    for (i, unit) in c.expand().iter().enumerate() {
        if journal.completed().contains_key(&i) {
            continue;
        }
        let metrics = run_job(unit);
        journal
            .commit(&JobRecord {
                job: unit.clone(),
                outcome: JobOutcome::Completed {
                    metrics,
                    attempts: 1,
                },
            })
            .map_err(|e| e.to_string())?;
        println!("ack commit {i}");
    }
    println!("ops={}", fault::op_count());
    Ok(())
}

// ----- explorer --------------------------------------------------------

/// The files whose final bytes must match the reference, per mode.
fn artifact_files(mode: &str) -> Vec<&'static str> {
    match mode {
        "campaign" => vec!["journal.jsonl", "report.jsonl"],
        "store" => vec!["accept.jsonl", "job-0001/journal.jsonl"],
        _ => unreachable!(),
    }
}

struct RunOutput {
    status: Option<i32>,
    acks: Vec<String>,
    ops: Option<u64>,
    stderr: String,
}

/// Re-execs this binary as `chaos <mode> --dir <dir>`, with or without
/// a crash plan.
fn run_worker(mode: &str, dir: &Path, crash_at: Option<u64>) -> RunOutput {
    let exe = std::env::current_exe().expect("own executable path");
    let mut cmd = Command::new(exe);
    cmd.arg(mode).arg("--dir").arg(dir);
    match crash_at {
        Some(k) => {
            cmd.env("DRAMCTRL_FAULT_PLAN", format!("crash,at={k}"));
        }
        None => {
            cmd.env_remove("DRAMCTRL_FAULT_PLAN");
        }
    }
    let out = cmd.output().expect("spawning chaos worker");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut acks = Vec::new();
    let mut ops = None;
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("ack ") {
            acks.push(rest.to_owned());
        } else if let Some(n) = line.strip_prefix("ops=") {
            ops = n.parse().ok();
        }
    }
    RunOutput {
        status: out.status.code(),
        acks,
        ops,
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// Counts complete (newline-terminated) non-header lines in a journal
/// or accept log — the durable-record count an ack must be covered by.
fn complete_lines(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.split_inclusive('\n')
        .filter(|l| l.ends_with('\n'))
        .count()
}

/// Verifies every pre-crash ack against the crashed (un-recovered)
/// on-disk state. Acks: `accept <id>` needs a complete accept-log line;
/// `commit <i>` needs a complete journal record past the header.
fn acks_survived(mode: &str, dir: &Path, acks: &[String]) -> Result<(), String> {
    let accepts = acks.iter().filter(|a| a.starts_with("accept")).count();
    let commits = acks.iter().filter(|a| a.starts_with("commit")).count();
    if accepts > 0 && complete_lines(&dir.join("accept.jsonl")) < accepts {
        return Err(format!("{accepts} acked accepts not all on disk"));
    }
    let journal = match mode {
        "campaign" => dir.join("journal.jsonl"),
        _ => dir.join("job-0001/journal.jsonl"),
    };
    // Header line + one line per acked commit, at minimum.
    if commits > 0 && complete_lines(&journal) < commits + 1 {
        return Err(format!("{commits} acked commits not all on disk"));
    }
    Ok(())
}

struct CrashPointResult {
    mode: String,
    crash_at: u64,
    crash_exit: Option<i32>,
    acked: usize,
    failure: Option<String>,
}

impl CrashPointResult {
    fn jsonl(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"crash_at\":{},\"crash_exit\":{},\"acked\":{},\
             \"ok\":{},\"failure\":{}}}",
            self.mode,
            self.crash_at,
            self.crash_exit.map_or("null".into(), |c| c.to_string()),
            self.acked,
            self.failure.is_none(),
            match &self.failure {
                None => "null".to_owned(),
                Some(f) => format!("{:?}", f),
            },
        )
    }
}

/// Explores every crash point of one mode. Returns per-point results.
fn explore_mode(mode: &str, base: &Path) -> Vec<CrashPointResult> {
    // Reference: a fault-free run, for the op count and the final bytes.
    let ref_dir = base.join(format!("{mode}-ref"));
    let reference = run_worker(mode, &ref_dir, None);
    assert_eq!(
        reference.status,
        Some(0),
        "reference {mode} run failed:\n{}",
        reference.stderr
    );
    let ops = reference.ops.expect("reference run reports ops=N");
    let want: Vec<(PathBuf, Vec<u8>)> = artifact_files(mode)
        .iter()
        .map(|f| {
            let p = ref_dir.join(f);
            let bytes = std::fs::read(&p)
                .unwrap_or_else(|e| panic!("reference artifact {}: {e}", p.display()));
            (PathBuf::from(f), bytes)
        })
        .collect();
    println!("mode={mode}: {ops} durability ops; exploring every crash point");

    let mut results = Vec::new();
    for k in 1..=ops {
        let dir = base.join(format!("{mode}-{k}"));
        let crashed = run_worker(mode, &dir, Some(k));
        let mut failure = None;
        if crashed.status != Some(fault::CRASH_EXIT_CODE) {
            failure = Some(format!(
                "expected crash exit {} at op {k}, got {:?}:\n{}",
                fault::CRASH_EXIT_CODE,
                crashed.status,
                crashed.stderr
            ));
        }
        if failure.is_none() {
            failure = acks_survived(mode, &dir, &crashed.acks).err();
        }
        if failure.is_none() {
            let recovery = run_worker(mode, &dir, None);
            if recovery.status != Some(0) {
                failure = Some(format!(
                    "recovery after crash at op {k} failed ({:?}):\n{}",
                    recovery.status, recovery.stderr
                ));
            }
        }
        if failure.is_none() {
            for (file, want_bytes) in &want {
                let got = std::fs::read(dir.join(file)).unwrap_or_default();
                if &got != want_bytes {
                    failure = Some(format!(
                        "{} differs from the never-crashed run after crash at op {k}",
                        file.display()
                    ));
                    break;
                }
            }
        }
        if let Some(f) = &failure {
            eprintln!("FAIL mode={mode} crash_at={k}: {f}");
        }
        results.push(CrashPointResult {
            mode: mode.to_owned(),
            crash_at: k,
            crash_exit: crashed.status,
            acked: crashed.acks.len(),
            failure,
        });
    }
    results
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos explore [--mode campaign|store|all] [--dir DIR] [--report FILE]\n\
         \x20      chaos campaign --dir DIR\n\
         \x20      chaos store --dir DIR"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match cmd {
        "campaign" | "store" => {
            let dir = PathBuf::from(flag("--dir").unwrap_or_else(|| usage()));
            let run = if cmd == "campaign" {
                worker_campaign(&dir)
            } else {
                worker_store(&dir)
            };
            match run {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("chaos {cmd} worker: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "explore" => {
            let mode = flag("--mode").unwrap_or_else(|| "all".to_owned());
            let base = flag("--dir").map_or_else(
                || std::env::temp_dir().join(format!("dramctrl-chaos-{}", std::process::id())),
                PathBuf::from,
            );
            let _ = std::fs::remove_dir_all(&base);
            let modes: Vec<&str> = match mode.as_str() {
                "all" => vec!["campaign", "store"],
                "campaign" => vec!["campaign"],
                "store" => vec!["store"],
                _ => usage(),
            };
            let mut all = Vec::new();
            for m in &modes {
                all.extend(explore_mode(m, &base));
            }
            if let Some(report) = flag("--report") {
                let lines: String = all.iter().map(|r| r.jsonl() + "\n").collect();
                if let Err(e) = std::fs::write(&report, lines) {
                    eprintln!("writing report {report}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let failed = all.iter().filter(|r| r.failure.is_some()).count();
            println!(
                "explored {} crash points across {} mode(s): {} failed",
                all.len(),
                modes.len(),
                failed
            );
            let _ = std::fs::remove_dir_all(&base);
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
