//! The dispatch coordinator: fan a campaign out to a daemon fleet and
//! survive dead, slow, and lying peers.
//!
//! `dispatch` partitions a campaign's job space into residue-class
//! shards (job `i` belongs to shard `i % n` — the same rule as the
//! executor's `run_campaign_shard`, so per-job seeds and record bytes
//! are independent of the partitioning), submits one shard per healthy
//! peer over the line protocol, streams each shard's records back via
//! `watch`, and merges everything with `merge_journals` into a report
//! byte-identical to a local unsharded sweep.
//!
//! The robustness model, in lifecycle order:
//!
//! 1. **Probe**: every peer must answer `hello` with compatible
//!    versions before it is assigned anything. A peer speaking an older
//!    protocol (no shard-aware submit) fails the version gate here.
//! 2. **Assign**: each incomplete shard goes to a live peer
//!    (round-robin when shards outnumber peers). Spare peers *hedge*:
//!    they re-run a shard someone slower already owns, and whichever
//!    copy commits a record first wins.
//! 3. **Validate**: every streamed record is parsed, index- and
//!    residue-checked, then re-rendered from the coordinator's own
//!    campaign spec and byte-compared. A peer that streams anything
//!    else is *banned* — marked lying, never re-assigned — and its
//!    shard re-dispatched. Only validated bytes reach a shard journal.
//! 4. **Re-dispatch**: a peer that dies (connect refused, stream cut,
//!    submit rejected) or stalls past the I/O deadline fails its
//!    assignment; the shard returns to the pool for the next round,
//!    paced by capped exponential backoff. Dead peers are re-probed
//!    each round (a restarted daemon rejoins); banned peers are not.
//! 5. **Merge**: every assignment appended to its *own* journal, so
//!    overlapping partial shards (hedges, re-runs after partial
//!    progress) union keep-first — duplicates are byte-identical by
//!    determinism, making re-dispatch idempotent. `merge_journals`
//!    validates every journal against the spec hash and refuses to
//!    emit a report with gaps: an uncoverable campaign is a loud
//!    [`DispatchError::Incomplete`], never a truncated report.

use crate::client::{Client, WatchSummary};
use crate::proto::record_data;
use dramctrl_campaign::{
    merge_journals, parse_record_line, CampaignJournal, CampaignReport, JobRecord, JobSpec,
    JournalError,
};
use dramctrl_kernel::backoff::Backoff;
use std::collections::BTreeSet;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Tenant name submitted to every peer.
    pub tenant: String,
    /// Directory for the coordinator's shard journals (one per
    /// assignment). Created if missing.
    pub workdir: PathBuf,
    /// Per-read deadline while streaming a shard: a connected peer that
    /// delivers nothing for this long fails the assignment. `None`
    /// trusts peers never to hang.
    pub io_timeout: Option<Duration>,
    /// Re-issue incomplete shards to idle peers within a round.
    pub hedge: bool,
    /// Assignment rounds before giving up and reporting `Incomplete`.
    pub max_rounds: u32,
    /// Epoch-series interval forwarded to peers (0 = unobserved, the
    /// byte-identity mode).
    pub epochs: u64,
}

impl DispatchConfig {
    /// Defaults: 60 s I/O deadline, hedging on, 10 rounds.
    #[must_use]
    pub fn new(workdir: impl Into<PathBuf>) -> Self {
        Self {
            tenant: "dispatch".to_owned(),
            workdir: workdir.into(),
            io_timeout: Some(Duration::from_secs(60)),
            hedge: true,
            max_rounds: 10,
            epochs: 0,
        }
    }
}

/// What the fleet did, for the final summary line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Shard count (`n` in `i/n`).
    pub shards: u32,
    /// Assignment rounds executed.
    pub rounds: u32,
    /// Assignments beyond each shard's first — re-dispatches after a
    /// peer died, stalled, or lied.
    pub redispatches: u32,
    /// Hedged (duplicate) assignments to otherwise idle peers.
    pub hedges: u32,
    /// Peers that failed at least one assignment or probe.
    pub peers_lost: u32,
}

/// Why a dispatch produced no report.
#[derive(Debug)]
pub enum DispatchError {
    /// No peer survived the hello probe; each entry is `(addr, why)`.
    NoHealthyPeers(Vec<(String, String)>),
    /// Coordinator-side I/O (workdir, shard journals).
    Local(std::io::Error),
    /// The fleet could not cover the whole job space before the round
    /// budget (or every peer) was exhausted.
    Incomplete {
        /// Uncovered job count.
        missing: usize,
        /// Lowest uncovered index.
        first_missing: usize,
        /// Campaign job count.
        total: usize,
    },
    /// A shard journal failed validation at merge time.
    Journal(JournalError),
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::NoHealthyPeers(peers) => {
                write!(f, "no healthy peers among {}:", peers.len())?;
                for (addr, why) in peers {
                    write!(f, "\n  {addr}: {why}")?;
                }
                Ok(())
            }
            DispatchError::Local(e) => write!(f, "coordinator i/o: {e}"),
            DispatchError::Incomplete {
                missing,
                first_missing,
                total,
            } => write!(
                f,
                "campaign incomplete: {missing} of {total} jobs uncovered \
                 (first missing index {first_missing}); refusing to emit a \
                 truncated report — add peers or re-run dispatch"
            ),
            DispatchError::Journal(e) => write!(f, "shard journal: {e}"),
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<std::io::Error> for DispatchError {
    fn from(e: std::io::Error) -> Self {
        DispatchError::Local(e)
    }
}

/// Per-peer lifecycle. `Dead` peers are re-probed every round (daemons
/// restart); `Banned` peers streamed invalid bytes and are never
/// trusted again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerState {
    Healthy,
    Dead,
    Banned,
}

#[derive(Debug)]
struct Peer {
    addr: String,
    state: PeerState,
    ever_failed: bool,
}

/// One shard assignment for the current round.
struct Assignment {
    shard: u32,
    peer: usize,
    hedged: bool,
    journal: PathBuf,
}

/// Runs a campaign across `peers` and merges the result.
///
/// # Errors
/// See [`DispatchError`]; `Incomplete` is the refuses-to-truncate path.
pub fn dispatch(
    campaign: &dramctrl_campaign::Campaign,
    peers: &[String],
    cfg: &DispatchConfig,
) -> Result<(CampaignReport, DispatchStats), DispatchError> {
    let units = campaign.expand();
    let total = units.len();
    std::fs::create_dir_all(&cfg.workdir)?;

    // ---- probe ------------------------------------------------------
    let mut fleet: Vec<Peer> = Vec::with_capacity(peers.len());
    let mut failures = Vec::new();
    for addr in peers {
        let state = match Client::connect(addr) {
            Ok(_) => PeerState::Healthy,
            Err(e) => {
                failures.push((addr.clone(), e.to_string()));
                PeerState::Dead
            }
        };
        dramctrl_obs::log_info!(
            "dispatch", "peer probed";
            "peer" => addr,
            "healthy" => (state == PeerState::Healthy)
        );
        fleet.push(Peer {
            addr: addr.clone(),
            state,
            ever_failed: state != PeerState::Healthy,
        });
    }
    let healthy = fleet
        .iter()
        .filter(|p| p.state == PeerState::Healthy)
        .count();
    if healthy == 0 {
        return Err(DispatchError::NoHealthyPeers(failures));
    }

    // Shard count is fixed for the campaign's lifetime: residue classes
    // from different `n` would not line up across re-dispatches.
    let n = u32::try_from(healthy.min(total.max(1))).unwrap_or(1).max(1);
    let mut stats = DispatchStats {
        shards: n,
        ..DispatchStats::default()
    };
    dramctrl_obs::log_info!(
        "dispatch", "campaign partitioned";
        "jobs" => total, "shards" => n, "peers" => fleet.len()
    );

    // ---- rounds -----------------------------------------------------
    let done: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
    let mut journals: Vec<PathBuf> = Vec::new();
    let mut assigned_before: BTreeSet<u32> = BTreeSet::new();
    let mut seq = 0usize; // per-assignment journal file sequence
    let mut backoff = Backoff::new(Duration::from_millis(200), Duration::from_secs(5));
    while stats.rounds < cfg.max_rounds {
        let incomplete: Vec<u32> = (0..n)
            .filter(|&s| {
                let d = done
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                shard_has_gap(&d, s, n, total)
            })
            .collect();
        if incomplete.is_empty() {
            break;
        }
        // Re-probe dead peers: a restarted daemon rejoins the fleet.
        for p in &mut fleet {
            if p.state == PeerState::Dead && Client::connect(&p.addr).is_ok() {
                p.state = PeerState::Healthy;
                dramctrl_obs::log_info!("dispatch", "peer rejoined"; "peer" => p.addr);
            }
        }
        let avail: Vec<usize> = fleet
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state == PeerState::Healthy)
            .map(|(i, _)| i)
            .collect();
        if avail.is_empty() {
            break;
        }
        stats.rounds += 1;

        // Every incomplete shard gets a peer (round-robin, rotated by
        // round so a shard whose owner keeps failing lands on a
        // *different* peer next round even without hedging); spare
        // peers hedge the slowest shards.
        let rotate = stats.rounds as usize - 1;
        let mut assignments = Vec::new();
        for (k, &shard) in incomplete.iter().enumerate() {
            assignments.push((shard, avail[(k + rotate) % avail.len()], false));
        }
        if cfg.hedge && avail.len() > incomplete.len() {
            for (k, &peer) in avail[incomplete.len()..].iter().enumerate() {
                assignments.push((incomplete[k % incomplete.len()], peer, true));
            }
        }
        let round = stats.rounds;
        let planned: Vec<Assignment> = assignments
            .into_iter()
            .map(|(shard, peer, hedged)| {
                // Every assignment owns a distinct journal file — two
                // hedges of one shard must never share an appender.
                seq += 1;
                Assignment {
                    shard,
                    peer,
                    hedged,
                    journal: cfg
                        .workdir
                        .join(format!("shard-{shard}of{n}-r{round}-a{seq}.jsonl")),
                }
            })
            .collect();
        for a in &planned {
            let event = if a.hedged {
                "shard hedged"
            } else if assigned_before.contains(&a.shard) {
                "shard re-dispatched"
            } else {
                "shard assigned"
            };
            if a.hedged {
                stats.hedges += 1;
            } else if assigned_before.contains(&a.shard) {
                stats.redispatches += 1;
            }
            assigned_before.insert(a.shard);
            dramctrl_obs::log_info!(
                "dispatch", event;
                "shard" => format!("{}/{n}", a.shard),
                "peer" => fleet[a.peer].addr,
                "round" => round
            );
        }

        // Run the round's assignments concurrently; each worker owns
        // its journal file and reports (peer verdict, outcome).
        let results: Vec<(usize, Result<WatchSummary, AssignmentFailure>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = planned
                    .iter()
                    .map(|a| {
                        let addr = fleet[a.peer].addr.clone();
                        let done = &done;
                        let units = &units;
                        scope.spawn(move || {
                            (
                                a.peer,
                                run_assignment(campaign, units, &addr, a, n, cfg, done),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
        for a in &planned {
            journals.push(a.journal.clone());
        }

        let mut progressed = false;
        for (peer, result) in results {
            match result {
                Ok(_) => progressed = true,
                Err(fail) => {
                    let p = &mut fleet[peer];
                    p.state = match fail.verdict {
                        PeerVerdict::Dead => PeerState::Dead,
                        PeerVerdict::Lying => PeerState::Banned,
                    };
                    if !p.ever_failed {
                        p.ever_failed = true;
                        stats.peers_lost += 1;
                    }
                    progressed |= fail.delivered > 0;
                    dramctrl_obs::log_warn!(
                        "dispatch", "assignment failed";
                        "peer" => p.addr, "shard" => format!("{}/{n}", fail.shard),
                        "verdict" => match fail.verdict {
                            PeerVerdict::Dead => "dead",
                            PeerVerdict::Lying => "banned",
                        },
                        "error" => fail.why
                    );
                }
            }
        }
        if progressed {
            backoff.reset();
        } else {
            std::thread::sleep(backoff.next_delay());
        }
    }

    // ---- merge ------------------------------------------------------
    // Only journals that exist participate: an assignment that died
    // before its journal header was written contributes nothing.
    journals.retain(|p| p.exists());
    let report = match merge_journals(campaign, &journals) {
        Ok(r) => r,
        Err(JournalError::Incomplete {
            missing,
            first_missing,
            total,
        }) => {
            return Err(DispatchError::Incomplete {
                missing,
                first_missing,
                total,
            })
        }
        Err(e) => return Err(DispatchError::Journal(e)),
    };
    dramctrl_obs::log_info!(
        "dispatch", "shards merged";
        "jobs" => report.records.len(), "journals" => journals.len(),
        "rounds" => stats.rounds, "redispatches" => stats.redispatches,
        "hedges" => stats.hedges
    );
    Ok((report, stats))
}

/// Whether shard `s` (of `n`) still has uncommitted indices.
fn shard_has_gap(done: &BTreeSet<usize>, s: u32, n: u32, total: usize) -> bool {
    (s as usize..total)
        .step_by(n as usize)
        .any(|i| !done.contains(&i))
}

/// Why an assignment failed, and what it says about the peer.
enum PeerVerdict {
    /// Transport-level death or refusal: retryable, re-probe later.
    Dead,
    /// Streamed a record failing validation: never trust again.
    Lying,
}

struct AssignmentFailure {
    shard: u32,
    verdict: PeerVerdict,
    why: String,
    delivered: usize,
}

/// One assignment: submit the shard, stream its records with
/// reconnect + deadline, validate each byte-for-byte, and commit the
/// valid ones to this assignment's own journal.
fn run_assignment(
    campaign: &dramctrl_campaign::Campaign,
    units: &[JobSpec],
    addr: &str,
    a: &Assignment,
    n: u32,
    cfg: &DispatchConfig,
    done: &Mutex<BTreeSet<usize>>,
) -> Result<WatchSummary, AssignmentFailure> {
    let shard = a.shard;
    let fail = |verdict, why: String, delivered| AssignmentFailure {
        shard,
        verdict,
        why,
        delivered,
    };
    let submit = || -> std::io::Result<(String, usize)> {
        let mut c = Client::connect(addr)?;
        c.set_io_timeout(cfg.io_timeout)?;
        c.submit_sharded(&cfg.tenant, cfg.epochs, campaign, Some((shard, n)))
    };
    let (id, _total) = submit().map_err(|e| fail(PeerVerdict::Dead, e.to_string(), 0))?;

    let mut journal = CampaignJournal::create(&a.journal, campaign)
        .map_err(|e| fail(PeerVerdict::Dead, format!("local journal: {e}"), 0))?;
    let mut delivered = 0usize;
    let mut poison: Option<String> = None;
    let total = units.len();
    let watched = Client::watch_with_reconnect_deadline(addr, &id, cfg.io_timeout, |v, line| {
        if poison.is_some() {
            return;
        }
        if v.get("event").and_then(crate::wire::Value::as_str) != Some("record") {
            return;
        }
        match validate_record(campaign, units, line, shard, n, total) {
            Ok(rec) => {
                // Commit before publishing: `done` only ever names
                // durably journaled indices.
                match journal.commit(&rec) {
                    Ok(_) => {
                        delivered += 1;
                        done.lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .insert(rec.job.index);
                    }
                    Err(e) => poison = Some(format!("local journal: {e}")),
                }
            }
            Err(why) => poison = Some(format!("invalid record: {why}")),
        }
    });
    if let Some(why) = poison {
        let verdict = if why.starts_with("local journal") {
            PeerVerdict::Dead
        } else {
            PeerVerdict::Lying
        };
        return Err(fail(verdict, why, delivered));
    }
    watched.map_err(|e| fail(PeerVerdict::Dead, e.to_string(), delivered))
}

/// The lying-peer gate: a streamed `record` event is accepted only if
/// its payload parses under the record grammar, its index is in range
/// and in this shard's residue class, and re-rendering the outcome from
/// the coordinator's *own* spec reproduces the payload byte-for-byte —
/// which simultaneously proves the spec fields (seed, axes, campaign
/// name) match, exactly as a spec-hash check would, at record
/// granularity.
fn validate_record(
    campaign: &dramctrl_campaign::Campaign,
    units: &[JobSpec],
    line: &str,
    shard: u32,
    n: u32,
    total: usize,
) -> Result<JobRecord, String> {
    let data = record_data(line).ok_or_else(|| "record event carries no payload".to_owned())?;
    let (index, outcome) = parse_record_line(data)?;
    if index >= total {
        return Err(format!("index {index} out of range (total {total})"));
    }
    if index as u64 % u64::from(n) != u64::from(shard) {
        return Err(format!("index {index} outside shard {shard}/{n}"));
    }
    let rec = JobRecord {
        job: units[index].clone(),
        outcome,
    };
    let expected = rec.render(&campaign.name);
    if expected != data {
        return Err(format!(
            "record bytes diverge from the local spec at index {index}"
        ));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_campaign::{Campaign, JobMetrics, JobOutcome};

    fn campaign() -> Campaign {
        Campaign::new("dispatch-test", 9).read_pcts([0, 50, 100])
    }

    fn record_line(c: &Campaign, index: usize) -> String {
        let rec = JobRecord {
            job: c.expand()[index].clone(),
            outcome: JobOutcome::Completed {
                metrics: JobMetrics::new().with("bus_util", 0.5),
                attempts: 1,
            },
        };
        rec.render(&c.name)
    }

    #[test]
    fn validate_accepts_honest_records_and_rejects_lies() {
        let c = campaign();
        let units = c.expand();
        let data = record_line(&c, 1);
        let event = crate::proto::record_event("job-0001", 1, &data);
        // Honest: index 1 is in shard 1 of 3.
        assert!(validate_record(&c, &units, &event, 1, 3, 3).is_ok());
        // Wrong residue class.
        let err = validate_record(&c, &units, &event, 0, 3, 3).unwrap_err();
        assert!(err.contains("outside shard"), "{err}");
        // Out of range index.
        let far =
            crate::proto::record_event("job-0001", 7, &data.replace("\"job\":1", "\"job\":7"));
        let err = validate_record(&c, &units, &far, 1, 3, 3).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // Foreign campaign: same shape, different seed → different
        // per-job seed bytes → byte divergence.
        let foreign = Campaign::new("dispatch-test", 10).read_pcts([0, 50, 100]);
        let forged = crate::proto::record_event("job-0001", 1, &record_line(&foreign, 1));
        let err = validate_record(&c, &units, &forged, 1, 3, 3).unwrap_err();
        assert!(err.contains("diverge"), "{err}");
        // Garbage payload.
        let junk = "{\"event\":\"record\",\"id\":\"x\",\"index\":1,\"data\":{\"nope\":1}}";
        assert!(validate_record(&c, &units, junk, 1, 3, 3).is_err());
    }

    #[test]
    fn shard_gap_detection_walks_the_residue_class() {
        let mut done = BTreeSet::new();
        // Shard 1 of 3 over 8 jobs owns {1, 4, 7}.
        assert!(shard_has_gap(&done, 1, 3, 8));
        done.extend([1, 4]);
        assert!(shard_has_gap(&done, 1, 3, 8));
        done.insert(7);
        assert!(!shard_has_gap(&done, 1, 3, 8));
        // Other shards' indices are irrelevant.
        assert!(shard_has_gap(&done, 0, 3, 8));
    }

    #[test]
    fn all_peers_dead_is_no_healthy_peers() {
        let dir = std::env::temp_dir().join(format!("dramctrl-dispatch-{}", std::process::id()));
        let cfg = DispatchConfig::new(&dir);
        let peers = vec!["127.0.0.1:1".to_owned(), "/nonexistent/sock".to_owned()];
        match dispatch(&campaign(), &peers, &cfg) {
            Err(DispatchError::NoHealthyPeers(fails)) => assert_eq!(fails.len(), 2),
            other => panic!("expected NoHealthyPeers, got {other:?}"),
        }
    }
}
