//! The daemon's operational metrics: named handles over a
//! [`Registry`](dramctrl_obs::metrics::Registry).
//!
//! Every counter the scheduler, admission path and connection handlers
//! touch is registered here once, so the rest of the crate records
//! through cheap pre-resolved atomic handles and `/metrics` renders one
//! coherent exposition. Naming follows Prometheus conventions:
//! `_total` counters, `_seconds` histograms, plain gauges.
//!
//! The zero-perturbation rule from the probe layer carries over:
//! metrics observe the service; they are never read by scheduling or
//! admission decisions, and no journal byte or streamed record depends
//! on them.

use dramctrl_obs::metrics::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS};

/// Pre-registered handles for every daemon-side metric.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// The registry behind `/metrics`.
    pub registry: Registry,
    /// Jobs accepted by admission.
    pub admission_accepted: Counter,
    /// Work units preempted at a quantum boundary.
    pub preemptions: Counter,
    /// Completed work units (daemon-wide).
    pub units_completed: Counter,
    /// Failed work units (panicked past the retry budget).
    pub units_failed: Counter,
    /// Seconds a queued job waited between enqueue and its next turn —
    /// the scheduler fairness lag.
    pub sched_wait: Histogram,
    /// Protocol + HTTP connections currently open.
    pub active_connections: Gauge,
    /// Bytes streamed to `watch` subscribers.
    pub streamed_bytes: Counter,
    /// Completed units per second of daemon uptime.
    pub units_per_second: Gauge,
    /// Daemon uptime (set at scrape time).
    pub uptime: Gauge,
    /// Unfinished jobs (set at scrape time).
    pub jobs_active: Gauge,
    /// 1 while the durable store is failing writes and the daemon is in
    /// degraded mode (admissions shed, scheduler paused), else 0.
    pub store_degraded: Gauge,
    /// Store recovery attempts made while degraded.
    pub store_retries: Counter,
    /// Client connections evicted for hostility: idle past the read
    /// deadline, or a watch subscriber whose outbound buffer overflowed.
    pub clients_evicted: Counter,
    /// Finished jobs garbage-collected from the store (`serve --retain`).
    pub store_gc: Counter,
}

impl ServeMetrics {
    /// Registers every family in a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        let registry = Registry::new();
        let admission_accepted = registry.counter(
            "dramctrl_admission_total",
            "Admission decisions by result and (for rejections) reason.",
            &[("result", "accepted")],
        );
        let preemptions = registry.counter(
            "dramctrl_sched_preemptions_total",
            "Work-unit slices paused at a quantum boundary.",
            &[],
        );
        let units_completed = registry.counter(
            "dramctrl_units_total",
            "Work units finished, by outcome.",
            &[("outcome", "completed")],
        );
        let units_failed = registry.counter(
            "dramctrl_units_total",
            "Work units finished, by outcome.",
            &[("outcome", "failed")],
        );
        let sched_wait = registry.histogram(
            "dramctrl_sched_wait_seconds",
            "Seconds between a job entering the queue and its next turn.",
            &[],
            LATENCY_BUCKETS,
        );
        let active_connections = registry.gauge(
            "dramctrl_active_connections",
            "Open client connections (protocol and HTTP).",
            &[],
        );
        let streamed_bytes = registry.counter(
            "dramctrl_streamed_bytes_total",
            "Bytes streamed to watch subscribers.",
            &[],
        );
        let units_per_second = registry.gauge(
            "dramctrl_executor_units_per_second",
            "Completed work units per second of daemon uptime.",
            &[],
        );
        let uptime = registry.gauge(
            "dramctrl_uptime_seconds",
            "Seconds since the daemon started.",
            &[],
        );
        let jobs_active = registry.gauge("dramctrl_jobs_active", "Jobs not yet finished.", &[]);
        let store_degraded = registry.gauge(
            "dramctrl_store_degraded",
            "1 while store writes are failing and admissions are shed, else 0.",
            &[],
        );
        let store_retries = registry.counter(
            "dramctrl_store_retries_total",
            "Store recovery attempts made while degraded.",
            &[],
        );
        let clients_evicted = registry.counter(
            "dramctrl_clients_evicted_total",
            "Connections evicted: idle past the deadline or overflowing their outbound buffer.",
            &[],
        );
        let store_gc = registry.counter(
            "dramctrl_store_gc_total",
            "Finished jobs garbage-collected from the durable store.",
            &[],
        );
        Self {
            registry,
            admission_accepted,
            preemptions,
            units_completed,
            units_failed,
            sched_wait,
            active_connections,
            streamed_bytes,
            units_per_second,
            uptime,
            jobs_active,
            store_degraded,
            store_retries,
            clients_evicted,
            store_gc,
        }
    }

    /// The rejection counter for one normalised reason (`queue_full`,
    /// `bad_campaign`, `store_error`, `journal_error`,
    /// `store_unavailable` — the degraded-mode shed).
    #[must_use]
    pub fn rejected(&self, reason: &str) -> Counter {
        self.registry.counter(
            "dramctrl_admission_total",
            "Admission decisions by result and (for rejections) reason.",
            &[("result", "rejected"), ("reason", reason)],
        )
    }

    /// Units served (committed) for one tenant.
    #[must_use]
    pub fn tenant_served(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "dramctrl_tenant_served_units_total",
            "Work units committed, by tenant.",
            &[("tenant", tenant)],
        )
    }

    /// Rejected submits for one tenant.
    #[must_use]
    pub fn tenant_rejected(&self, tenant: &str) -> Counter {
        self.registry.counter(
            "dramctrl_tenant_rejected_total",
            "Rejected submits, by tenant.",
            &[("tenant", tenant)],
        )
    }

    /// Queue-depth gauge for one tenant.
    #[must_use]
    pub fn tenant_queue_depth(&self, tenant: &str) -> Gauge {
        self.registry.gauge(
            "dramctrl_tenant_queue_depth",
            "Jobs queued (including a re-queued paused job), by tenant.",
            &[("tenant", tenant)],
        )
    }

    /// The store-fsync latency histogram for one operation
    /// (`accept` — the admission commit point; `commit` — a unit's
    /// journal commit).
    #[must_use]
    pub fn store_fsync(&self, op: &str) -> Histogram {
        self.registry.histogram(
            "dramctrl_store_fsync_seconds",
            "Durable store fsync latency, by operation.",
            &[("op", op)],
            LATENCY_BUCKETS,
        )
    }

    /// HTTP requests served, by path.
    #[must_use]
    pub fn http_requests(&self, path: &str) -> Counter {
        self.registry.counter(
            "dramctrl_http_requests_total",
            "HTTP requests served, by path.",
            &[("path", path)],
        )
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_obs::metrics::validate_exposition;

    #[test]
    fn families_render_validly() {
        let m = ServeMetrics::new();
        m.admission_accepted.inc();
        m.rejected("queue_full").inc();
        m.tenant_served("alice").add(3);
        m.tenant_queue_depth("alice").set(2.0);
        m.store_fsync("accept").observe(0.002);
        m.store_fsync("commit").observe(0.004);
        m.sched_wait.observe(0.01);
        m.preemptions.inc();
        let text = m.registry.render_prometheus();
        validate_exposition(&text).unwrap();
        assert!(
            text.contains("dramctrl_admission_total{result=\"accepted\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dramctrl_admission_total{reason=\"queue_full\",result=\"rejected\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dramctrl_tenant_served_units_total{tenant=\"alice\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("dramctrl_store_fsync_seconds_bucket{op=\"accept\",le=\"+Inf\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn same_handle_twice() {
        let m = ServeMetrics::new();
        m.rejected("queue_full").inc();
        m.rejected("queue_full").inc();
        let text = m.registry.render_prometheus();
        assert!(
            text.contains("dramctrl_admission_total{reason=\"queue_full\",result=\"rejected\"} 2"),
            "{text}"
        );
    }
}
