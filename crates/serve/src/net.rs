//! Transport: one listener/stream pair that is a Unix-domain socket when
//! the address looks like a path (contains `/`) and TCP otherwise.
//!
//! The protocol on top is pure line-delimited JSON, so nothing above
//! this module cares which transport carried the bytes.

use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A connected byte stream (client or accepted server side).
#[derive(Debug)]
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `addr`: a filesystem path (any `/`) dials a Unix
    /// socket, anything else dials TCP (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        if addr.contains('/') {
            #[cfg(unix)]
            return Ok(Self::Unix(UnixStream::connect(addr)?));
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix socket paths need a unix platform; use host:port",
            ));
        }
        Ok(Self::Tcp(TcpStream::connect(addr)?))
    }

    /// An independently readable/writable handle to the same connection.
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(match self {
            Self::Tcp(s) => Self::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Self::Unix(s) => Self::Unix(s.try_clone()?),
        })
    }

    /// Sets the read deadline (`None` blocks forever). A blocked read
    /// past the deadline fails with `WouldBlock`/`TimedOut` — the
    /// hostile-client eviction path. Socket options are per connection,
    /// so the deadline also covers handles from
    /// [`try_clone`](Self::try_clone).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Sets the write deadline (`None` blocks forever). A client that
    /// stops reading eventually fills the socket buffer; the next write
    /// then fails at the deadline instead of wedging the sender.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Self::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

/// Reads one `\n`-terminated line into `buf`, refusing lines longer
/// than `max` bytes (newline included) with `InvalidData` — the bound
/// that keeps a hostile client from growing a line buffer without
/// limit. Returns the bytes read, `0` at EOF, like `read_line`.
///
/// On overflow the connection is no longer line-synchronized (the rest
/// of the oversized line is unread), so the caller must drop it.
///
/// # Errors
/// `InvalidData` on an oversized line, or any underlying read error.
pub(crate) fn read_line_bounded(
    reader: &mut impl BufRead,
    buf: &mut String,
    max: usize,
) -> io::Result<usize> {
    let n = (&mut *reader).take(max as u64 + 1).read_line(buf)?;
    if n > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line exceeds {max} bytes"),
        ));
    }
    Ok(n)
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Self::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener on either transport.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr` with the same path-vs-`host:port` rule as
    /// [`Stream::connect`]. A stale Unix socket file (a SIGKILL'd
    /// daemon's leftover) is removed before binding.
    pub fn bind(addr: &str) -> io::Result<Self> {
        if addr.contains('/') {
            #[cfg(unix)]
            {
                // A previous daemon killed without cleanup leaves the
                // inode behind; binding over it is the recovery path.
                let _ = std::fs::remove_file(addr);
                return Ok(Self::Unix(UnixListener::bind(addr)?));
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix socket paths need a unix platform; use host:port",
            ));
        }
        Ok(Self::Tcp(TcpListener::bind(addr)?))
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        Ok(match self {
            Self::Tcp(l) => Stream::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Self::Unix(l) => Stream::Unix(l.accept()?.0),
        })
    }

    /// The bound address, printable (for "listening on ..." and for
    /// tests that bind port 0).
    pub fn local_addr(&self) -> String {
        match self {
            Self::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into()),
            #[cfg(unix)]
            Self::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "?".into()),
        }
    }
}
