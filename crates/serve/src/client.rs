//! The service client: connect, refuse mismatched daemons, submit jobs,
//! stream results.

use crate::net::Stream;
use crate::proto::{campaign_to_wire, VersionInfo};
use crate::wire::Value;
use dramctrl_campaign::Campaign;
use dramctrl_kernel::backoff::Backoff;
use std::collections::HashSet;
use std::io::{self, BufRead, BufReader, Write};
use std::time::Duration;

/// First retry delay of [`Client::watch_with_reconnect`].
pub const RECONNECT_BACKOFF_START: Duration = Duration::from_millis(100);
/// Retry-delay ceiling of [`Client::watch_with_reconnect`].
pub const RECONNECT_BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Consecutive event-free attempts before `watch_with_reconnect` gives
/// up (roughly 13 s of backoff at the defaults). The counter resets
/// whenever a connection delivers an event, so a daemon that keeps
/// crashing mid-stream still gets a fresh budget each time it comes
/// back.
pub const RECONNECT_MAX_SILENT_RETRIES: u32 = 10;

/// Transport failures worth retrying: the daemon is down, restarting,
/// or closed the stream mid-flight. `NotFound` covers a unix socket
/// path removed by a daemon that has not rebound yet. Protocol errors
/// (`InvalidData`) and daemon-side rejections (`Other`, e.g. "no such
/// job") are final, and so are I/O deadline expiries
/// (`WouldBlock`/`TimedOut`): a peer that accepts connections but
/// never makes progress should surface to the caller, not be retried
/// forever.
pub fn reconnectable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotFound
    )
}

/// A connected, version-checked client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    daemon: VersionInfo,
}

/// Final tallies of a watched job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchSummary {
    /// Units that completed.
    pub ok: usize,
    /// Units that failed every attempt.
    pub failed: usize,
}

impl Client {
    /// Connects to `addr` (a socket path or `host:port`), reads the
    /// daemon's `hello`, and refuses any daemon whose protocol or
    /// snapshot format differs from this build's.
    ///
    /// # Errors
    /// Connection errors, a malformed hello, or a version mismatch.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let conn = Stream::connect(addr)?;
        let writer = conn.try_clone()?;
        let mut reader = BufReader::new(conn);
        let mut hello = String::new();
        reader.read_line(&mut hello)?;
        let daemon = VersionInfo::from_hello(hello.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        VersionInfo::current()
            .check_compatible(&daemon)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(Self {
            reader,
            writer,
            daemon,
        })
    }

    /// The daemon's announced versions.
    #[must_use]
    pub fn daemon(&self) -> &VersionInfo {
        &self.daemon
    }

    /// Arms (or clears) a read/write deadline on the underlying socket.
    /// Deadlines are socket options, so they cover both the reader and
    /// the cloned writer: a peer that accepts the connection but then
    /// hangs surfaces as `WouldBlock`/`TimedOut` — deliberately *not* a
    /// reconnectable error — instead of blocking forever.
    ///
    /// # Errors
    /// Socket-option errors from the OS.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_owned())
    }

    /// Submits a campaign; returns `(job id, total units)` on
    /// acceptance. `epochs > 0` asks for observed units binning epoch
    /// series at that tick interval.
    ///
    /// # Errors
    /// I/O errors, or rejection (admission control / bad campaign) as
    /// [`io::ErrorKind::Other`] carrying the daemon's reason.
    pub fn submit(
        &mut self,
        tenant: &str,
        epochs: u64,
        campaign: &Campaign,
    ) -> io::Result<(String, usize)> {
        self.submit_sharded(tenant, epochs, campaign, None)
    }

    /// Like [`Client::submit`], but restricts the job to the
    /// residue-class shard `(index, count)`: the daemon runs only job
    /// indices `i` with `i % count == index`, and the returned total is
    /// the shard size. `None` submits the full campaign.
    ///
    /// # Errors
    /// As [`Client::submit`].
    pub fn submit_sharded(
        &mut self,
        tenant: &str,
        epochs: u64,
        campaign: &Campaign,
        shard: Option<(u32, u32)>,
    ) -> io::Result<(String, usize)> {
        let mut fields = vec![
            ("cmd".to_owned(), Value::Str("submit".to_owned())),
            ("tenant".to_owned(), Value::Str(tenant.to_owned())),
            ("epochs".to_owned(), Value::num(epochs)),
            ("campaign".to_owned(), campaign_to_wire(campaign)),
        ];
        if let Some((idx, n)) = shard {
            fields.push(("shard_index".to_owned(), Value::num(u64::from(idx))));
            fields.push(("shard_count".to_owned(), Value::num(u64::from(n))));
        }
        let cmd = Value::Obj(fields);
        self.send(&cmd.encode())?;
        let reply = self.recv()?;
        let v = Value::parse(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}")))?;
        match v.get("event").and_then(Value::as_str) {
            Some("accepted") => {
                let id = v
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "accepted without an id")
                    })?
                    .to_owned();
                let total = v.get("total").and_then(Value::as_u64).unwrap_or(0) as usize;
                Ok((id, total))
            }
            Some("rejected") => {
                let reason = v
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified");
                Err(io::Error::other(format!("submit rejected: {reason}")))
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply: {reply}"),
            )),
        }
    }

    /// Watches a job to completion. Every event line — committed history
    /// first, then live events, in commit order with no gap or duplicate
    /// — is handed to `on_event` as `(parsed, raw line)`; returns the
    /// final tallies from the `done` event.
    ///
    /// # Errors
    /// I/O errors, a daemon-side `error` event, or a stream ending
    /// before `done`.
    pub fn watch(
        &mut self,
        id: &str,
        mut on_event: impl FnMut(&Value, &str),
    ) -> io::Result<WatchSummary> {
        let cmd = Value::Obj(vec![
            ("cmd".to_owned(), Value::Str("watch".to_owned())),
            ("id".to_owned(), Value::Str(id.to_owned())),
        ]);
        self.send(&cmd.encode())?;
        loop {
            let line = self.recv()?;
            let v = Value::parse(&line).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad event: {e}"))
            })?;
            match v.get("event").and_then(Value::as_str) {
                Some("done") => {
                    let summary = WatchSummary {
                        ok: v.get("ok").and_then(Value::as_u64).unwrap_or(0) as usize,
                        failed: v.get("failed").and_then(Value::as_u64).unwrap_or(0) as usize,
                    };
                    on_event(&v, &line);
                    return Ok(summary);
                }
                Some("error") => {
                    let reason = v
                        .get("reason")
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified");
                    return Err(io::Error::other(format!("watch failed: {reason}")));
                }
                _ => on_event(&v, &line),
            }
        }
    }

    /// Like [`Client::watch`], but owns the connection and survives
    /// daemon restarts: on a retryable transport error (connection
    /// refused/reset/aborted, broken pipe, a vanished socket file, or
    /// the daemon closing mid-stream) it reconnects with exponential
    /// backoff — [`RECONNECT_BACKOFF_START`] doubling to
    /// [`RECONNECT_BACKOFF_MAX`] — and re-issues the watch.
    ///
    /// The daemon replays a job's committed history on every watch, so
    /// the wrapper remembers which `record`/`stats`/`epochs` indices it
    /// already delivered and drops them on resume: `on_event` sees each
    /// committed unit exactly once, with no gap and no duplicate, even
    /// across a daemon kill-and-restart. (`progress` lines pass through
    /// unfiltered — they are transient, not part of the record stream.)
    ///
    /// # Errors
    /// Non-retryable errors (version mismatch, a daemon-side `error`
    /// event, malformed events), or the last transport error after
    /// [`RECONNECT_MAX_SILENT_RETRIES`] consecutive attempts that
    /// delivered nothing.
    pub fn watch_with_reconnect(
        addr: &str,
        id: &str,
        on_event: impl FnMut(&Value, &str),
    ) -> io::Result<WatchSummary> {
        Self::watch_with_reconnect_deadline(addr, id, None, on_event)
    }

    /// [`Client::watch_with_reconnect`] with a per-read I/O deadline.
    /// With `io_timeout` set, a peer that stays connected but stops
    /// streaming for that long fails the watch with
    /// `WouldBlock`/`TimedOut` (not retried — see [`reconnectable`]),
    /// which is how the dispatch coordinator detects hung peers.
    ///
    /// # Errors
    /// As [`Client::watch_with_reconnect`], plus deadline expiry.
    pub fn watch_with_reconnect_deadline(
        addr: &str,
        id: &str,
        io_timeout: Option<Duration>,
        mut on_event: impl FnMut(&Value, &str),
    ) -> io::Result<WatchSummary> {
        // (event kind, unit index) pairs already handed to `on_event`.
        let mut seen: HashSet<(u8, u64)> = HashSet::new();
        let mut backoff = Backoff::new(RECONNECT_BACKOFF_START, RECONNECT_BACKOFF_MAX);
        let mut silent_failures = 0u32;
        loop {
            let mut delivered = false;
            let attempt = Self::connect(addr).and_then(|mut c| {
                c.set_io_timeout(io_timeout)?;
                c.watch(id, |v, line| {
                    let index = || v.get("index").and_then(Value::as_u64).unwrap_or(0);
                    let kind = match v.get("event").and_then(Value::as_str) {
                        Some("record") => Some(0),
                        Some("stats") => Some(1),
                        Some("epochs") => Some(2),
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        if !seen.insert((kind, index())) {
                            return; // replayed on reconnect: already delivered
                        }
                    }
                    delivered = true;
                    on_event(v, line);
                })
            });
            match attempt {
                Ok(summary) => return Ok(summary),
                Err(e) if reconnectable(&e) => {
                    if delivered {
                        // The daemon was alive this attempt; start the
                        // retry budget and backoff over.
                        silent_failures = 0;
                        backoff.reset();
                    } else {
                        silent_failures += 1;
                        if silent_failures > RECONNECT_MAX_SILENT_RETRIES {
                            return Err(e);
                        }
                    }
                    std::thread::sleep(backoff.next_delay());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches the daemon's job table.
    ///
    /// # Errors
    /// I/O errors or a malformed reply.
    pub fn status(&mut self) -> io::Result<Value> {
        self.send("{\"cmd\":\"status\"}")?;
        let reply = self.recv()?;
        Value::parse(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad status: {e}")))
    }

    /// Asks the daemon to exit (everything committed is already
    /// durable). Best-effort: a daemon that exits before replying is
    /// success, not an error.
    ///
    /// # Errors
    /// Only send-side I/O errors.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send("{\"cmd\":\"shutdown\"}")?;
        let _ = self.recv();
        Ok(())
    }
}
