//! `dramctrl-serve`: an always-up, multi-tenant simulation service.
//!
//! The rest of the workspace is batch-shaped: a CLI invocation expands a
//! campaign, runs it, writes a report, exits. This crate keeps the
//! simulator *resident* — a daemon that accepts run/sweep jobs over a
//! Unix or TCP socket, schedules them fairly across tenants with
//! preemption at request boundaries, and records every accepted job and
//! every finished work unit in a durable store, so a SIGKILL'd daemon
//! restarted on the same store resumes all in-flight work with results
//! byte-identical to a cold CLI run.
//!
//! The pieces, bottom up:
//!
//! - [`wire`]: a minimal line-JSON codec whose numbers stay raw tokens
//!   end to end (a `u64` campaign seed never rounds through a float).
//! - [`proto`]: the protocol — version handshake ([`VersionInfo`],
//!   [`PROTO_VERSION`]), the campaign wire codec, and every event line.
//! - [`store`]: the durable job store ([`JobStore`]) — an fsync-before-
//!   ack accept log plus one `CampaignJournal` per job.
//! - [`sched`]: the two-level round-robin [`FairQueue`] (fair across
//!   tenants, then across one tenant's jobs).
//! - [`server`]: the daemon itself ([`Server`]) — admission control,
//!   the scheduler thread, crash recovery, event streaming.
//! - [`client`]: the version-checked [`Client`] the CLI subcommands
//!   (`submit`, `watch`, `status`) are built on.
//! - [`dispatch`]: the fleet coordinator (`dramctrl dispatch`) — shards
//!   a campaign across daemons, survives dead/slow/lying peers, and
//!   merges a report byte-identical to a local sweep.
//! - [`metrics`]: the daemon's operational metric handles
//!   ([`ServeMetrics`]) over the `dramctrl-obs` registry.
//! - [`http`]: the read-only HTTP/1.1 front-end (`--http`) serving
//!   `/metrics`, `/healthz` and `/jobs`.
//!
//! Like every other crate in the workspace: no external dependencies.

#![warn(missing_docs)]

pub mod client;
pub mod dispatch;
pub mod http;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod sched;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{Client, WatchSummary};
pub use dispatch::{dispatch, DispatchConfig, DispatchError, DispatchStats};
pub use http::serve_http;
pub use metrics::ServeMetrics;
pub use net::{Listener, Stream};
pub use proto::{record_data, VersionInfo, PROTO_VERSION};
pub use sched::FairQueue;
pub use server::{ServeConfig, Server, STORE_BACKOFF_MAX, STORE_BACKOFF_START};
pub use store::{JobStore, StoredJob};
