//! The probe interface: hooks the simulators call at every observable
//! transition, and the zero-cost disabled implementation.

use dramctrl_kernel::Tick;

/// A DRAM command category, as seen on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCmd {
    /// Row activation (RAS).
    Act,
    /// Precharge (explicit, auto or refresh-forced).
    Pre,
    /// Column read (CAS).
    Rd,
    /// Column write (CAS-W).
    Wr,
    /// Rank-wide refresh.
    Ref,
}

impl DramCmd {
    /// The canonical upper-case mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            DramCmd::Act => "ACT",
            DramCmd::Pre => "PRE",
            DramCmd::Rd => "RD",
            DramCmd::Wr => "WR",
            DramCmd::Ref => "REF",
        }
    }
}

/// A rank's power state, reported on transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Normal operation (clock running, banks usable).
    Active,
    /// Precharge power-down.
    PoweredDown,
    /// Self-refresh (deepest state; the device refreshes itself).
    SelfRefresh,
}

impl PowerState {
    /// Display name for trace tracks.
    pub fn name(self) -> &'static str {
        match self {
            PowerState::Active => "active",
            PowerState::PoweredDown => "powerdown",
            PowerState::SelfRefresh => "selfrefresh",
        }
    }
}

/// One DRAM command with its timing window, emitted by the controllers.
///
/// `at` is the tick the command takes effect; `dur` is the span the command
/// occupies on its resource (tRCD for ACT, tRP for PRE, the data transfer
/// for RD/WR, tRFC for REF) — exactly what a trace viewer should render as
/// a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdEvent {
    /// Command category.
    pub cmd: DramCmd,
    /// Target rank.
    pub rank: u32,
    /// Target bank ([`DramCmd::Ref`] is rank-wide; the field is ignored).
    pub bank: u32,
    /// Target row (ACT/RD/WR; 0 otherwise).
    pub row: u64,
    /// Tick at which the command takes effect.
    pub at: Tick,
    /// Duration the command occupies its resource.
    pub dur: Tick,
    /// Data bytes moved (RD/WR only).
    pub bytes: u32,
    /// Whether a RD/WR hit the already-open row.
    pub row_hit: bool,
    /// Originating request id, when the controller can attribute the
    /// command to one (reads carry their burst group's request).
    pub req: Option<u64>,
}

impl CmdEvent {
    fn base(cmd: DramCmd, rank: u32, bank: u32, at: Tick, dur: Tick) -> Self {
        Self {
            cmd,
            rank,
            bank,
            row: 0,
            at,
            dur,
            bytes: 0,
            row_hit: false,
            req: None,
        }
    }

    /// An activation of `row` at `at`, occupying the bank for `dur`
    /// (typically tRCD).
    pub fn act(rank: u32, bank: u32, row: u64, at: Tick, dur: Tick) -> Self {
        Self {
            row,
            ..Self::base(DramCmd::Act, rank, bank, at, dur)
        }
    }

    /// A precharge at `at`, occupying the bank for `dur` (typically tRP).
    pub fn pre(rank: u32, bank: u32, at: Tick, dur: Tick) -> Self {
        Self::base(DramCmd::Pre, rank, bank, at, dur)
    }

    /// A data transfer ([`DramCmd::Rd`] or [`DramCmd::Wr`]) spanning
    /// `[at, at + dur)` on the data bus.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        cmd: DramCmd,
        rank: u32,
        bank: u32,
        row: u64,
        at: Tick,
        dur: Tick,
        bytes: u32,
        row_hit: bool,
    ) -> Self {
        Self {
            row,
            bytes,
            row_hit,
            ..Self::base(cmd, rank, bank, at, dur)
        }
    }

    /// A rank-wide refresh at `at`, lasting `dur` (typically tRFC).
    pub fn refresh(rank: u32, at: Tick, dur: Tick) -> Self {
        Self::base(DramCmd::Ref, rank, 0, at, dur)
    }
}

/// A reliability (RAS) event category, reported by the controllers when a
/// fault model is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RasMark {
    /// A faulty burst was corrected by ECC.
    Corrected,
    /// A faulty burst was detected but could not be corrected.
    Uncorrected,
    /// A faulty burst escaped detection (silent data corruption).
    Silent,
    /// A link error (write CRC / command-address parity) triggered an
    /// in-queue retry of the burst.
    Retry,
    /// A stuck row was remapped to a spare row.
    Remap,
    /// A rank was taken offline after exhausting recovery options.
    RankOffline,
}

impl RasMark {
    /// Display name for trace tracks and reports.
    pub fn name(self) -> &'static str {
        match self {
            RasMark::Corrected => "corrected",
            RasMark::Uncorrected => "uncorrected",
            RasMark::Silent => "silent",
            RasMark::Retry => "retry",
            RasMark::Remap => "remap",
            RasMark::RankOffline => "rank-offline",
        }
    }
}

/// Instrumentation hooks called by the simulators.
///
/// Every method has a no-op default, so a sink implements only what it
/// needs. Implementations must be pure observers: a probe receives event
/// data and returns nothing, and the instrumented components guarantee that
/// no simulation state depends on it — tracing a run must never change its
/// outcome (the *zero-perturbation* property, asserted by the `dramctrl`
/// differential harness).
///
/// Hot paths guard their calls with [`Probe::ENABLED`] so that argument
/// computation is also compiled away for [`NoProbe`]:
///
/// ```ignore
/// if P::ENABLED {
///     self.probe.dram_cmd(CmdEvent::act(ri, bi, row, act_at, t.t_rcd));
/// }
/// ```
pub trait Probe {
    /// Whether this probe observes anything at all. `false` lets the
    /// compiler eliminate the instrumentation entirely (the calls sit
    /// behind `if P::ENABLED` in the hot paths).
    const ENABLED: bool = true;

    /// A DRAM command was issued.
    fn dram_cmd(&mut self, ev: CmdEvent) {
        let _ = ev;
    }

    /// A request was accepted into the controller at `now`.
    fn req_accepted(&mut self, id: u64, is_read: bool, addr: u64, size: u32, now: Tick) {
        let _ = (id, is_read, addr, size, now);
    }

    /// A response for request `id` was scheduled, to be delivered at
    /// `ready_at` (early write acknowledgements included).
    fn req_completed(&mut self, id: u64, is_read: bool, ready_at: Tick) {
        let _ = (id, is_read, ready_at);
    }

    /// The read/write queue depths changed at `now` (depths are in bursts).
    fn queue_depth(&mut self, read_q: usize, write_q: usize, now: Tick) {
        let _ = (read_q, write_q, now);
    }

    /// Rank `rank` entered `state` at `at`.
    fn power_state(&mut self, rank: u32, state: PowerState, at: Tick) {
        let _ = (rank, state, at);
    }

    /// The crossbar routed request `id` to `channel` at `now`.
    fn xbar_route(&mut self, id: u64, channel: u32, now: Tick) {
        let _ = (id, channel, now);
    }

    /// A reliability event (`mark`) occurred at `(rank, bank, row)` at `at`.
    /// Only emitted when a fault model is armed; fault-free runs never call
    /// this hook.
    fn ras_event(&mut self, rank: u32, bank: u32, row: u64, mark: RasMark, at: Tick) {
        let _ = (rank, bank, row, mark, at);
    }
}

/// The disabled probe: every hook is a no-op and [`Probe::ENABLED`] is
/// `false`, so instrumented code monomorphises to exactly the uninstrumented
/// code. This is the default probe of every simulator component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;
}

/// Fan-out: a pair of probes both observe every event. Nest pairs for more
/// than two sinks: `((a, b), c)`.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn dram_cmd(&mut self, ev: CmdEvent) {
        self.0.dram_cmd(ev);
        self.1.dram_cmd(ev);
    }

    fn req_accepted(&mut self, id: u64, is_read: bool, addr: u64, size: u32, now: Tick) {
        self.0.req_accepted(id, is_read, addr, size, now);
        self.1.req_accepted(id, is_read, addr, size, now);
    }

    fn req_completed(&mut self, id: u64, is_read: bool, ready_at: Tick) {
        self.0.req_completed(id, is_read, ready_at);
        self.1.req_completed(id, is_read, ready_at);
    }

    fn queue_depth(&mut self, read_q: usize, write_q: usize, now: Tick) {
        self.0.queue_depth(read_q, write_q, now);
        self.1.queue_depth(read_q, write_q, now);
    }

    fn power_state(&mut self, rank: u32, state: PowerState, at: Tick) {
        self.0.power_state(rank, state, at);
        self.1.power_state(rank, state, at);
    }

    fn xbar_route(&mut self, id: u64, channel: u32, now: Tick) {
        self.0.xbar_route(id, channel, now);
        self.1.xbar_route(id, channel, now);
    }

    fn ras_event(&mut self, rank: u32, bank: u32, row: u64, mark: RasMark, at: Tick) {
        self.0.ras_event(rank, bank, row, mark, at);
        self.1.ras_event(rank, bank, row, mark, at);
    }
}

/// Run-time optional probe: `None` observes nothing, `Some(p)` forwards to
/// `p`. [`Probe::ENABLED`] stays `P::ENABLED`, so the hot-path guard is
/// still compile-time — the per-event `Option` check is paid only when the
/// inner probe type is itself enabled (front ends that decide at run time
/// whether to trace, like the CLI, use this).
impl<P: Probe> Probe for Option<P> {
    const ENABLED: bool = P::ENABLED;

    fn dram_cmd(&mut self, ev: CmdEvent) {
        if let Some(p) = self {
            p.dram_cmd(ev);
        }
    }

    fn req_accepted(&mut self, id: u64, is_read: bool, addr: u64, size: u32, now: Tick) {
        if let Some(p) = self {
            p.req_accepted(id, is_read, addr, size, now);
        }
    }

    fn req_completed(&mut self, id: u64, is_read: bool, ready_at: Tick) {
        if let Some(p) = self {
            p.req_completed(id, is_read, ready_at);
        }
    }

    fn queue_depth(&mut self, read_q: usize, write_q: usize, now: Tick) {
        if let Some(p) = self {
            p.queue_depth(read_q, write_q, now);
        }
    }

    fn power_state(&mut self, rank: u32, state: PowerState, at: Tick) {
        if let Some(p) = self {
            p.power_state(rank, state, at);
        }
    }

    fn xbar_route(&mut self, id: u64, channel: u32, now: Tick) {
        if let Some(p) = self {
            p.xbar_route(id, channel, now);
        }
    }

    fn ras_event(&mut self, rank: u32, bank: u32, row: u64, mark: RasMark, at: Tick) {
        if let Some(p) = self {
            p.ras_event(rank, bank, row, mark, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Counter {
        cmds: usize,
        accepts: usize,
    }

    impl Probe for Counter {
        fn dram_cmd(&mut self, _ev: CmdEvent) {
            self.cmds += 1;
        }
        fn req_accepted(&mut self, _id: u64, _r: bool, _a: u64, _s: u32, _n: Tick) {
            self.accepts += 1;
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn noprobe_is_disabled() {
        assert!(!NoProbe::ENABLED);
        assert!(Counter::ENABLED);
        assert!(<(NoProbe, Counter)>::ENABLED);
        assert!(!<(NoProbe, NoProbe)>::ENABLED);
    }

    #[test]
    fn pair_fans_out() {
        let mut pair = (Counter::default(), Counter::default());
        pair.dram_cmd(CmdEvent::pre(0, 0, 10, 20));
        pair.req_accepted(1, true, 0x40, 64, 0);
        assert_eq!((pair.0.cmds, pair.1.cmds), (1, 1));
        assert_eq!((pair.0.accepts, pair.1.accepts), (1, 1));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn option_forwards_only_when_some() {
        assert!(<Option<Counter>>::ENABLED);
        assert!(!<Option<NoProbe>>::ENABLED);
        let mut none: Option<Counter> = None;
        none.dram_cmd(CmdEvent::pre(0, 0, 10, 20));
        let mut some = Some(Counter::default());
        some.dram_cmd(CmdEvent::pre(0, 0, 10, 20));
        assert_eq!(some.unwrap().cmds, 1);
    }

    #[test]
    fn constructors_fill_fields() {
        let a = CmdEvent::act(1, 2, 99, 10, 20);
        assert_eq!((a.cmd, a.rank, a.bank, a.row), (DramCmd::Act, 1, 2, 99));
        let d = CmdEvent::data(DramCmd::Wr, 0, 1, 7, 5, 6, 64, true);
        assert!(d.row_hit);
        assert_eq!(d.bytes, 64);
        assert_eq!(DramCmd::Ref.name(), "REF");
        assert_eq!(PowerState::SelfRefresh.name(), "selfrefresh");
    }
}
