//! Leveled, structured (key=value) logging on stderr.
//!
//! The daemon and CLI service commands need machine-parseable diagnostics:
//! one line per event, `key="value"` pairs, a timestamp and a level, so a
//! log shipper (or a human with `grep`) can consume daemon stderr without
//! guessing at ad-hoc `eprintln!` formats. Like everything else in the
//! workspace this is dependency-free: a static atomic level, a formatter,
//! and four macros.
//!
//! ```
//! use dramctrl_obs::log::{set_level, Level};
//!
//! set_level(Level::Info);
//! dramctrl_obs::log_info!("serve", "listening"; "addr" => "127.0.0.1:8080");
//! // stderr: ts=1754650000.123 level=info target=serve msg="listening" addr="127.0.0.1:8080"
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error = 0,
    /// Something surprising that the daemon recovered from.
    Warn = 1,
    /// Normal operational milestones (default).
    Info = 2,
    /// Per-request detail.
    Debug = 3,
    /// Everything.
    Trace = 4,
}

impl Level {
    /// Lower-case name as emitted in `level=...`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Parses a level name (case-insensitive). Accepts
/// `error|warn|info|debug|trace`.
pub fn parse_level(s: &str) -> Result<Level, String> {
    match s.to_ascii_lowercase().as_str() {
        "error" => Ok(Level::Error),
        "warn" | "warning" => Ok(Level::Warn),
        "info" => Ok(Level::Info),
        "debug" => Ok(Level::Debug),
        "trace" => Ok(Level::Trace),
        _ => Err(format!(
            "unknown log level {s:?} (expected error|warn|info|debug|trace)"
        )),
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global threshold: records with a level above it are dropped.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Output encoding for emitted records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `ts=... level=... target=... msg="..." k="v"` (default).
    Logfmt,
    /// One JSON object per line, same fields — for consumers that
    /// machine-parse the event stream (e.g. `dispatch --json`).
    Json,
}

static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Sets the global output encoding.
pub fn set_format(format: Format) {
    FORMAT.store(
        match format {
            Format::Logfmt => 0,
            Format::Json => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current global output encoding.
pub fn format() -> Format {
    if FORMAT.load(Ordering::Relaxed) == 1 {
        Format::Json
    } else {
        Format::Logfmt
    }
}

/// Whether a record at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Escapes a field value for a double-quoted logfmt token.
fn escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
}

/// Formats one record as a logfmt line (no trailing newline):
/// `ts=<epoch.millis> level=<l> target=<t> msg="..." k="v" ...`.
pub fn format_record(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let mut line = String::with_capacity(64 + msg.len());
    let _ = write!(
        line,
        "ts={}.{:03} level={} target={} msg=\"",
        now.as_secs(),
        now.subsec_millis(),
        level.as_str(),
        target
    );
    escape_into(&mut line, msg);
    line.push('"');
    for (k, v) in fields {
        let _ = write!(line, " {k}=\"");
        escape_into(&mut line, v);
        line.push('"');
    }
    line
}

/// Formats one record as a single-line JSON object:
/// `{"ts":<epoch.millis>,"level":"...","target":"...","msg":"...","k":"v",...}`.
/// Field keys collide with the fixed keys at their own risk; values are
/// always strings, mirroring the logfmt encoding.
pub fn format_record_json(
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, String)],
) -> String {
    use crate::json::json_str;
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let mut line = String::with_capacity(96 + msg.len());
    let _ = write!(
        line,
        "{{\"ts\":{}.{:03},\"level\":\"{}\",\"target\":{},\"msg\":{}",
        now.as_secs(),
        now.subsec_millis(),
        level.as_str(),
        json_str(target),
        json_str(msg)
    );
    for (k, v) in fields {
        let _ = write!(line, ",{}:{}", json_str(k), json_str(v));
    }
    line.push('}');
    line
}

/// Emits one record to stderr if `level` passes the global threshold.
/// Prefer the [`log_error!`](crate::log_error)/[`log_warn!`](crate::log_warn)/
/// [`log_info!`](crate::log_info)/[`log_debug!`](crate::log_debug) macros,
/// which skip field formatting when the record would be dropped.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    if !enabled(level) {
        return;
    }
    let line = match format() {
        Format::Logfmt => format_record(level, target, msg, fields),
        Format::Json => format_record_json(level, target, msg, fields),
    };
    eprintln!("{line}");
}

/// Logs at a given level with `"key" => value` fields (values go through
/// `ToString`). The field list is only evaluated when the level is
/// enabled.
#[macro_export]
macro_rules! log_at {
    ($level:expr, $target:expr, $msg:expr $(; $($k:expr => $v:expr),* $(,)?)?) => {{
        if $crate::log::enabled($level) {
            $crate::log::log(
                $level,
                $target,
                &$msg.to_string(),
                &[$($(($k, $v.to_string())),*)?],
            );
        }
    }};
}

/// Logs at [`Level::Error`](crate::log::Level::Error).
#[macro_export]
macro_rules! log_error {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Error, $($t)*) };
}

/// Logs at [`Level::Warn`](crate::log::Level::Warn).
#[macro_export]
macro_rules! log_warn {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Warn, $($t)*) };
}

/// Logs at [`Level::Info`](crate::log::Level::Info).
#[macro_export]
macro_rules! log_info {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Info, $($t)*) };
}

/// Logs at [`Level::Debug`](crate::log::Level::Debug).
#[macro_export]
macro_rules! log_debug {
    ($($t:tt)*) => { $crate::log_at!($crate::log::Level::Debug, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(parse_level("WARN").unwrap(), Level::Warn);
        assert_eq!(parse_level("trace").unwrap(), Level::Trace);
        assert!(parse_level("loud").is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn record_format_is_logfmt() {
        let line = format_record(
            Level::Warn,
            "serve",
            "odd \"thing\"",
            &[("tenant", "a\nb".to_string()), ("n", "3".to_string())],
        );
        assert!(line.starts_with("ts="), "{line}");
        assert!(
            line.contains("level=warn target=serve msg=\"odd \\\"thing\\\"\""),
            "{line}"
        );
        assert!(line.ends_with("tenant=\"a\\nb\" n=\"3\""), "{line}");
        // Exactly one line: field newlines were escaped.
        assert!(!line.contains('\n') && !line.contains('\r'));
    }

    #[test]
    fn json_format_is_valid_json_with_string_fields() {
        let line = format_record_json(
            Level::Info,
            "dispatch",
            "shard assigned",
            &[
                ("shard", "1/3".to_string()),
                ("peer", "/tmp/a.sock".to_string()),
            ],
        );
        crate::json::validate(&line).unwrap();
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"target\":\"dispatch\""), "{line}");
        assert!(line.contains("\"shard\":\"1/3\""), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn threshold_gates() {
        // Note: global state; tests in this module run in one process but
        // set_level is idempotent enough for this check.
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Info);
    }
}
